"""Parameter-server data-plane throughput: sharded vs single server.

Runs one seeded workload against ``ShardedParameterServer`` at shard
counts {1, 2, 4} (replicas = min(2, shards)):

1. **load** — put ``KEYS`` checkpoints (MLP-sized state dicts);
2. **serve** — ``GETS`` reads with a Zipf-like hot-key skew, the access
   pattern of collaborative tuning (everyone pulls the current best);
3. **failover** — kill shard ``ps-0`` mid-serve (multi-shard runs
   only), finish the reads through the surviving replicas, and assert
   zero lost keys and zero stale reads.

Writes a human-readable table to ``benchmarks/results/perf_ps.txt`` and
the machine-readable numbers to ``BENCH_ps.json`` at the repository
root. ``--smoke`` shrinks the workload to a few seconds for CI; the
committed baseline comes from a full run.

Usage::

    python benchmarks/bench_perf_ps.py [--smoke] [--seed N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from _harness import emit  # noqa: E402
from repro.paramserver import ShardedParameterServer  # noqa: E402

BENCH_JSON = os.path.join(_ROOT, "BENCH_ps.json")
SHARD_COUNTS = (1, 2, 4)


def make_states(rng: np.ndarray, keys: int) -> list[dict]:
    """MLP-sized checkpoints: ~70KB each (two dense layers + biases)."""
    return [
        {
            "fc1/W": rng.standard_normal((64, 128)).astype(np.float32),
            "fc1/b": rng.standard_normal(128).astype(np.float32),
            "fc2/W": rng.standard_normal((128, 10)).astype(np.float32),
            "fc2/b": rng.standard_normal(10).astype(np.float32),
        }
        for _ in range(keys)
    ]


def zipfish_keys(rng, keys: int, gets: int) -> list[int]:
    """Hot-key skew: rank r is drawn proportionally to 1/(r+1)."""
    weights = 1.0 / np.arange(1, keys + 1)
    weights /= weights.sum()
    return list(rng.choice(keys, size=gets, p=weights))


def run_one(shards: int, keys: int, gets: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    replicas = min(2, shards)
    # The cache budget is deliberately smaller than the working set
    # (~70KB/key) so the hit rate reflects the LRU under hot-key skew
    # rather than saturating at 1.0.
    server = ShardedParameterServer(
        shards=shards, replicas=replicas, cache_bytes=4 * 1024 * 1024
    )
    states = make_states(rng, keys)

    start = time.perf_counter()
    for i, state in enumerate(states):
        server.put(f"ckpt/{i}", state, performance=float(i))
    put_seconds = time.perf_counter() - start

    reads = zipfish_keys(rng, keys, gets)
    start = time.perf_counter()
    for i in reads:
        server.get(f"ckpt/{i}")
    get_seconds = time.perf_counter() - start
    stats = server.cache_stats()

    result = {
        "shards": shards,
        "replicas": replicas,
        "keys": keys,
        "puts_per_s": round(keys / put_seconds, 1),
        "gets_per_s": round(gets / get_seconds, 1),
        "cache_hit_rate": round(stats["hit_rate"], 4),
    }

    if shards > 1:
        server.kill_shard("ps-0")
        failover_reads = zipfish_keys(rng, keys, gets // 2)
        start = time.perf_counter()
        for i in failover_reads:
            server.get(f"ckpt/{i}")
        failover_seconds = time.perf_counter() - start
        audit = server.audit()
        assert audit["keys_lost"] == 0, audit
        assert not audit["divergent"], audit
        result["gets_per_s_after_kill"] = round(
            len(failover_reads) / failover_seconds, 1
        )
        result["rereplications"] = audit["rereplications"]
        result["keys_lost_after_kill"] = audit["keys_lost"]
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (does not rewrite the "
                             "committed baseline)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    keys, gets = (40, 400) if args.smoke else (200, 4000)
    rows = [run_one(shards, keys, gets, args.seed) for shards in SHARD_COUNTS]

    header = (f"{'shards':>6} {'replicas':>8} {'puts/s':>10} {'gets/s':>10} "
              f"{'hit rate':>9} {'gets/s (1 dead)':>16} {'re-repl':>8}")
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['shards']:>6} {row['replicas']:>8} {row['puts_per_s']:>10.1f} "
            f"{row['gets_per_s']:>10.1f} {row['cache_hit_rate']:>9.3f} "
            f"{row.get('gets_per_s_after_kill', float('nan')):>16.1f} "
            f"{row.get('rereplications', 0):>8}"
        )
    emit("perf_ps", "\n".join(lines))

    if not args.smoke:
        payload = {
            "workload": {"keys": keys, "gets": gets, "seed": args.seed,
                         "distribution": "zipf-like 1/(rank+1)"},
            "by_shards": {str(row["shards"]): row for row in rows},
        }
        with open(BENCH_JSON, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 9: Study vs CoStudy under Gaussian-process Bayesian optimisation.

Also checks the cross-figure observation that BO beats random search,
and reproduces the paper's side-finding: CoStudy's randomly-initialised
(alpha-greedy) trials form a low-accuracy tail that pollutes the GP's
prior, and their number shrinks as alpha decays.
"""

import numpy as np
import pytest
from _harness import (
    best_so_far_table,
    emit,
    format_study_rows,
    histogram_table,
    run_tuning_study,
    study_summary,
)

from repro.core.tune.trial import InitKind


@pytest.fixture(scope="module")
def reports():
    study = run_tuning_study("bayesian", collaborative=False)
    costudy = run_tuning_study("bayesian", collaborative=True)
    return study, costudy


def test_fig09_bayes_study_vs_costudy(benchmark, reports):
    study, costudy = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            "summary (Figure 9a):\n" + format_study_rows(
                [("bayes / Study", study), ("bayes / CoStudy", costudy)]
            ),
            "histogram, Study (Figure 9b):\n" + histogram_table(study),
            "histogram, CoStudy (Figure 9b):\n" + histogram_table(costudy),
            "best-so-far vs epochs, Study (Figure 9c):\n" + best_so_far_table(study),
            "best-so-far vs epochs, CoStudy (Figure 9c):\n" + best_so_far_table(costudy),
        ]
    )
    emit("fig09_bayes_costudy", text)

    s, c = study_summary(study), study_summary(costudy)
    assert c["above_50"] > s["above_50"]
    assert c["mean"] > s["mean"]
    assert c["total_epochs"] < 0.6 * s["total_epochs"]
    assert s["best"] > 0.90 and c["best"] > 0.90


def test_fig09_bo_beats_random_search(benchmark, reports):
    """Figure 9 vs Figure 8: BO's trials are denser in the top region."""
    bo_study, _ = reports
    random_study = benchmark.pedantic(
        run_tuning_study, args=("random",), kwargs={"collaborative": False},
        rounds=1, iterations=1,
    )
    assert study_summary(bo_study)["mean"] > study_summary(random_study)["mean"]
    assert study_summary(bo_study)["above_50"] > study_summary(random_study)["above_50"]


def test_fig09_random_init_trials_form_low_tail(benchmark, reports):
    """The right-bottom points of Figure 9a: CoStudy's random-init
    trials score lower on average than its warm-started ones."""
    _, costudy = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    random_scores = [
        r.performance for r in costudy.results
        if r.trial.init_kind is InitKind.RANDOM
    ]
    warm_scores = [
        r.performance for r in costudy.results
        if r.trial.init_kind is InitKind.WARM_START
    ]
    assert random_scores and warm_scores
    assert np.mean(random_scores) < np.mean(warm_scores)
    # alpha decays: random initialisation concentrates in the early trials
    random_positions = [
        i for i, r in enumerate(costudy.results)
        if r.trial.init_kind is InitKind.RANDOM
    ]
    midpoint = len(costudy.results) / 2
    early = sum(1 for i in random_positions if i < midpoint)
    late = len(random_positions) - early
    assert early > late

"""Figure 6: ensemble accuracy for every combination of the 4 models.

Regenerates the full subset table over the simulated validation panel
(majority voting, best-model tie-break) and asserts the figure's
observations: more models generally help, but a two-model ensemble
collapses to its better member, so {resnet_v2_101, inception_v3} loses
to the single inception_resnet_v2.
"""

import pytest
from _harness import emit

from repro.zoo import EnsembleAccuracyModel

MODELS = ("resnet_v2_101", "inception_v3", "inception_v4", "inception_resnet_v2")


@pytest.fixture(scope="module")
def panel():
    return EnsembleAccuracyModel(MODELS)


def test_fig06_ensemble_table(benchmark, panel):
    table = benchmark.pedantic(panel.accuracy_table, rounds=1, iterations=1)

    lines = [f"{'models':<6} {'accuracy':>9}  combination"]
    for names, accuracy in sorted(table.items(), key=lambda kv: (len(kv[0]), -kv[1])):
        lines.append(f"{len(names):<6} {accuracy:>9.4f}  {' + '.join(names)}")
    emit("fig06_ensemble", "\n".join(lines))

    singles = {n: table[(n,)] for n in MODELS}
    best_single = max(singles.values())

    # (1) marginals track the Figure 3 accuracies (within MC noise)
    assert singles["inception_resnet_v2"] == pytest.approx(0.804, abs=0.01)
    assert singles["resnet_v2_101"] == pytest.approx(0.770, abs=0.01)

    # (2) the paper's exception: this 2-model ensemble underperforms the
    # single best model because every disagreement is a tie
    pair = table[("resnet_v2_101", "inception_v3")]
    assert pair == pytest.approx(singles["inception_v3"], abs=1e-9)
    assert pair < best_single

    # (3) any 2-model ensemble equals its better member
    for names, accuracy in table.items():
        if len(names) == 2:
            assert accuracy == pytest.approx(max(singles[n] for n in names), abs=1e-9)

    # (4) 3- and 4-model ensembles beat the best single model
    three_best = max(a for names, a in table.items() if len(names) == 3)
    four = table[MODELS]
    assert three_best > best_single
    assert four > three_best

    # (5) magnitudes match Figure 6's axis (~0.81 / ~0.825)
    assert 0.80 < three_best < 0.83
    assert 0.81 < four < 0.84


def test_fig06_vote_aggregation_throughput(benchmark, panel):
    """Majority voting over the 40k-example panel (the offline step that
    fills the serving reward's accuracy table)."""
    from repro.zoo import majority_vote

    predictions = benchmark(majority_vote, panel._votes, panel.accuracies)
    assert predictions.shape == (panel.num_examples,)

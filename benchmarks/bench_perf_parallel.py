"""Multi-core trial execution: ``run_study_parallel`` vs ``run_study``.

Runs one small real-training study (RealTrainer over a synthetic image
dataset) sequentially and then with trials farmed out to 1/2/4 child
processes. Records real wall-clock for each configuration and checks
the hard invariant: every parallel run reproduces the sequential study
report bit-for-bit (best accuracy, epoch counts, simulated wall time).

Speedup is hardware-dependent — ``cpu_count`` is recorded next to the
timings in ``BENCH_perf.json`` so the numbers are interpretable (on a
single-core box the parallel runs only add IPC overhead; with 4 cores
the 4-process run approaches the worker-level parallelism of the
study). The determinism assertions are the portable part.
"""

import itertools
import os
import time

import numpy as np
from _harness import emit
from bench_perf_engine import update_bench_json

import repro.core.tune.trial as trial_module
from repro.core.tune import (
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    make_workers,
    run_study,
    run_study_parallel,
)
from repro.data import make_image_classification
from repro.paramserver import ParameterServer
from repro.zoo.builders import build_mlp

TRIALS = 4
WORKERS = 4
SEED = 9
PROCESS_COUNTS = (1, 2, 4)


def make_study(dataset):
    trial_module._trial_ids = itertools.count(1)  # identical ids per run
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.3, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.9)
    conf = HyperConf(max_trials=TRIALS, max_epochs_per_trial=3, delta=0.005)
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(space, rng=np.random.default_rng(SEED))
    master = StudyMaster("bench-parallel", conf, advisor, param_server)
    backend = RealTrainer(dataset, build_mlp, batch_size=16,
                          use_augmentation=False, seed=SEED)
    workers = make_workers(master, backend, param_server, conf, WORKERS)
    return master, workers


def fingerprint(report) -> tuple:
    return (
        report.best_performance,
        report.total_epochs,
        report.wall_time,
        tuple((e.index, e.performance, e.epochs) for e in report.history),
    )


def test_perf_parallel(benchmark):
    dataset = make_image_classification(
        name="bench", num_classes=3, image_shape=(3, 8, 8),
        train_per_class=32, val_per_class=8, test_per_class=8,
        difficulty=0.3, seed=SEED,
    )

    def run_all():
        results = {}
        master, workers = make_study(dataset)
        start = time.perf_counter()
        sequential = run_study(master, workers)
        results["sequential"] = (fingerprint(sequential), time.perf_counter() - start)
        for processes in PROCESS_COUNTS:
            master, workers = make_study(dataset)
            start = time.perf_counter()
            report = run_study_parallel(master, workers, processes=processes)
            results[f"parallel_{processes}"] = (
                fingerprint(report), time.perf_counter() - start,
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    seq_print, seq_seconds = results["sequential"]
    lines = [f"{'configuration':<16} {'wall(s)':>8} {'speedup':>8} {'identical':>10}"]
    payload = {
        "cpu_count": os.cpu_count(),
        "trials": TRIALS,
        "workers": WORKERS,
        "sequential_s": seq_seconds,
        "parallel_s": {},
        "deterministic": True,
    }
    for label, (print_, seconds) in results.items():
        identical = print_ == seq_print
        payload["deterministic"] &= identical
        if label.startswith("parallel"):
            payload["parallel_s"][label.split("_")[1]] = seconds
        lines.append(
            f"{label:<16} {seconds:>8.2f} {seq_seconds / seconds:>7.2f}x "
            f"{'yes' if identical else 'NO':>10}"
        )
    lines.append(f"(cpu cores: {payload['cpu_count']})")
    emit("perf_parallel", "\n".join(lines))
    update_bench_json("parallel", payload)

    # The portable acceptance bar: parallel == sequential, always.
    # (A >=2x wall-clock cut for 4 processes needs >=4 cores; asserting
    # it here would make the bench fail on smaller machines.)
    assert payload["deterministic"]

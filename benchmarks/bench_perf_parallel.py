"""Multi-core trial execution: pool vs legacy spawn vs sequential.

Runs one small real-training study (RealTrainer over a synthetic image
dataset) sequentially, then with trials farmed out to 1/2/4 child
processes through both parallel backends: the persistent worker pool
(shared-memory IPC, workers reused across trials and studies) and the
legacy spawn-per-study executor (fresh processes + pickled dataset per
study).  A reused pool is also timed cold vs warm, since amortising
worker start-up across studies is the pool's core win.  Records real
wall-clock and IPC bytes moved for each configuration and checks the
hard invariant: every parallel run reproduces the sequential study
report bit-for-bit (best accuracy, epoch counts, simulated wall time).

Speedup is hardware-dependent, so next to the timings
``BENCH_perf.json`` records ``cpu_count``, per-configuration
``effective_parallelism`` (processes actually backed by a core) and an
``oversubscribed`` flag — on a single-core box the parallel runs only
add IPC overhead and must not be misread as regressions.  The
determinism assertions are the portable part.

Standalone usage (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_perf_parallel.py --smoke

exits non-zero if any parallel backend diverges from the sequential
report; the warm-pool-vs-sequential speedup is printed as an
informational metric (shared CI runners are too noisy to gate on
wall-clock).  Add ``--perf-gate`` on a dedicated multi-core box to
also fail when the warm pool study is slower than sequential.
"""

import argparse
import itertools
import os
import pickle
import sys
import time

if __name__ == "__main__":  # standalone: make repro + _harness importable
    _HERE = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
    sys.path.insert(0, _HERE)

import numpy as np

import repro.core.tune.trial as trial_module
from repro import telemetry
from repro.core.tune import (
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    TrialPool,
    make_workers,
    run_study,
    run_study_parallel,
)
from repro.core.tune.parallel import _TrainerSpec
from repro.data import make_image_classification
from repro.paramserver import ParameterServer
from repro.zoo.builders import build_mlp

TRIALS = 4
WORKERS = 4
SEED = 9
PROCESS_COUNTS = (1, 2, 4)


def make_dataset(train_per_class: int = 32):
    return make_image_classification(
        name="bench", num_classes=3, image_shape=(3, 8, 8),
        train_per_class=train_per_class, val_per_class=8, test_per_class=8,
        difficulty=0.3, seed=SEED,
    )


def make_study(dataset, trials: int = TRIALS, max_epochs: int = 3):
    trial_module._trial_ids = itertools.count(1)  # identical ids per run
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.3, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.9)
    conf = HyperConf(max_trials=trials, max_epochs_per_trial=max_epochs, delta=0.005)
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(space, rng=np.random.default_rng(SEED))
    master = StudyMaster("bench-parallel", conf, advisor, param_server)
    backend = RealTrainer(dataset, build_mlp, batch_size=16,
                          use_augmentation=False, seed=SEED)
    workers = make_workers(master, backend, param_server, conf, WORKERS)
    return master, workers


def fingerprint(report) -> tuple:
    return (
        report.best_performance,
        report.total_epochs,
        report.wall_time,
        tuple((e.index, e.performance, e.epochs) for e in report.history),
    )


def ipc_counter_snapshot() -> dict:
    counter = telemetry.get_registry().counter(
        "repro_tune_pool_ipc_bytes_total",
        "IPC payload bytes moved, by transport (pickled/shm) and direction.",
    )
    return {
        "shm": counter.value(transport="shm", direction="to_worker")
        + counter.value(transport="shm", direction="from_worker"),
        "pickled": counter.value(transport="pickled", direction="to_worker")
        + counter.value(transport="pickled", direction="from_worker"),
    }


def run_matrix(process_counts=PROCESS_COUNTS, trials=TRIALS, max_epochs=3,
               train_per_class=32) -> dict:
    """Time every configuration; returns the BENCH_perf.json payload."""
    dataset = make_dataset(train_per_class)
    cpu_count = os.cpu_count() or 1

    master, workers = make_study(dataset, trials, max_epochs)
    start = time.perf_counter()
    sequential = run_study(master, workers)
    sequential_s = time.perf_counter() - start
    seq_print = fingerprint(sequential)

    payload = {
        "cpu_count": cpu_count,
        "trials": trials,
        "workers": WORKERS,
        "sequential_s": sequential_s,
        "parallel_s": {},  # pool backend (the default)
        "legacy_parallel_s": {},
        "pool_reuse_s": {},
        "effective_parallelism": {
            str(p): min(p, cpu_count) for p in process_counts
        },
        "oversubscribed": any(p > cpu_count for p in process_counts),
        "ipc_bytes": {},
        "deterministic": True,
    }
    table = {"sequential": (sequential_s, True)}

    ipc_before = ipc_counter_snapshot()
    for backend, key in (("pool", "parallel_s"), ("legacy", "legacy_parallel_s")):
        for processes in process_counts:
            master, workers = make_study(dataset, trials, max_epochs)
            start = time.perf_counter()
            report = run_study_parallel(
                master, workers, processes=processes, backend=backend
            )
            seconds = time.perf_counter() - start
            identical = fingerprint(report) == seq_print
            payload[key][str(processes)] = seconds
            payload["deterministic"] &= identical
            table[f"{backend}_{processes}"] = (seconds, identical)
    ipc_after = ipc_counter_snapshot()
    payload["ipc_bytes"]["pool_shm"] = int(ipc_after["shm"] - ipc_before["shm"])
    payload["ipc_bytes"]["pool_pickled"] = int(
        ipc_after["pickled"] - ipc_before["pickled"]
    )
    # The legacy executor re-pickles the whole trainer spec (dataset
    # included) into every child, every study.
    master, workers = make_study(dataset, trials, max_epochs)
    spec_bytes = len(pickle.dumps(_TrainerSpec.of(workers[0].backend)))
    payload["ipc_bytes"]["legacy_spec_pickled_per_study"] = spec_bytes * max(
        process_counts
    )

    # Pool reuse: the second study on a live pool skips fork + dataset
    # shipping + trainer rebuild — the steady-state cost of a study.
    reuse_processes = min(max(process_counts), max(2, cpu_count))
    with TrialPool(processes=reuse_processes) as pool:
        for label in ("cold", "warm"):
            master, workers = make_study(dataset, trials, max_epochs)
            start = time.perf_counter()
            report = run_study_parallel(master, workers, pool=pool)
            seconds = time.perf_counter() - start
            identical = fingerprint(report) == seq_print
            payload["pool_reuse_s"][label] = seconds
            payload["deterministic"] &= identical
            table[f"pool_reuse_{label}"] = (seconds, identical)

    payload["_table"] = table
    return payload


def format_table(payload: dict) -> str:
    sequential_s = payload["sequential_s"]
    lines = [f"{'configuration':<20} {'wall(s)':>8} {'speedup':>8} {'identical':>10}"]
    for label, (seconds, identical) in payload["_table"].items():
        lines.append(
            f"{label:<20} {seconds:>8.3f} {sequential_s / seconds:>7.2f}x "
            f"{'yes' if identical else 'NO':>10}"
        )
    lines.append(
        f"(cpu cores: {payload['cpu_count']}, oversubscribed: "
        f"{payload['oversubscribed']}, pool shm bytes: "
        f"{payload['ipc_bytes']['pool_shm']})"
    )
    return "\n".join(lines)


def test_perf_parallel(benchmark):
    from _harness import emit
    from bench_perf_engine import update_bench_json

    payload = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit("perf_parallel", format_table(payload))
    table = payload.pop("_table")
    update_bench_json("parallel", payload)

    # The portable acceptance bar: parallel == sequential, always.
    # (Wall-clock wins need >=2 cores; the --smoke entry point below
    # asserts them on the multi-core CI runner.)
    assert payload["deterministic"]
    assert all(identical for _, identical in table.values())
    assert payload["ipc_bytes"]["pool_shm"] > 0  # datasets went via shm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast determinism gate; skips the BENCH_perf.json rewrite "
             "and reports the warm-pool-vs-sequential speedup as an "
             "informational metric",
    )
    parser.add_argument(
        "--perf-gate", action="store_true",
        help="with --smoke: also fail if warm pool-mode wall-clock "
             "exceeds sequential (needs >=2 cores; meant for dedicated "
             "machines, not noisy shared CI runners)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cpu_count = os.cpu_count() or 1
        processes = (min(2, cpu_count),) if cpu_count < 4 else (2, 4)
        payload = run_matrix(process_counts=processes, trials=6, max_epochs=4,
                             train_per_class=64)
    else:
        payload = run_matrix()
    print(format_table(payload))
    payload.pop("_table")

    if not payload["deterministic"]:
        print("FAIL: a parallel backend diverged from the sequential report",
              file=sys.stderr)
        return 1
    if args.smoke:
        warm = payload["pool_reuse_s"]["warm"]
        speedup = payload["sequential_s"] / warm
        if payload["cpu_count"] >= 2 and warm > payload["sequential_s"]:
            message = (
                f"warm pool study ({warm:.3f}s) slower than sequential "
                f"({payload['sequential_s']:.3f}s) on "
                f"{payload['cpu_count']} cores"
            )
            if args.perf_gate:
                print(f"FAIL: {message}", file=sys.stderr)
                return 1
            print(f"WARN: {message} (informational; not gated)")
        else:
            print(f"warm pool speedup vs sequential: {speedup:.2f}x "
                  f"on {payload['cpu_count']} cores (informational)")
        print("smoke OK")
        return 0

    from bench_perf_engine import update_bench_json

    update_bench_json("parallel", payload)
    print("BENCH_perf.json updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Block-store throughput, checkpoint dedup, and mid-write durability.

Three phases against the chunked, content-addressable, replicated
:class:`~repro.data.blockstore.BlockStore`:

1. **throughput** — put/get MB/s through a
   :class:`~repro.data.fs.FileNamespace` at R ∈ {1, 2, 3} (64KB chunks,
   1MB files), reads round-robining the whole working set;
2. **dedup** — a 10-checkpoint study of one model pushed through a
   ``ShardedParameterServer`` (3 shards, 2 replicas) whose history
   blobs ride one shared block store: successive checkpoints are
   near-duplicates, so content addressing must collapse them — the run
   *gates* ``dedup_ratio > 2`` (an acceptance criterion, not just a
   report);
3. **zero-bytes-lost** — a datanode is killed between two chunk
   uploads of a write; the commit-time heal plus repair must leave
   every file bit-identical, zero lost chunks — and the whole recovery,
   run twice with one seed, must produce bit-identical audits
   (determinism gate).

``--smoke`` runs phases 2 and 3 as CI gates (correctness only, no JSON
rewrite); a full run also writes ``BENCH_store.json`` at the repository
root with the throughput table.

Usage::

    python benchmarks/bench_perf_store.py [--smoke] [--seed N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from _harness import emit  # noqa: E402
from repro.data.blockstore import BlockStore  # noqa: E402
from repro.data.fs import FileNamespace  # noqa: E402
from repro.paramserver import ShardedParameterServer  # noqa: E402

BENCH_JSON = os.path.join(_ROOT, "BENCH_store.json")
REPLICA_FACTORS = (1, 2, 3)


def bench_throughput(replicas: int, files: int, file_bytes: int, seed: int) -> dict:
    """Put/get MB/s through the namespace at one replication factor."""
    rng = np.random.default_rng(seed)
    store = BlockStore(nodes=3, replicas=replicas, chunk_size=64 * 1024)
    fs = FileNamespace(store)
    payloads = [
        rng.integers(0, 256, file_bytes, dtype=np.uint8).tobytes()
        for _ in range(files)
    ]

    start = time.perf_counter()
    for i, data in enumerate(payloads):
        fs.write(f"f/{i}", data)
    put_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i, data in enumerate(payloads):
        assert fs.read(f"f/{i}") == data
    get_seconds = time.perf_counter() - start

    total_mb = files * file_bytes / 1e6
    return {
        "replicas": replicas,
        "files": files,
        "file_bytes": file_bytes,
        "put_mb_per_s": round(total_mb / put_seconds, 1),
        "get_mb_per_s": round(total_mb / get_seconds, 1),
    }


def bench_dedup(checkpoints: int, seed: int) -> dict:
    """The acceptance study: PS history dedup across N checkpoints.

    One model trains for N steps; each step perturbs a slice of the
    weights and pushes the full state dict. With 2-way shard
    replication every checkpoint is stored twice *logically* — content
    addressing must store the unchanged chunks once.
    """
    rng = np.random.default_rng(seed)
    sps = ShardedParameterServer(
        shards=3, replicas=2,
        block_store=BlockStore(nodes=1, replicas=1, chunk_size=4096),
    )
    state = {
        "fc1/W": rng.standard_normal((64, 128)).astype(np.float32),
        "fc1/b": rng.standard_normal(128).astype(np.float32),
        "fc2/W": rng.standard_normal((128, 10)).astype(np.float32),
        "fc2/b": rng.standard_normal(10).astype(np.float32),
    }
    for step in range(checkpoints):
        state["fc1/W"][step % 64, : 8] += 0.01  # a gradient step's dirty slice
        sps.put("study/best", {k: v.copy() for k, v in state.items()},
                performance=float(step))
    audit = sps.block_store.audit()
    restored = sps.get("study/best")
    assert all(np.array_equal(restored[k], state[k]) for k in state)
    assert audit["dedup_ratio"] > 2.0, (
        f"dedup gate failed: {audit['dedup_ratio']}x <= 2x over "
        f"{checkpoints} checkpoints"
    )
    return {
        "checkpoints": checkpoints,
        "shards": 3,
        "ps_replicas": 2,
        "logical_bytes": audit["logical_bytes"],
        "unique_bytes": audit["unique_bytes"],
        "dedup_ratio": audit["dedup_ratio"],
        "dedup_hits": audit["dedup_hits"],
    }


def bench_kill(files: int, file_bytes: int, seed: int) -> dict:
    """Mid-write node kill: zero bytes lost, deterministic recovery."""

    def run_once() -> tuple[dict, dict]:
        rng = np.random.default_rng(seed)
        store = BlockStore(nodes=3, replicas=2, chunk_size=16 * 1024)
        fs = FileNamespace(store)
        payloads = {
            f"f/{i}": rng.integers(0, 256, file_bytes, dtype=np.uint8).tobytes()
            for i in range(files)
        }
        for path, data in list(payloads.items())[:-1]:
            fs.write(path, data)
        last_path, last_data = list(payloads.items())[-1]

        def kill(index: int, digest: str) -> None:
            if index == 1:
                store.kill_node("dn-0")

        fs.write(last_path, last_data, on_chunk=kill)
        store.repair()
        lost_bytes = sum(
            len(data) for path, data in payloads.items() if fs.read(path) != data
        )
        audit = store.audit()
        return audit, {"lost_bytes": lost_bytes, "audit": audit}

    first_audit, first = run_once()
    second_audit, _ = run_once()
    assert first["lost_bytes"] == 0, f"{first['lost_bytes']} bytes lost"
    assert first_audit["lost"] == [], first_audit
    assert first_audit["under_replicated"] == [], first_audit
    assert json.dumps(first_audit, sort_keys=True) == json.dumps(
        second_audit, sort_keys=True
    ), "recovery audit differs across same-seed runs"
    return {
        "files": files,
        "file_bytes": file_bytes,
        "lost_bytes": 0,
        "rereplications": first_audit["rereplications"],
        "deterministic": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: run the dedup and zero-bytes-lost "
                             "gates on a small workload; perf numbers are "
                             "informational and the committed baseline is "
                             "not rewritten")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    files, file_bytes = (4, 256 * 1024) if args.smoke else (16, 1024 * 1024)
    checkpoints = 10  # fixed: the acceptance criterion's study size

    rows = [
        bench_throughput(replicas, files, file_bytes, args.seed)
        for replicas in REPLICA_FACTORS
    ]
    dedup = bench_dedup(checkpoints, args.seed)
    kill = bench_kill(max(3, files // 4), file_bytes, args.seed)

    lines = [f"{'R':>3} {'files':>6} {'put MB/s':>10} {'get MB/s':>10}"]
    for row in rows:
        lines.append(
            f"{row['replicas']:>3} {row['files']:>6} "
            f"{row['put_mb_per_s']:>10.1f} {row['get_mb_per_s']:>10.1f}"
        )
    lines.append(
        f"dedup: {dedup['checkpoints']} checkpoints x{dedup['ps_replicas']} "
        f"replicas -> {dedup['dedup_ratio']}x "
        f"({dedup['logical_bytes']}B logical / {dedup['unique_bytes']}B unique)"
    )
    lines.append(
        f"mid-write kill: {kill['lost_bytes']} bytes lost, "
        f"{kill['rereplications']} re-replications, "
        f"deterministic={kill['deterministic']}"
    )
    emit("perf_store", "\n".join(lines))

    if not args.smoke:
        payload = {
            "workload": {"files": files, "file_bytes": file_bytes,
                         "seed": args.seed},
            "throughput_by_replicas": {str(r["replicas"]): r for r in rows},
            "dedup": dedup,
            "mid_write_kill": kill,
        }
        with open(BENCH_JSON, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 10: single model, arrivals around the maximum throughput r_u.

Greedy (Algorithm 3) vs RL batch-size selection for inception_v3 with
B = {16, 32, 48, 64} and tau = 0.56 s. Expectation from the paper: the
two are similar when the rate is high; RL is better when the rate is
low (greedy's leftover requests go overdue).
"""

import pytest
from _harness import (
    PERIOD,
    SINGLE_MODEL,
    emit,
    run_serving,
    serving_summary_line,
    serving_timeline_table,
    single_model_rates,
)

HORIZON = 6160.0  # 22 arrival cycles


@pytest.fixture(scope="module")
def runs():
    r_u, _ = single_model_rates()
    greedy = run_serving("greedy-single", r_u, HORIZON, models=(SINGLE_MODEL,))
    rl = run_serving("rl", r_u, HORIZON, models=(SINGLE_MODEL,))
    return greedy, rl


def test_fig10_greedy_vs_rl_at_max_rate(benchmark, runs):
    (greedy, g_window), (rl, r_window) = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            serving_summary_line("greedy", greedy, g_window),
            serving_summary_line("RL", rl, r_window),
            "greedy timeline (one cycle):\n" + serving_timeline_table(greedy, g_window),
            "RL timeline (one cycle):\n" + serving_timeline_table(rl, r_window),
        ]
    )
    emit("fig10_single_max", text)

    g_overdue = greedy.overdue_fraction(g_window)
    r_overdue = rl.overdue_fraction(r_window)
    # high-rate phases saturate the model for both controllers: similar
    assert r_overdue == pytest.approx(g_overdue, abs=0.08)
    # both serve every arrival eventually (no drops at this capacity)
    assert greedy.dropped == 0


def test_fig10_rl_better_in_troughs(benchmark, runs):
    """During low-rate buckets, greedy's leftovers overdue; RL's do not."""
    (greedy, g_window), (rl, r_window) = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    g_rows = greedy.timeline(bucket=PERIOD / 10, start=g_window)
    r_rows = rl.timeline(bucket=PERIOD / 10, start=r_window)
    r_u, _ = single_model_rates()
    g_trough = sum(r.overdue_rate for r in g_rows if r.arrival_rate < 0.3 * r_u)
    r_trough = sum(r.overdue_rate for r in r_rows if r.arrival_rate < 0.3 * r_u)
    assert r_trough <= g_trough

"""Figure 16: the effect of beta in the reward (Equation 7).

Two RL runs at the r_l arrival rate: beta = 0 makes the reward pure
accuracy (bigger ensembles, more overdue requests); beta = 1 penalises
overdue requests (smaller ensembles, slightly lower accuracy, far fewer
overdue). The learner's shaped reward uses the same beta.
"""

import numpy as np
import pytest
from _harness import (
    PERIOD,
    emit,
    multi_model_rates,
    run_serving,
    serving_summary_line,
    serving_timeline_table,
)

HORIZON = 25200.0  # 90 arrival cycles


@pytest.fixture(scope="module")
def runs():
    _, r_l = multi_model_rates()
    beta0 = run_serving("rl", r_l, HORIZON, beta=0.0, shaping_beta=0.0)
    beta1 = run_serving("rl", r_l, HORIZON, beta=1.0, shaping_beta=1.0)
    return beta0, beta1


def _mean_models(metrics, window):
    rows = [r for r in metrics.timeline(bucket=PERIOD / 8, start=window)
            if r.serve_rate > 0]
    return float(np.mean([r.mean_models for r in rows]))


def test_fig16_beta_tradeoff(benchmark, runs):
    (beta0, w0), (beta1, w1) = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            serving_summary_line("beta=0", beta0, w0)
            + f" models/batch={_mean_models(beta0, w0):.2f}",
            serving_summary_line("beta=1", beta1, w1)
            + f" models/batch={_mean_models(beta1, w1):.2f}",
            "beta=0 timeline (Figure 16a/c):\n" + serving_timeline_table(beta0, w0),
            "beta=1 timeline (Figure 16b/d):\n" + serving_timeline_table(beta1, w1),
        ]
    )
    emit("fig16_beta", text)

    # (a vs b) smaller beta -> higher accuracy (reward is all accuracy)
    assert beta0.mean_accuracy(w0) >= beta1.mean_accuracy(w1)
    # (c vs d) smaller beta -> more overdue requests
    assert beta0.overdue_fraction(w0) > beta1.overdue_fraction(w1)
    # mechanism: beta=0 keeps (weakly) more models per batch
    assert _mean_models(beta0, w0) >= _mean_models(beta1, w1) - 0.05

"""Serving front end under load: sustained QPS, tail latency, shedding.

Drives the admission-controlled front end (`repro.core.serve.frontend`)
with the open/closed-loop load harness (`repro.core.serve.loadgen`) on
the discrete-event simulator, using inception_v3's profiled ``c(b)``
latency model — so the numbers are hardware-independent and two
same-seed runs are **bit-identical** (the portable determinism gate).

The headline matrix is an open-loop sweep at increasing concurrency:
sine-arrival target rates at multiples of the replica pool's peak
capacity (``replicas * b_max / c(b_max)``). Below capacity the front
end should serve everything inside the SLO; past capacity it must
*shed* (deadline/queue_full) rather than let the tail blow up — the
p99 of what it does serve stays bounded. A closed-loop run (think-time
clients) rides along as the self-limiting contrast.

Results go three places: a human table under ``benchmarks/results/``,
the machine-readable ``BENCH_serve.json`` at the repository root (the
committed serving baseline — schema in benchmarks/README.md), and the
pytest entry's assertions.

Standalone usage (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_perf_serve.py --smoke

exits non-zero if any same-seed re-run diverges, if fewer than three
concurrency levels were measured, or if overload fails to shed.
``--smoke`` still rewrites ``BENCH_serve.json`` (the artifact CI
uploads); the full run just sweeps longer horizons and more levels.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":  # standalone: make repro + _harness importable
    _HERE = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
    sys.path.insert(0, _HERE)

import json

from repro.core.serve import (
    FrontendConfig,
    LoadGenConfig,
    ReplicaPool,
    ServeFrontend,
    capacity_qps,
    run_load,
)
from repro.zoo import get_profile

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_serve.json")

MODEL = "inception_v3"
TAU = 0.56
REPLICAS = 2
MAX_QUEUE = 1024
SEED = 11

#: open-loop sine targets, as multiples of pool capacity. The paper's
#: sine (Equations 8/9) peaks at 1.1x its target and *averages* ~0.58x
#: of it over a full cycle, so the realised offered/capacity ratio per
#: level — recorded as ``offered_capacity_ratio`` — is what the
#: acceptance checks gate on, not the nominal multiple.
FULL_MULTIPLES = (0.6, 1.2, 1.8, 2.4, 3.0)
SMOKE_MULTIPLES = (0.8, 1.8, 3.0)


def run_level(mode: str, duration: float, seed: int, *, target_rate: float = 0.0,
              clients: int = 0, think_time: float = 0.05) -> tuple[dict, str]:
    """One load run; returns (summary, trace fingerprint)."""
    latency = get_profile(MODEL).inference_time
    config = FrontendConfig(latency=latency, tau=TAU, max_queue=MAX_QUEUE)
    frontend = ServeFrontend(config)
    pool = ReplicaPool(latency, replicas=REPLICAS)
    load = LoadGenConfig(
        mode=mode, target_rate=target_rate, period=duration,
        clients=clients or 8, think_time=think_time, duration=duration,
        seed=seed,
    )
    trace = run_load(frontend, pool, load)
    return trace.summary(), trace.fingerprint()


def run_matrix(multiples=FULL_MULTIPLES, duration: float = 30.0,
               closed_clients: int = 256) -> dict:
    """Sweep the concurrency levels; returns the BENCH_serve.json payload."""
    latency = get_profile(MODEL).inference_time
    capacity = capacity_qps(latency, 64, REPLICAS)
    started = time.perf_counter()
    payload = {
        "model": MODEL,
        "tau_s": TAU,
        "replicas": REPLICAS,
        "max_queue": MAX_QUEUE,
        "capacity_qps": capacity,
        "duration_s": duration,
        "seed": SEED,
        "levels": [],
        "deterministic": True,
    }
    for multiple in multiples:
        rate = multiple * capacity
        summary, fingerprint = run_level("open", duration, SEED, target_rate=rate)
        _, again = run_level("open", duration, SEED, target_rate=rate)
        level = {
            "mode": "open",
            "capacity_multiple": multiple,
            "target_qps": rate,
            "offered_capacity_ratio": summary["offered_qps"] / capacity,
            # Equations 8/9: the sine's peak is 1.1x its nominal target.
            "peak_capacity_ratio": 1.1 * multiple,
            "fingerprint": fingerprint,
            "rerun_identical": fingerprint == again,
            **{k: summary[k] for k in (
                "offered", "served", "shed", "shed_by_reason", "offered_qps",
                "sustained_qps", "p50_s", "p95_s", "p99_s", "slo_miss_rate",
                "shed_rate",
            )},
        }
        payload["levels"].append(level)
        payload["deterministic"] &= level["rerun_identical"]
    summary, fingerprint = run_level(
        "closed", duration, SEED, clients=closed_clients, think_time=0.05
    )
    _, again = run_level(
        "closed", duration, SEED, clients=closed_clients, think_time=0.05
    )
    payload["closed_loop"] = {
        "mode": "closed",
        "clients": closed_clients,
        "think_time_s": 0.05,
        "fingerprint": fingerprint,
        "rerun_identical": fingerprint == again,
        **{k: summary[k] for k in (
            "offered", "served", "shed", "shed_by_reason", "offered_qps",
            "sustained_qps", "p50_s", "p95_s", "p99_s", "slo_miss_rate",
            "shed_rate",
        )},
    }
    payload["deterministic"] &= payload["closed_loop"]["rerun_identical"]
    payload["bench_wall_s"] = time.perf_counter() - started
    return payload


def format_table(payload: dict) -> str:
    lines = [
        f"{MODEL} x{payload['replicas']} replicas, tau={payload['tau_s']}s, "
        f"capacity {payload['capacity_qps']:.0f} qps, "
        f"{payload['duration_s']:.0f}s per level",
        f"{'level':<14} {'target':>7} {'offered':>8} {'served':>8} "
        f"{'p50(ms)':>8} {'p95(ms)':>8} {'p99(ms)':>8} {'shed%':>6} "
        f"{'miss%':>6} {'same':>5}",
    ]
    rows = payload["levels"] + [payload["closed_loop"]]
    for level in rows:
        if level["mode"] == "open":
            label = f"open {level['capacity_multiple']:.1f}x"
            target = f"{level['target_qps']:.0f}"
        else:
            label = f"closed {level['clients']}c"
            target = "-"
        lines.append(
            f"{label:<14} {target:>7} {level['offered_qps']:>8.1f} "
            f"{level['sustained_qps']:>8.1f} {1000 * level['p50_s']:>8.1f} "
            f"{1000 * level['p95_s']:>8.1f} {1000 * level['p99_s']:>8.1f} "
            f"{100 * level['shed_rate']:>6.1f} "
            f"{100 * level['slo_miss_rate']:>6.2f} "
            f"{'yes' if level['rerun_identical'] else 'NO':>5}"
        )
    return "\n".join(lines)


def write_bench_json(payload: dict) -> None:
    """Write the committed serving baseline at the repository root."""
    with open(BENCH_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def check_payload(payload: dict) -> list[str]:
    """The portable acceptance bars; returns failure messages."""
    failures = []
    if not payload["deterministic"]:
        failures.append("a same-seed re-run diverged (fingerprint mismatch)")
    if len(payload["levels"]) < 3:
        failures.append(f"only {len(payload['levels'])} concurrency levels")
    # A sine level's stress is set by its *peak* (1.1x the nominal
    # multiple), not its cycle average: a 1.2x level spends 20% of the
    # cycle above capacity and legitimately sheds there while averaging
    # well under capacity.
    over = [l for l in payload["levels"] if l["peak_capacity_ratio"] > 1.3]
    under = [l for l in payload["levels"] if l["peak_capacity_ratio"] < 0.95]
    if not over:
        failures.append("no level peaked above 1.3x capacity — "
                        "the sweep never exercised overload")
    for level in over:
        ratio = level["peak_capacity_ratio"]
        if level["shed_rate"] <= 0.0:
            failures.append(
                f"peak {ratio:.2f}x capacity shed nothing — "
                "admission control is not engaging under overload"
            )
        if level["p99_s"] > 2.0 * TAU:
            failures.append(
                f"peak {ratio:.2f}x capacity served p99 "
                f"{level['p99_s']:.3f}s > 2*tau — shedding is not bounding the tail"
            )
    for level in under:
        if level["shed_rate"] > 0.05:
            failures.append(
                f"peak {level['peak_capacity_ratio']:.2f}x capacity shed "
                f"{100 * level['shed_rate']:.1f}% — admission too aggressive"
            )
    return failures


def test_perf_serve(benchmark):
    from _harness import emit

    payload = benchmark.pedantic(
        lambda: run_matrix(multiples=SMOKE_MULTIPLES, duration=8.0,
                           closed_clients=128),
        rounds=1, iterations=1,
    )
    emit("perf_serve", format_table(payload))
    write_bench_json(payload)
    failures = check_payload(payload)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast determinism gate: 3 open-loop levels at short horizons "
             "(still rewrites BENCH_serve.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_matrix(multiples=SMOKE_MULTIPLES, duration=8.0,
                             closed_clients=128)
    else:
        payload = run_matrix()
    print(format_table(payload))
    write_bench_json(payload)
    print(f"BENCH_serve.json updated ({len(payload['levels'])} open-loop "
          f"levels + closed loop, wall {payload['bench_wall_s']:.2f}s)")
    failures = check_payload(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("smoke OK" if args.smoke else "OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

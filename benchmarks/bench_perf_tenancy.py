"""Tenant isolation under a noisy neighbour: with vs without limits.

Two tenants share one admission-controlled front end
(`repro.core.serve.frontend`) on the discrete-event simulator: tenant A
floods at ~3x the replica pool's capacity while tenant B offers a
modest fraction of it. The matrix runs the same two-tenant load twice:

* **unprotected** — no tenant-scoped limits: A's flood fills the
  shared accept queue, so B's requests queue behind it and are shed or
  served late (the noisy-neighbour baseline);
* **isolated** — A is clamped by a tenant token bucket at half of
  capacity and a 50% queue-share cap: B must see **zero** sheds and a
  served p99 within ``2 * tau``.

Both runs use inception_v3's profiled ``c(b)`` latency model, so the
numbers are hardware-independent and two same-seed runs are
**bit-identical** (the portable determinism gate — each run is executed
twice and its trace fingerprints must match).

Results go three places: a human table under ``benchmarks/results/``,
the machine-readable ``BENCH_tenancy.json`` at the repository root (the
committed isolation baseline — schema in benchmarks/README.md), and
the pytest entry's assertions.

Standalone usage (CI smoke gate)::

    PYTHONPATH=src python benchmarks/bench_perf_tenancy.py --smoke

exits non-zero if any same-seed re-run diverges, if the unprotected
run fails to show noisy-neighbour impact on B, or if the isolated run
violates the isolation gate (any B shed, or B p99 > 2*tau).
``--smoke`` still rewrites ``BENCH_tenancy.json`` (the artifact CI
uploads); the full run just uses a longer horizon.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":  # standalone: make repro + _harness importable
    _HERE = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
    sys.path.insert(0, _HERE)

import json

from repro.core.serve import (
    FrontendConfig,
    LoadGenConfig,
    ReplicaPool,
    ServeFrontend,
    capacity_qps,
    run_multi_load,
)
from repro.zoo import get_profile

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_tenancy.json")

MODEL = "inception_v3"
TAU = 0.56
REPLICAS = 2
MAX_QUEUE = 256
SEED = 13

#: tenant A's flood, as a multiple of pool capacity; B's modest rate.
FLOOD_MULTIPLE = 3.0
QUIET_MULTIPLE = 0.15
#: isolated run: A's tenant token-bucket rate as a capacity multiple,
#: and its cap on the shared accept queue.
TENANT_A_RATE_MULTIPLE = 0.5
TENANT_A_QUEUE_SHARE = 0.5

SUMMARY_KEYS = (
    "offered", "served", "shed", "shed_by_reason", "offered_qps",
    "sustained_qps", "p50_s", "p95_s", "p99_s", "slo_miss_rate", "shed_rate",
)


def run_pair(isolated: bool, duration: float, seed: int) -> tuple[dict, dict, str]:
    """One two-tenant run; returns (A summary, B summary, fingerprint)."""
    latency = get_profile(MODEL).inference_time
    capacity = capacity_qps(latency, 64, REPLICAS)
    config = FrontendConfig(
        latency=latency,
        tau=TAU,
        max_queue=MAX_QUEUE,
        tenant_rate_limits=(
            {"tenant-a": TENANT_A_RATE_MULTIPLE * capacity} if isolated else None
        ),
        tenant_max_queue_share=TENANT_A_QUEUE_SHARE if isolated else None,
    )
    frontend = ServeFrontend(config)
    pool = ReplicaPool(latency, replicas=REPLICAS)
    loads = [
        LoadGenConfig(
            mode="open", target_rate=FLOOD_MULTIPLE * capacity,
            period=duration, duration=duration, seed=seed, tenant="tenant-a",
        ),
        LoadGenConfig(
            mode="open", target_rate=QUIET_MULTIPLE * capacity,
            period=duration, duration=duration, seed=seed + 1, tenant="tenant-b",
        ),
    ]
    trace = run_multi_load(frontend, pool, loads)
    return trace.summary("tenant-a"), trace.summary("tenant-b"), trace.fingerprint()


def run_matrix(duration: float = 30.0) -> dict:
    """Unprotected vs isolated runs; returns the BENCH_tenancy.json payload."""
    latency = get_profile(MODEL).inference_time
    capacity = capacity_qps(latency, 64, REPLICAS)
    started = time.perf_counter()
    payload = {
        "model": MODEL,
        "tau_s": TAU,
        "replicas": REPLICAS,
        "max_queue": MAX_QUEUE,
        "capacity_qps": capacity,
        "duration_s": duration,
        "seed": SEED,
        "flood_multiple": FLOOD_MULTIPLE,
        "quiet_multiple": QUIET_MULTIPLE,
        "tenant_a_rate_multiple": TENANT_A_RATE_MULTIPLE,
        "tenant_a_queue_share": TENANT_A_QUEUE_SHARE,
        "runs": {},
        "deterministic": True,
    }
    for name, isolated in (("unprotected", False), ("isolated", True)):
        a_summary, b_summary, fingerprint = run_pair(isolated, duration, SEED)
        _, _, again = run_pair(isolated, duration, SEED)
        run = {
            "isolated": isolated,
            "fingerprint": fingerprint,
            "rerun_identical": fingerprint == again,
            "tenant_a": {k: a_summary[k] for k in SUMMARY_KEYS},
            "tenant_b": {k: b_summary[k] for k in SUMMARY_KEYS},
        }
        payload["runs"][name] = run
        payload["deterministic"] &= run["rerun_identical"]
    isolated_b = payload["runs"]["isolated"]["tenant_b"]
    unprotected_b = payload["runs"]["unprotected"]["tenant_b"]
    payload["isolation"] = {
        "b_shed_isolated": isolated_b["shed"],
        "b_p99_isolated_s": isolated_b["p99_s"],
        "b_shed_unprotected": unprotected_b["shed"],
        "b_p99_unprotected_s": unprotected_b["p99_s"],
        "zero_b_sheds": isolated_b["shed"] == 0,
        "b_p99_within_2tau": isolated_b["p99_s"] <= 2.0 * TAU,
        "neighbour_was_noisy": (
            unprotected_b["shed"] > 0 or unprotected_b["p99_s"] > 2.0 * TAU
        ),
    }
    payload["bench_wall_s"] = time.perf_counter() - started
    return payload


def format_table(payload: dict) -> str:
    lines = [
        f"{MODEL} x{payload['replicas']} replicas, tau={payload['tau_s']}s, "
        f"capacity {payload['capacity_qps']:.0f} qps; tenant-a floods "
        f"{payload['flood_multiple']:.1f}x, tenant-b offers "
        f"{payload['quiet_multiple']:.2f}x, {payload['duration_s']:.0f}s",
        f"{'run':<12} {'tenant':<9} {'offered':>8} {'served':>8} "
        f"{'p50(ms)':>8} {'p99(ms)':>8} {'shed%':>6} {'miss%':>6} {'same':>5}",
    ]
    for name in ("unprotected", "isolated"):
        run = payload["runs"][name]
        for tenant in ("tenant_a", "tenant_b"):
            s = run[tenant]
            lines.append(
                f"{name:<12} {tenant.replace('_', '-'):<9} "
                f"{s['offered_qps']:>8.1f} {s['sustained_qps']:>8.1f} "
                f"{1000 * s['p50_s']:>8.1f} {1000 * s['p99_s']:>8.1f} "
                f"{100 * s['shed_rate']:>6.1f} {100 * s['slo_miss_rate']:>6.2f} "
                f"{'yes' if run['rerun_identical'] else 'NO':>5}"
            )
    iso = payload["isolation"]
    lines.append(
        f"isolation gate: B sheds {iso['b_shed_isolated']} "
        f"(unprotected {iso['b_shed_unprotected']}), B p99 "
        f"{1000 * iso['b_p99_isolated_s']:.0f}ms "
        f"(unprotected {1000 * iso['b_p99_unprotected_s']:.0f}ms, "
        f"2*tau {2000 * payload['tau_s']:.0f}ms)"
    )
    return "\n".join(lines)


def write_bench_json(payload: dict) -> None:
    """Write the committed isolation baseline at the repository root."""
    with open(BENCH_JSON, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def check_payload(payload: dict) -> list[str]:
    """The portable acceptance bars; returns failure messages."""
    failures = []
    if not payload["deterministic"]:
        failures.append("a same-seed re-run diverged (fingerprint mismatch)")
    iso = payload["isolation"]
    if not iso["neighbour_was_noisy"]:
        failures.append(
            "unprotected run showed no noisy-neighbour impact on tenant-b — "
            "the flood level is too low to prove the limits matter"
        )
    if not iso["zero_b_sheds"]:
        failures.append(
            f"isolated run shed {iso['b_shed_isolated']} tenant-b requests — "
            "tenant limits are not protecting the quiet tenant"
        )
    if not iso["b_p99_within_2tau"]:
        failures.append(
            f"isolated run served tenant-b p99 {iso['b_p99_isolated_s']:.3f}s "
            "> 2*tau — the flood still dominates the queue"
        )
    flood_a = payload["runs"]["isolated"]["tenant_a"]
    if flood_a["shed_rate"] <= 0.0:
        failures.append(
            "isolated run shed none of tenant-a's flood — "
            "the tenant bucket/queue cap never engaged"
        )
    return failures


def test_perf_tenancy(benchmark):
    from _harness import emit

    payload = benchmark.pedantic(
        lambda: run_matrix(duration=8.0), rounds=1, iterations=1
    )
    emit("perf_tenancy", format_table(payload))
    write_bench_json(payload)
    failures = check_payload(payload)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast determinism + isolation gate at a short horizon "
             "(still rewrites BENCH_tenancy.json)",
    )
    args = parser.parse_args(argv)

    payload = run_matrix(duration=8.0 if args.smoke else 30.0)
    print(format_table(payload))
    write_bench_json(payload)
    print(f"BENCH_tenancy.json updated (wall {payload['bench_wall_s']:.2f}s)")
    failures = check_payload(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("smoke OK" if args.smoke else "OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

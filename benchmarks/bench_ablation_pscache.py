"""Ablation: the parameter server's hot cache under tuning load.

Section 6.2: "hyper-parameters will be cached in memory if they are
accessed frequently" - during collaborative tuning the current-best
checkpoint is fetched by every warm-started trial. This ablation runs
the same CoStudy against a generously sized cache and a zero-byte cache
and reports the hit rates and backing-store traffic.
"""

import numpy as np
import pytest
from _harness import emit

from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    RandomSearchAdvisor,
    SurrogateTrainer,
    make_workers,
    run_study,
    section71_space,
)
from repro.paramserver import ParameterServer


def run_costudy_with_cache(cache_bytes: int, seed: int = 4):
    conf = HyperConf(max_trials=120, max_epochs_per_trial=50, delta=0.005)
    ps = ParameterServer(cache_bytes=cache_bytes)
    advisor = RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed))
    master = CoStudyMaster("ps-bench", conf, advisor, ps,
                           rng=np.random.default_rng(seed + 7))
    workers = make_workers(master, SurrogateTrainer(seed=seed), ps, conf, 3)
    run_study(master, workers)
    return ps


@pytest.fixture(scope="module")
def servers():
    return {
        "hot cache (256 MB)": run_costudy_with_cache(256 * 1024 * 1024),
        "no cache (0 B)": run_costudy_with_cache(0),
    }


def test_ablation_parameter_server_cache(benchmark, servers):
    results = benchmark.pedantic(lambda: servers, rounds=1, iterations=1)
    lines = [f"{'variant':<20} {'hit rate':>9} {'hits':>7} {'misses':>7} "
             f"{'store reads (B)':>16}"]
    for label, ps in results.items():
        lines.append(
            f"{label:<20} {ps.cache.hit_rate:>9.2f} {ps.cache.hits:>7} "
            f"{ps.cache.misses:>7} {ps.store.bytes_read:>16}"
        )
    emit("ablation_pscache", "\n".join(lines))

    hot = results["hot cache (256 MB)"]
    cold = results["no cache (0 B)"]
    # the warm-start key is hot: the cache absorbs almost every read
    assert hot.cache.hit_rate > 0.9
    assert cold.cache.hit_rate == 0.0
    # without the cache every fetch goes to the backing store
    assert cold.store.bytes_read > hot.store.bytes_read

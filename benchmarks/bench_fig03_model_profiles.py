"""Figure 3: accuracy, inference time and memory of the ConvNet zoo.

Regenerates the scatter's underlying table from the model cards and
benchmarks the latency-model evaluation itself (it sits on the serving
hot path: every dispatch decision calls ``c(m, b)``).
"""

from _harness import emit

from repro.zoo import list_profiles


def test_fig03_model_profile_table(benchmark):
    profiles = benchmark(list_profiles)
    lines = [
        f"{'model':<22} {'top-1 acc':>9} {'iter time b=50 (s)':>19} {'memory (MB)':>12}"
    ]
    for profile in sorted(profiles, key=lambda p: p.iteration_time_b50):
        lines.append(
            f"{profile.name:<22} {profile.top1_accuracy:>9.3f} "
            f"{profile.iteration_time_b50:>19.3f} {profile.memory_mb:>12.0f}"
        )
    emit("fig03_model_profiles", "\n".join(lines))

    # Figure 3's qualitative structure:
    by_name = {p.name: p for p in profiles}
    # mobilenet is the fastest, nasnet_large the slowest and most accurate
    fastest = min(profiles, key=lambda p: p.iteration_time_b50)
    assert fastest.name == "mobilenet_v1"
    most_accurate = max(profiles, key=lambda p: p.top1_accuracy)
    assert most_accurate.name == "nasnet_large"
    # VGGs are slow *and* inaccurate (the figure's lower-right corner)
    assert by_name["vgg_16"].iteration_time_b50 > by_name["inception_v3"].iteration_time_b50
    assert by_name["vgg_16"].top1_accuracy < by_name["inception_v3"].top1_accuracy
    # deeper resnets are slower but more accurate within the family
    assert by_name["resnet_v2_152"].top1_accuracy > by_name["resnet_v2_50"].top1_accuracy
    assert by_name["resnet_v2_152"].iteration_time_b50 > by_name["resnet_v2_50"].iteration_time_b50


def test_fig03_latency_model_hot_path(benchmark):
    """c(m, b) evaluations are cheap enough for per-dispatch use."""
    profiles = list_profiles()

    def evaluate_all():
        total = 0.0
        for profile in profiles:
            for batch in (16, 32, 48, 64):
                total += profile.inference_time(batch)
        return total

    total = benchmark(evaluate_all)
    assert total > 0

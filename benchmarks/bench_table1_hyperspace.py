"""Table 1: the three hyper-parameter groups, exercised as a HyperSpace.

Builds the demo space containing a knob from every group (data
preprocessing, model architecture, training algorithm) including the
dependency example, and benchmarks sampling/encoding throughput — the
master calls these for every trial proposal.
"""

import numpy as np
from _harness import emit

from repro.core.tune.spaces import demo_space


def test_table1_group_coverage(benchmark):
    space = benchmark(demo_space)
    groups = {
        "1. data preprocessing": ["rotation", "whitening"],
        "2. model architecture": ["width"],
        "3. training algorithm": ["lr", "momentum", "weight_decay", "dropout",
                                  "init_std", "lr_decay"],
    }
    lines = [f"{'group':<24} {'knobs':<50}"]
    for group, knobs in groups.items():
        lines.append(f"{group:<24} {', '.join(knobs):<50}")
        for knob in knobs:
            assert knob in space.knobs, f"missing Table 1 knob {knob}"
    emit("table1_hyperspace", "\n".join(lines))

    # the dependency example: lr_decay is generated after lr
    order = space.sample_order()
    assert order.index("lr") < order.index("lr_decay")


def test_table1_sampling_throughput(benchmark):
    space = demo_space()
    rng = np.random.default_rng(0)

    def sample_and_encode():
        trial = space.sample(rng)
        return space.encode(trial)

    point = benchmark(sample_and_encode)
    assert point.shape == (space.dimensions,)

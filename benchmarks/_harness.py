"""Shared setup for the per-figure benchmark harness.

Each benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index), prints the rows/series,
and writes them to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture. Absolute numbers come from the simulated
substrate; the assertions check the paper's *qualitative* claims (who
wins, where, by roughly what factor).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.serve import (
    DEFAULT_BATCH_SIZES,
    EnsembleScorer,
    GreedyAsyncController,
    GreedySingleController,
    GreedySyncController,
    RLController,
    ServingEnv,
    SineArrival,
)
from repro.core.tune import (
    BayesianAdvisor,
    CoStudyMaster,
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    make_workers,
    run_study,
    section71_space,
)
from repro.paramserver import ParameterServer
from repro.zoo import get_profile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Section 7.2 constants.
TAU = 0.56
PERIOD = 500 * TAU
SINGLE_MODEL = "inception_v3"
MULTI_MODELS = ("inception_v3", "inception_v4", "inception_resnet_v2")

_scorer_cache: dict[tuple[str, ...], EnsembleScorer] = {}


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def get_scorer(names=MULTI_MODELS) -> EnsembleScorer:
    names = tuple(names)
    if names not in _scorer_cache:
        _scorer_cache[names] = EnsembleScorer(names)
    return _scorer_cache[names]


# ----------------------------------------------------------------------
# tuning studies (Figures 8, 9, 11)
# ----------------------------------------------------------------------


def run_tuning_study(
    advisor: str,
    collaborative: bool,
    max_trials: int = 200,
    num_workers: int = 3,
    seed: int = 1,
    conf_kwargs: dict | None = None,
):
    """One Section 7.1 study on the surrogate trainer."""
    space = section71_space()
    conf = HyperConf(
        max_trials=max_trials, max_epochs_per_trial=50, delta=0.005,
        **(conf_kwargs or {}),
    )
    param_server = ParameterServer()
    advisor_obj = {"random": RandomSearchAdvisor, "bayesian": BayesianAdvisor}[advisor](
        space, rng=np.random.default_rng(seed)
    )
    if collaborative:
        master = CoStudyMaster("bench", conf, advisor_obj, param_server,
                               rng=np.random.default_rng(seed + 7))
    else:
        master = StudyMaster("bench", conf, advisor_obj, param_server)
    backend = SurrogateTrainer(seed=seed)
    workers = make_workers(master, backend, param_server, conf, num_workers)
    return run_study(master, workers)


def study_summary(report) -> dict:
    performances = np.array([r.performance for r in report.results])
    return {
        "trials": len(performances),
        "best": float(performances.max()),
        "mean": float(performances.mean()),
        "above_50": int((performances > 0.5).sum()),
        "total_epochs": report.total_epochs,
        "wall_hours": report.wall_time / 3600.0,
    }


def format_study_rows(label_reports: list[tuple[str, object]]) -> str:
    lines = [
        f"{'variant':<24} {'best':>7} {'mean':>7} {'>50%':>9} {'epochs':>8} {'wall(h)':>8}"
    ]
    for label, report in label_reports:
        s = study_summary(report)
        lines.append(
            f"{label:<24} {s['best']:>7.4f} {s['mean']:>7.3f} "
            f"{s['above_50']:>4}/{s['trials']:<4} {s['total_epochs']:>8} "
            f"{s['wall_hours']:>8.1f}"
        )
    return "\n".join(lines)


def best_so_far_table(report, points: int = 8) -> str:
    """Best-so-far accuracy vs total epochs (Figure 8c / 9c series)."""
    curve = report.best_so_far_curve()
    if not curve:
        return "(no trials)"
    indices = np.linspace(0, len(curve) - 1, points).astype(int)
    lines = [f"{'epochs':>8} {'best acc':>9}"]
    for i in indices:
        epochs, best = curve[i]
        lines.append(f"{epochs:>8} {best:>9.4f}")
    return "\n".join(lines)


def histogram_table(report, edges=(0.0, 0.25, 0.5, 0.75, 1.0)) -> str:
    """Trial-accuracy histogram (Figure 8b / 9b)."""
    performances = [r.performance for r in report.results]
    counts, _ = np.histogram(performances, bins=edges)
    lines = [f"{'accuracy bin':<16} {'trials':>7}"]
    for low, high, count in zip(edges[:-1], edges[1:], counts):
        lines.append(f"[{low:.2f}, {high:.2f})".ljust(16) + f" {count:>7}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# serving runs (Figures 10, 13, 14, 15, 16)
# ----------------------------------------------------------------------


def single_model_rates() -> tuple[float, float]:
    """(max-throughput r_u, min-throughput r_l) for inception_v3."""
    profile = get_profile(SINGLE_MODEL)
    return (
        max(DEFAULT_BATCH_SIZES) / profile.inference_time(max(DEFAULT_BATCH_SIZES)),
        min(DEFAULT_BATCH_SIZES) / profile.inference_time(min(DEFAULT_BATCH_SIZES)),
    )


def multi_model_rates() -> tuple[float, float]:
    """(572, 128) requests/s for the 3-model set (Section 7.2.2)."""
    profiles = [get_profile(n) for n in MULTI_MODELS]
    b_max, b_min = max(DEFAULT_BATCH_SIZES), min(DEFAULT_BATCH_SIZES)
    return (
        sum(b_max / p.inference_time(b_max) for p in profiles),
        min(b_min / p.inference_time(b_min) for p in profiles),
    )


def make_rl_controller(profiles, seed: int = 0) -> RLController:
    controller = RLController(profiles, DEFAULT_BATCH_SIZES, TAU, seed=seed,
                              lr=3e-3, gamma=0.0)
    controller.learner.entropy_min = 0.005
    controller.learner.entropy_decay = 0.9997
    return controller


def run_serving(
    controller_kind: str,
    target_rate: float,
    horizon: float,
    models=MULTI_MODELS,
    seed: int = 0,
    beta: float = 1.0,
    shaping_beta: float = 4.0,
):
    """One serving run; returns (metrics, measurement window start)."""
    profiles = [get_profile(n) for n in models]
    arrival = SineArrival(target_rate, PERIOD, rng=np.random.default_rng(seed))
    scorer = get_scorer(models) if len(profiles) > 1 else None
    if controller_kind == "greedy-single":
        controller = GreedySingleController(profiles[0], DEFAULT_BATCH_SIZES, TAU)
    elif controller_kind == "greedy-sync":
        controller = GreedySyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
    elif controller_kind == "greedy-async":
        controller = GreedyAsyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
    elif controller_kind == "rl":
        controller = make_rl_controller(profiles, seed=seed)
    else:
        raise ValueError(controller_kind)
    # Single-model serving has no ensemble-accuracy signal: Equation 7's
    # batch scaling (throughput incentive) is the right learner reward.
    # Multi-model serving uses per-request scaling so the ensemble
    # accuracy differences stay visible across arrival phases.
    if len(profiles) == 1:
        reward_shaping, learner_beta = "batch", beta
    else:
        reward_shaping, learner_beta = "per_request", shaping_beta
    env = ServingEnv(
        profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES, scorer=scorer,
        beta=beta, reward_shaping=reward_shaping, shaping_beta=learner_beta,
    )
    metrics = env.run(horizon)
    # Measure over the last 4 *whole* arrival cycles so that different
    # horizons sample identical sine phases.
    window = horizon - 4 * PERIOD if horizon > 5 * PERIOD else horizon * 0.8
    return metrics, window


def serving_timeline_table(metrics, window: float, cycles_buckets: int = 8) -> str:
    rows = metrics.timeline(bucket=PERIOD / cycles_buckets, start=window)
    lines = [f"{'t(s)':>8} {'arrive/s':>9} {'served/s':>9} {'overdue/s':>10} "
             f"{'accuracy':>9} {'models':>7}"]
    for row in rows[:cycles_buckets]:
        lines.append(
            f"{row.time:>8.0f} {row.arrival_rate:>9.0f} {row.serve_rate:>9.0f} "
            f"{row.overdue_rate:>10.0f} {row.accuracy:>9.4f} {row.mean_models:>7.2f}"
        )
    return "\n".join(lines)


def serving_summary_line(label: str, metrics, window: float) -> str:
    p95 = metrics.latency_quantile(0.95) if len(metrics.latencies) else float("nan")
    return (
        f"{label:<16} accuracy={metrics.mean_accuracy(window):.4f} "
        f"overdue={100 * metrics.overdue_fraction(window):.2f}% "
        f"exceed={1000 * metrics.mean_exceeding_time(window):.1f}ms "
        f"p95={1000 * p95:.0f}ms served={metrics.total_served}"
    )

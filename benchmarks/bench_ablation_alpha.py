"""Ablation: CoStudy's alpha-greedy initialisation schedule.

The paper introduces alpha-greedy because pure warm-starting lets a bad
early checkpoint poison later trials, while pure random initialisation
forfeits the collaboration. This ablation runs CoStudy under three
schedules — always-random (alpha = 1), always-warm (alpha = 0) and the
default decaying alpha — and shows the decaying schedule's balance.
"""

import pytest
from _harness import emit, format_study_rows, run_tuning_study, study_summary

VARIANTS = {
    # label: (alpha0, alpha_decay, alpha_min)
    "always random (a=1)": dict(alpha0=1.0, alpha_decay=1.0, alpha_min=1.0),
    "always warm (a=0)": dict(alpha0=0.0, alpha_decay=1.0, alpha_min=0.0),
    "decaying (default)": dict(alpha0=1.0, alpha_decay=0.9, alpha_min=0.05),
}


@pytest.fixture(scope="module")
def reports():
    return {
        label: run_tuning_study(
            "random", collaborative=True, max_trials=150, seed=2,
            conf_kwargs=schedule,
        )
        for label, schedule in VARIANTS.items()
    }


def test_ablation_alpha_greedy(benchmark, reports):
    results = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    emit("ablation_alpha", format_study_rows(list(results.items())))

    always_random = study_summary(results["always random (a=1)"])
    always_warm = study_summary(results["always warm (a=0)"])
    decaying = study_summary(results["decaying (default)"])

    # warm-starting (either form) dominates always-random on mean
    # accuracy and epoch cost - the collaboration is real
    assert decaying["mean"] > always_random["mean"]
    assert decaying["total_epochs"] < always_random["total_epochs"]
    # the decaying schedule lands within noise of always-warm on final
    # best (and keeps the exploration that protects against a bad early
    # checkpoint poisoning the study, per Section 4.2.2)
    assert decaying["best"] >= always_warm["best"] - 0.03
    assert decaying["best"] >= always_random["best"] - 0.02

"""Figure 8: Study vs CoStudy under random search.

Regenerates the three panels over the surrogate trainer:
(a) per-trial validation accuracies (summarised), (b) the accuracy
histogram, (c) best-so-far accuracy vs total training epochs.
"""

import numpy as np
import pytest
from _harness import (
    best_so_far_table,
    emit,
    format_study_rows,
    histogram_table,
    run_tuning_study,
    study_summary,
)


@pytest.fixture(scope="module")
def reports():
    study = run_tuning_study("random", collaborative=False)
    costudy = run_tuning_study("random", collaborative=True)
    return study, costudy


def test_fig08_study_vs_costudy(benchmark, reports):
    study, costudy = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)

    text = "\n\n".join(
        [
            "summary (Figure 8a):\n" + format_study_rows(
                [("random / Study", study), ("random / CoStudy", costudy)]
            ),
            "histogram, Study (Figure 8b):\n" + histogram_table(study),
            "histogram, CoStudy (Figure 8b):\n" + histogram_table(costudy),
            "best-so-far vs epochs, Study (Figure 8c):\n" + best_so_far_table(study),
            "best-so-far vs epochs, CoStudy (Figure 8c):\n" + best_so_far_table(costudy),
        ]
    )
    emit("fig08_random_costudy", text)

    s, c = study_summary(study), study_summary(costudy)
    # (b) CoStudy has more high-accuracy trials and fewer low ones
    assert c["above_50"] > s["above_50"]
    assert c["mean"] > s["mean"]
    # (c) CoStudy is faster: it reaches its best with far fewer epochs
    assert c["total_epochs"] < 0.5 * s["total_epochs"]
    # (c) and at least matches Study's final accuracy
    assert c["best"] >= s["best"] - 0.005
    # both land in the >90% regime the paper reports for CIFAR-10
    assert s["best"] > 0.88
    assert c["best"] > 0.90


def test_fig08_costudy_beats_study_at_equal_epoch_budget(benchmark, reports):
    """At any epoch budget, CoStudy's best-so-far dominates Study's."""
    study, costudy = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    study_curve = study.best_so_far_curve()
    co_curve = costudy.best_so_far_curve()
    horizon = co_curve[-1][0]  # epochs CoStudy needed in total

    def best_at(curve, budget):
        best = 0.0
        for epochs, acc in curve:
            if epochs > budget:
                break
            best = acc
        return best

    checkpoints = np.linspace(horizon * 0.3, horizon, 5)
    wins = sum(
        best_at(co_curve, b) >= best_at(study_curve, b) - 0.01 for b in checkpoints
    )
    assert wins >= 4  # CoStudy dominates (allowing one noisy checkpoint)

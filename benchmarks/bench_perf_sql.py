"""SQL analytics throughput: row-at-a-time vs batched vs cached UDFs.

The workload is the paper's case-study shape — a full-table scan whose
select list calls an ML UDF (here a small NumPy MLP forward pass) and
aggregates the predictions::

    SELECT classify(x) AS label, count(*) AS n FROM logs GROUP BY label

Three executions of the same query:

1. **row-at-a-time** — the ``NaiveExecutor`` oracle: one scalar model
   call per row (the pre-plan engine's only mode);
2. **batched** — the planned executor with the cross-query cache off:
   the EvalUdf operator collects every argument and dispatches
   hardware batches through the serving batcher, so the MLP runs a few
   vectorised forward passes instead of one per row;
3. **cached** — the planned executor with the prediction cache on,
   timing a *repeated* scan: the second run serves every argument from
   the cache (cache hits > 0 is an acceptance gate).

``--smoke`` runs the CI gates only: planned ≡ naive bit-for-bit on a
fixed query corpus, batched dispatch count < row count, and cache hits
on the repeated scan. A full run also *gates* batched and cached
beating row-at-a-time rows/s, then writes ``BENCH_sql.json`` at the
repository root.

Usage::

    python benchmarks/bench_perf_sql.py [--smoke] [--seed N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np  # noqa: E402

from _harness import emit  # noqa: E402
from repro.sqlext import Column, Database  # noqa: E402

BENCH_JSON = os.path.join(_ROOT, "BENCH_sql.json")

QUERY = "SELECT classify(x) AS label, count(*) AS n FROM logs GROUP BY label"

#: fixed differential corpus for the planned ≡ naive smoke gate.
CORPUS = (
    "SELECT x, y FROM logs WHERE x > 100 ORDER BY x LIMIT 20",
    "SELECT classify(x) AS label, count(*) AS n FROM logs GROUP BY label",
    "SELECT classify(x) AS label, y FROM logs WHERE classify(x) >= 2 "
    "AND y > 0 GROUP BY label, y ORDER BY y LIMIT 15",
    "SELECT count(*) AS n, sum(y) AS s, avg(x) AS m FROM logs WHERE x <= 500",
    "SELECT classify(y) AS a, classify(x) AS b FROM logs "
    "WHERE y != 13 GROUP BY a, b",
)


def make_model(seed: int, dim: int = 64, hidden: int = 256):
    """A fixed-weight MLP classifier over a deterministic featurizer."""
    rng = np.random.default_rng(seed)
    w1 = rng.standard_normal((dim, hidden)) / np.sqrt(dim)
    w2 = rng.standard_normal((hidden, 8)) / np.sqrt(hidden)
    scale = np.arange(1, dim + 1) * 0.01

    def features(values: np.ndarray) -> np.ndarray:
        return np.sin(np.outer(np.asarray(values, dtype=np.float64), scale))

    def classify_one(value) -> int:
        hidden_act = np.tanh(features([value]) @ w1)
        return int(np.argmax(hidden_act @ w2, axis=1)[0])

    def classify_batch(values: list) -> list[int]:
        hidden_act = np.tanh(features(values) @ w1)
        return [int(v) for v in np.argmax(hidden_act @ w2, axis=1)]

    return classify_one, classify_batch


def make_database(rows: int, seed: int, udf_cache: bool,
                  batched_udf: bool) -> Database:
    """The ``logs`` table plus the ``classify`` model UDF."""
    # Cache sized to the workload so the repeated scan is all hits.
    db = Database(udf_cache=udf_cache, cache_capacity=max(1024, rows))
    db.create_table("logs", [Column("id", "int"), Column("x", "int"),
                             Column("y", "int")])
    rng = np.random.default_rng(seed)
    # x values are distinct: the batched-vs-naive comparison measures
    # vectorisation, not dedup.
    xs = rng.permutation(rows * 3)[:rows]
    for i in range(rows):
        db.insert("logs", id=i, x=int(xs[i]), y=int(rng.integers(-20, 21)))
    classify_one, classify_batch = make_model(seed)
    db.udfs.register(
        "classify", classify_one,
        batch_fn=classify_batch if batched_udf else None,
    )
    return db


def gate_differential(rows: int, seed: int) -> int:
    """Planned ≡ naive bit-for-bit over the fixed corpus; returns checks."""
    db = make_database(rows, seed, udf_cache=True, batched_udf=True)
    checks = 0
    for sql in CORPUS:
        naive = db.execute(sql, executor="naive")
        planned = db.execute(sql, executor="planned")
        assert planned.columns == naive.columns, sql
        assert repr(planned.rows) == repr(naive.rows), (
            f"planned != naive for: {sql}"
        )
        checks += 1
    return checks


def bench_modes(rows: int, seed: int) -> dict:
    """Time the three execution modes over the same workload."""
    results = {}

    db = make_database(rows, seed, udf_cache=False, batched_udf=False)
    start = time.perf_counter()
    naive = db.execute(QUERY, executor="naive")
    naive_seconds = time.perf_counter() - start
    results["naive"] = {
        "rows_per_s": round(rows / naive_seconds, 1),
        "udf_calls": naive.udf_calls,
        "dispatches": 0,
    }

    db = make_database(rows, seed, udf_cache=False, batched_udf=True)
    start = time.perf_counter()
    batched = db.execute(QUERY, executor="planned")
    batched_seconds = time.perf_counter() - start
    assert repr(batched.rows) == repr(naive.rows), "batched != naive"
    assert batched.udf_batches < rows, (
        f"batched dispatch count {batched.udf_batches} not < row count {rows}"
    )
    results["batched"] = {
        "rows_per_s": round(rows / batched_seconds, 1),
        "udf_calls": batched.udf_calls,
        "dispatches": batched.udf_batches,
    }

    db = make_database(rows, seed, udf_cache=True, batched_udf=True)
    db.execute(QUERY, executor="planned")  # cold scan warms the cache
    start = time.perf_counter()
    cached = db.execute(QUERY, executor="planned")
    cached_seconds = time.perf_counter() - start
    assert repr(cached.rows) == repr(naive.rows), "cached != naive"
    assert cached.cache_hits > 0, "repeated scan produced no cache hits"
    assert cached.udf_calls == 0, (
        f"repeated scan still made {cached.udf_calls} model calls"
    )
    results["cached"] = {
        "rows_per_s": round(rows / cached_seconds, 1),
        "udf_calls": cached.udf_calls,
        "cache_hits": cached.cache_hits,
        "dispatches": cached.udf_batches,
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: run the planned≡naive, batching and "
                             "cache-hit gates on a small workload; the "
                             "committed baseline is not rewritten")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = 400 if args.smoke else 2000

    checks = gate_differential(min(rows, 400), args.seed)
    modes = bench_modes(rows, args.seed)

    batched_speedup = round(
        modes["batched"]["rows_per_s"] / modes["naive"]["rows_per_s"], 2
    )
    cached_speedup = round(
        modes["cached"]["rows_per_s"] / modes["naive"]["rows_per_s"], 2
    )
    lines = [
        f"differential corpus: {checks} queries, planned == naive",
        f"{'mode':>10} {'rows/s':>12} {'udf calls':>10} {'dispatches':>11}",
        f"{'naive':>10} {modes['naive']['rows_per_s']:>12.1f} "
        f"{modes['naive']['udf_calls']:>10} {'-':>11}",
        f"{'batched':>10} {modes['batched']['rows_per_s']:>12.1f} "
        f"{modes['batched']['udf_calls']:>10} "
        f"{modes['batched']['dispatches']:>11}",
        f"{'cached':>10} {modes['cached']['rows_per_s']:>12.1f} "
        f"{modes['cached']['udf_calls']:>10} "
        f"{modes['cached']['dispatches']:>11}",
        f"speedup vs naive: batched {batched_speedup}x, "
        f"cached {cached_speedup}x "
        f"(cache hits: {modes['cached']['cache_hits']})",
    ]
    emit("perf_sql", "\n".join(lines))

    if not args.smoke:
        # The acceptance criterion: batched+cached must beat
        # row-at-a-time on the full workload.
        assert batched_speedup > 1.0, (
            f"batched {batched_speedup}x did not beat row-at-a-time"
        )
        assert cached_speedup > 1.0, (
            f"cached {cached_speedup}x did not beat row-at-a-time"
        )
        payload = {
            "workload": {"rows": rows, "seed": args.seed, "query": QUERY},
            "differential_corpus_queries": checks,
            "modes": modes,
            "speedup_vs_naive": {
                "batched": batched_speedup,
                "cached": cached_speedup,
            },
        }
        with open(BENCH_JSON, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

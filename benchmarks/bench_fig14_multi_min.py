"""Figure 14: 3-model ensemble serving, arrivals around r_l = 128 req/s.

Baseline: all models run synchronously on every batch (fixed accuracy,
the full-ensemble value). RL: adapts the ensemble subset, trading a
little accuracy for far fewer overdue requests.
"""

import numpy as np
import pytest
from _harness import (
    PERIOD,
    emit,
    get_scorer,
    multi_model_rates,
    run_serving,
    serving_summary_line,
    serving_timeline_table,
)

BASELINE_HORIZON = 3920.0  # 14 arrival cycles
RL_HORIZON = 29960.0  # 107 arrival cycles


@pytest.fixture(scope="module")
def runs():
    _, r_l = multi_model_rates()
    sync = run_serving("greedy-sync", r_l, BASELINE_HORIZON)
    rl = run_serving("rl", r_l, RL_HORIZON)
    return sync, rl


def test_fig14_sync_baseline_vs_rl(benchmark, runs):
    (sync, s_window), (rl, r_window) = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            serving_summary_line("greedy-sync", sync, s_window),
            serving_summary_line("RL", rl, r_window),
            "sync timeline (Figure 14a/c):\n" + serving_timeline_table(sync, s_window),
            "RL timeline (Figure 14b/d):\n" + serving_timeline_table(rl, r_window),
        ]
    )
    emit("fig14_multi_min", text)

    scorer = get_scorer()
    # (a) the sync baseline's accuracy is pinned at the full ensemble
    assert sync.mean_accuracy(s_window) == pytest.approx(scorer.full_ensemble, abs=1e-6)
    # (b) RL's accuracy sits between the best single model and the full
    # ensemble (it drops models when pressed)
    rl_accuracy = rl.mean_accuracy(r_window)
    assert scorer.best_single - 0.01 < rl_accuracy < scorer.full_ensemble
    # (c/d) RL has far fewer overdue requests than the sync baseline
    assert rl.overdue_fraction(r_window) < 0.5 * sync.overdue_fraction(s_window)


def test_fig14_rl_uses_partial_ensembles(benchmark, runs):
    _, (rl, r_window) = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    rows = rl.timeline(bucket=PERIOD / 8, start=r_window)
    mean_models = np.mean([r.mean_models for r in rows if r.serve_rate > 0])
    # adaptive: strictly between "no ensemble" and "always all three"
    assert 1.3 < mean_models < 3.0

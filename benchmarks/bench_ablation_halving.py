"""Ablation: successive halving vs random search at equal epoch budget.

An extension beyond the paper (its framework claims extensibility to
popular tuning algorithms): successive halving front-loads many cheap
trials and spends the remaining budget continuing only the promising
ones from their own checkpoints. Compared against plain random search
given the same total number of training epochs.
"""

import numpy as np
import pytest
from _harness import emit

from repro.core.tune import (
    HalvingMaster,
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SuccessiveHalvingAdvisor,
    SurrogateTrainer,
    halving_conf,
    make_workers,
    run_study,
    section71_space,
)
from repro.paramserver import ParameterServer


def run_halving(seed: int):
    advisor = SuccessiveHalvingAdvisor(
        section71_space(), initial_trials=32, initial_epochs=3, eta=2, max_rungs=4,
        rng=np.random.default_rng(seed),
    )
    conf = halving_conf(advisor)
    ps = ParameterServer()
    master = HalvingMaster("sh-bench", conf, advisor, ps)
    workers = make_workers(master, SurrogateTrainer(seed=seed), ps, conf, 3)
    return run_study(master, workers)


def run_random(epoch_budget: int, seed: int):
    conf = HyperConf(max_trials=10_000, max_epochs_per_trial=50,
                     max_total_epochs=epoch_budget)
    ps = ParameterServer()
    master = StudyMaster(
        "rand-bench", conf,
        RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed)), ps,
    )
    workers = make_workers(master, SurrogateTrainer(seed=seed), ps, conf, 3)
    return run_study(master, workers)


@pytest.fixture(scope="module")
def outcomes():
    rows = []
    for seed in range(3):
        halving = run_halving(seed)
        random = run_random(halving.total_epochs, seed)
        rows.append((halving, random))
    return rows


def test_ablation_successive_halving(benchmark, outcomes):
    rows = benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    lines = [f"{'seed':>4} {'SH best':>8} {'SH epochs':>10} {'random best':>12} "
             f"{'random epochs':>14}"]
    halving_bests, random_bests = [], []
    for seed, (halving, random) in enumerate(rows):
        halving_bests.append(halving.best_performance)
        random_bests.append(random.best_performance)
        lines.append(
            f"{seed:>4} {halving.best_performance:>8.4f} {halving.total_epochs:>10} "
            f"{random.best_performance:>12.4f} {random.total_epochs:>14}"
        )
    lines.append("")
    lines.append(f"mean best, halving: {np.mean(halving_bests):.4f}")
    lines.append(f"mean best, random:  {np.mean(random_bests):.4f}")
    emit("ablation_halving", "\n".join(lines))

    # at matched epoch budgets, halving finds at-least-as-good optima
    assert np.mean(halving_bests) >= np.mean(random_bests) - 0.01
    # and its budgets are exact: 32+16+8+4 trials of 3/6/12/24 epochs
    halving_report = rows[0][0]
    assert len(halving_report.results) == 32 + 16 + 8 + 4
"""Section 8 case study: SQL + deep-learning UDF.

Measures the benefit the paper's usability study claims: the WHERE
predicate runs before the select-list UDF, so only the filtered rows
pay an inference call. Also benchmarks the end-to-end SQL query with a
live (deployed NumPy ensemble) UDF behind the gateway.
"""

import numpy as np
import pytest
from _harness import emit

import repro as rafiki
from repro.api.sdk import connect
from repro.data import make_image_classification
from repro.sqlext import Column, Database, make_inference_udf

LABELS = ("laksa", "chicken rice", "salad")
ROWS = 60


@pytest.fixture(scope="module")
def deployment():
    gateway = connect()
    photos = make_image_classification(
        name="food", num_classes=len(LABELS), image_shape=(3, 8, 8),
        train_per_class=16, val_per_class=6, test_per_class=20,
        difficulty=0.3, seed=7,
    )
    data = rafiki.import_images(photos)
    job_id = rafiki.Train(
        name="bench-train", data=data, task="ImageClassification",
        hyper=rafiki.HyperConf(max_trials=2, max_epochs_per_trial=4),
    ).run()
    infer_id = rafiki.Inference(rafiki.get_models(job_id)).run()

    # The cross-query prediction cache is off: this study measures the
    # pushdown saving in raw inference calls, so the second (unfiltered)
    # query must not be served from the first query's cache.
    db = Database(udf_cache=False)
    db.create_table(
        "foodlog",
        [Column("user_id", "integer"), Column("age", "integer", not_null=True),
         Column("image_path", "text", not_null=True)],
        primary_key=("user_id",),
    )
    images = {}
    rng = np.random.default_rng(0)
    for i in range(ROWS):
        path = f"m/{i}.npy"
        images[path] = photos.test_x[i % len(photos.test_x)]
        db.insert("foodlog", user_id=i, age=int(rng.integers(18, 80)),
                  image_path=path)
    db.udfs.register(
        "food_name",
        make_inference_udf(gateway, infer_id, images, LABELS, memoize=False),
    )
    return db


def test_case_study_predicate_pushdown_saving(benchmark, deployment):
    db = deployment
    filtered_sql = (
        "SELECT food_name(image_path) AS name, count(*) FROM foodlog "
        "WHERE age > 52 GROUP BY name"
    )
    result = benchmark.pedantic(db.execute, args=(filtered_sql,),
                                rounds=1, iterations=1)
    full = db.execute(
        "SELECT food_name(image_path) AS name, count(*) FROM foodlog GROUP BY name"
    )
    matching = sum(1 for row in db.tables["foodlog"].rows if row["age"] > 52)
    lines = [
        f"rows in foodlog:                 {ROWS}",
        f"rows matching age > 52:          {matching}",
        f"UDF calls (filtered query):      {result.udf_calls}",
        f"UDF calls (unfiltered query):    {full.udf_calls}",
        f"inference saved by pushdown:     {full.udf_calls - result.udf_calls} calls",
    ]
    emit("case_study_sql", "\n".join(lines))

    assert result.udf_calls == matching
    assert full.udf_calls == ROWS
    assert result.udf_calls < full.udf_calls


def test_case_study_query_latency(benchmark, deployment):
    """End-to-end SQL latency with live inference calls."""
    db = deployment
    sql = "SELECT food_name(image_path) AS name, count(*) FROM foodlog " \
          "WHERE age > 70 GROUP BY name"
    result = benchmark(db.execute, sql)
    assert len(result.rows) >= 1

"""Figure 11: distributed tuning scales nearly linearly with workers.

Runs the same trial budget on 1/2/4/8 workers over simulated time:
(a) total wall time per worker count, (b) best validation accuracy vs
wall time.
"""

import pytest
from _harness import emit, run_tuning_study

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def reports():
    return {
        workers: run_tuning_study(
            "random", collaborative=True, max_trials=120, num_workers=workers,
        )
        for workers in WORKER_COUNTS
    }


def test_fig11a_wall_time_scales(benchmark, reports):
    results = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    lines = [f"{'workers':>8} {'wall time (min, sim)':>21} {'speed-up':>9}"]
    base = results[1].wall_time
    for workers in WORKER_COUNTS:
        wall = results[workers].wall_time
        lines.append(f"{workers:>8} {wall / 60:>21.0f} {base / wall:>9.2f}x")
    emit("fig11a_scalability", "\n".join(lines))

    # wall time strictly decreases with more workers
    walls = [results[w].wall_time for w in WORKER_COUNTS]
    assert walls == sorted(walls, reverse=True)
    # near-linear: 8 workers at least 4x faster than 1
    assert walls[0] / walls[-1] > 4.0
    # 2 workers at least 1.6x faster than 1
    assert walls[0] / walls[1] > 1.6


def test_fig11b_accuracy_vs_wall_time(benchmark, reports):
    reports = benchmark.pedantic(lambda: reports, rounds=1, iterations=1)
    lines = [f"{'workers':>8} {'minutes to reach 85%':>21} {'final best':>11}"]
    minutes_to_target = {}
    for workers in WORKER_COUNTS:
        report = reports[workers]
        reached = next(
            (entry.time for entry in report.history if entry.best_so_far >= 0.85),
            None,
        )
        minutes_to_target[workers] = reached
        shown = f"{reached / 60:.0f}" if reached is not None else "n/a"
        lines.append(f"{workers:>8} {shown:>21} {report.best_performance:>11.4f}")
    emit("fig11b_accuracy_vs_walltime", "\n".join(lines))

    # every configuration reaches the 85% target...
    assert all(v is not None for v in minutes_to_target.values())
    # ...and more workers reach it sooner
    assert minutes_to_target[8] < minutes_to_target[1]
    assert minutes_to_target[4] < minutes_to_target[1]

"""Ablation: Algorithm 3's AIMD back-off constant delta.

delta controls how early the greedy batcher fires before the SLO
deadline (the paper suggests delta = 0.1 tau). Too small and batches
complete right at the edge - queueing jitter pushes requests over the
SLO; larger deltas dispatch earlier (smaller batches, lower throughput)
but are safer. The sweep shows overdue fractions across delta values.
"""

import numpy as np
import pytest
from _harness import DEFAULT_BATCH_SIZES, SINGLE_MODEL, TAU, PERIOD, emit

from repro.core.serve import GreedySingleController, ServingEnv, SineArrival
from repro.zoo import get_profile

DELTAS = (0.0, 0.05, 0.1, 0.3)
HORIZON = 3000.0


def run_with_backoff(delta_fraction: float):
    profile = get_profile(SINGLE_MODEL)
    rate = 0.85 * profile.throughput(max(DEFAULT_BATCH_SIZES))
    arrival = SineArrival(rate, PERIOD, rng=np.random.default_rng(3))
    controller = GreedySingleController(
        profile, DEFAULT_BATCH_SIZES, TAU, backoff=delta_fraction * TAU
    )
    env = ServingEnv([profile], controller, arrival, TAU, DEFAULT_BATCH_SIZES)
    metrics = env.run(HORIZON)
    return metrics


@pytest.fixture(scope="module")
def sweep():
    return {delta: run_with_backoff(delta) for delta in DELTAS}


def test_ablation_backoff_delta(benchmark, sweep):
    results = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    window = HORIZON * 0.3
    lines = [f"{'delta/tau':>10} {'overdue %':>10} {'exceed (ms)':>12} {'mean batch':>11}"]
    stats = {}
    for delta, metrics in results.items():
        dispatches = [d for d in metrics.dispatches if d.time >= window]
        mean_batch = np.mean([d.served for d in dispatches])
        overdue = metrics.overdue_fraction(window)
        stats[delta] = overdue
        lines.append(
            f"{delta:>10.2f} {100 * overdue:>10.2f} "
            f"{1000 * metrics.mean_exceeding_time(window):>12.1f} {mean_batch:>11.1f}"
        )
    emit("ablation_backoff", "\n".join(lines))

    # the paper's delta = 0.1 tau beats no back-off at all
    assert stats[0.1] <= stats[0.0]
    # every configuration still serves the workload
    assert all(m.total_served > 0 for m in results.values())

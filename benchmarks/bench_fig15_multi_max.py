"""Figure 15: 3-model serving, arrivals around r_u = 572 req/s.

Baseline: all models run asynchronously, one model per batch (no
ensemble, fixed per-model accuracy). RL: single fast models through the
peaks, better models / small ensembles in the troughs - higher
accuracy and no more overdue than the baseline.
"""

import pytest
from _harness import (
    PERIOD,
    emit,
    multi_model_rates,
    run_serving,
    serving_summary_line,
    serving_timeline_table,
)

BASELINE_HORIZON = 3920.0  # 14 arrival cycles
RL_HORIZON = 29960.0  # 107 arrival cycles


@pytest.fixture(scope="module")
def runs():
    r_u, _ = multi_model_rates()
    async_baseline = run_serving("greedy-async", r_u, BASELINE_HORIZON)
    rl = run_serving("rl", r_u, RL_HORIZON)
    return async_baseline, rl


def test_fig15_async_baseline_vs_rl(benchmark, runs):
    (async_metrics, a_window), (rl, r_window) = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            serving_summary_line("greedy-async", async_metrics, a_window),
            serving_summary_line("RL", rl, r_window),
            "async timeline (Figure 15a/c):\n"
            + serving_timeline_table(async_metrics, a_window),
            "RL timeline (Figure 15b/d):\n" + serving_timeline_table(rl, r_window),
        ]
    )
    emit("fig15_multi_max", text)

    # RL at least matches the no-ensemble baseline's accuracy...
    assert rl.mean_accuracy(r_window) >= async_metrics.mean_accuracy(a_window) - 0.003
    # ...without materially more overdue requests. (Known divergence,
    # see DESIGN.md 3.2 / EXPERIMENTS.md: eager dispatch costs a few
    # points of overdue through the saturated peaks vs the batch-perfect
    # async baseline, where the paper reports fewer.)
    assert rl.overdue_fraction(r_window) <= async_metrics.overdue_fraction(a_window) + 0.07


def test_fig15_rl_adapts_accuracy_to_rate(benchmark, runs):
    """Accuracy is higher in low-rate buckets than at the peak."""
    _, (rl, r_window) = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    rows = [r for r in rl.timeline(bucket=PERIOD / 10, start=r_window)
            if r.serve_rate > 0]
    r_u, _ = multi_model_rates()
    trough_acc = [r.accuracy for r in rows if r.arrival_rate < 0.3 * r_u]
    peak_acc = [r.accuracy for r in rows if r.arrival_rate > 0.9 * r_u]
    assert trough_acc and peak_acc
    assert min(trough_acc) >= max(peak_acc) - 0.005
    assert sum(trough_acc) / len(trough_acc) > sum(peak_acc) / len(peak_acc)

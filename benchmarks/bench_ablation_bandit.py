"""Ablation: model selection — Rafiki's diverse set vs Ease.ml's bandit.

Section 4.1 argues a simple strategy suffices because models perform
consistently across datasets; the Ease.ml alternative treats selection
as a multi-armed bandit. This ablation allocates a fixed trial budget
to four candidate models whose (surrogate) trial accuracies differ, and
compares the UCB allocator against a uniform split.
"""

import numpy as np
import pytest
from _harness import emit

from repro.zoo import UCBModelSelector

#: surrogate per-model trial accuracy distributions (mean, std) — the
#: 'plain' architecture trains best on this task.
MODEL_QUALITY = {
    "vgg-mini": (0.62, 0.08),
    "resnet-mini": (0.71, 0.08),
    "squeeze-mini": (0.55, 0.08),
    "snoek8": (0.78, 0.08),
}
BUDGET = 80


def run_bandit(seed: int = 0):
    rng = np.random.default_rng(seed)
    selector = UCBModelSelector(list(MODEL_QUALITY), exploration=0.4,
                                rng=np.random.default_rng(seed + 1))
    best = 0.0
    for _ in range(BUDGET):
        model = selector.select()
        mean, std = MODEL_QUALITY[model]
        accuracy = float(np.clip(rng.normal(mean, std), 0.0, 1.0))
        selector.report(model, accuracy)
        best = max(best, accuracy)
    return selector, best


def run_uniform(seed: int = 0):
    rng = np.random.default_rng(seed)
    best = 0.0
    per_model = BUDGET // len(MODEL_QUALITY)
    spent = {}
    for model, (mean, std) in MODEL_QUALITY.items():
        spent[model] = per_model
        for _ in range(per_model):
            best = max(best, float(np.clip(rng.normal(mean, std), 0.0, 1.0)))
    return spent, best


@pytest.fixture(scope="module")
def outcomes():
    bandit_bests, uniform_bests = [], []
    last_selector = None
    for seed in range(5):
        selector, bandit_best = run_bandit(seed)
        _, uniform_best = run_uniform(seed)
        bandit_bests.append(bandit_best)
        uniform_bests.append(uniform_best)
        last_selector = selector
    return last_selector, bandit_bests, uniform_bests


def test_ablation_bandit_model_selection(benchmark, outcomes):
    selector, bandit_bests, uniform_bests = benchmark.pedantic(
        lambda: outcomes, rounds=1, iterations=1
    )
    allocation = selector.allocation()
    lines = [f"{'model':<14} {'UCB trials':>11} {'uniform trials':>15} {'true mean':>10}"]
    for model, (mean, _std) in MODEL_QUALITY.items():
        lines.append(
            f"{model:<14} {allocation[model]:>11} {BUDGET // len(MODEL_QUALITY):>15} "
            f"{mean:>10.2f}"
        )
    lines.append("")
    lines.append(f"best trial, UCB:     {np.mean(bandit_bests):.4f} (mean over 5 seeds)")
    lines.append(f"best trial, uniform: {np.mean(uniform_bests):.4f} (mean over 5 seeds)")
    emit("ablation_bandit", "\n".join(lines))

    # UCB gives the strongest model the largest share of the budget
    assert allocation["snoek8"] == max(allocation.values())
    # and finds an at-least-as-good best trial as the uniform split
    assert np.mean(bandit_bests) >= np.mean(uniform_bests) - 0.01

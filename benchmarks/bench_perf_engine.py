"""Engine hot-path performance: fast im2col/col2im vs the legacy path.

Times the convolution hot paths twice over identical workloads:

* **legacy** — the pre-optimisation engine, embedded verbatim below:
  per-call index building, fancy-indexing gather, ``np.add.at``
  scatter, float64 compute;
* **fast** — the shipped engine: LRU-cached indices,
  ``sliding_window_view`` gather, per-kernel-offset slab accumulation
  (with the flat ``np.bincount`` scatter also measured), float32
  compute.

Writes human-readable rows to ``benchmarks/results/perf_engine.txt``
and merges machine-readable numbers into ``BENCH_perf.json`` at the
repository root (the committed perf baseline).
"""

import json
import os
import time

import numpy as np
import pytest
from _harness import emit

from repro.tensor import Conv2D, using_dtype
from repro.tensor import layers as layers_module
from repro.tensor.im2col import (
    col2im,
    col2im_auto,
    col2im_bincount,
    conv_output_size,
    im2col,
)

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_perf.json")

#: CIFAR-ish conv workload: batch 32, 8->16 channels, 16x16 images.
BATCH, CHANNELS, SIZE, FILTERS, KERNEL = 32, 8, 16, 16, 3
REPEATS = 30


def update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into the committed BENCH_perf.json baseline."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


# ----------------------------------------------------------------------
# The pre-optimisation implementations, embedded so the comparison stays
# reproducible after the legacy code is gone from the engine.
# ----------------------------------------------------------------------


def _legacy_patch_indices(channels, height, width, kernel_h, kernel_w, stride, pad):
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chans = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return chans, rows, cols, out_h, out_w


def legacy_im2col(x, kernel_h, kernel_w, stride, pad):
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    chans, rows, cols, _out_h, _out_w = _legacy_patch_indices(
        c, h, w, kernel_h, kernel_w, stride, pad
    )
    patches = padded[:, chans, rows, cols]
    return patches.transpose(1, 2, 0).reshape(c * kernel_h * kernel_w, -1)


def legacy_col2im(cols, x_shape, kernel_h, kernel_w, stride, pad):
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    chans, rows, cols_idx, out_h, out_w = _legacy_patch_indices(
        c, h, w, kernel_h, kernel_w, stride, pad
    )
    reshaped = cols.reshape(c * kernel_h * kernel_w, out_h * out_w, n).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), chans, rows, cols_idx), reshaped)
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------


def time_per_call(fn, repeats: int = REPEATS) -> float:
    """Best-of-3 mean seconds per call over ``repeats`` calls."""
    fn()  # warm caches / allocator
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def conv_step_seconds(dtype) -> float:
    """Seconds for one Conv2D forward+backward with the *current* engine."""
    rng = np.random.default_rng(0)
    with using_dtype(dtype):
        conv = Conv2D(FILTERS, kernel_size=KERNEL, name=f"bench_conv_{dtype.__name__}")
        conv.build((CHANNELS, SIZE, SIZE), rng)
        x = rng.standard_normal((BATCH, CHANNELS, SIZE, SIZE)).astype(dtype)
        out = conv.forward(x, training=True)
        grad = np.ones_like(out)
        return time_per_call(lambda: (conv.forward(x, training=True), conv.backward(grad)))


def legacy_conv_step_seconds(monkeypatch) -> float:
    """Same workload through the embedded legacy kernels in float64."""
    monkeypatch.setattr(layers_module, "im2col", legacy_im2col)
    monkeypatch.setattr(layers_module, "col2im_auto", legacy_col2im)
    try:
        return conv_step_seconds(np.float64)
    finally:
        monkeypatch.undo()


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((BATCH, CHANNELS, SIZE, SIZE)).astype(np.float32)
    return {"x32": x}


def test_perf_engine(benchmark, monkeypatch, workload):
    x32 = workload["x32"]
    cols32 = im2col(x32, KERNEL, KERNEL, 1, 1)

    timings = {
        # equal-dtype micro comparisons isolate the algorithmic win
        "im2col": {
            "legacy_s": time_per_call(lambda: legacy_im2col(x32, KERNEL, KERNEL, 1, 1)),
            "fast_s": time_per_call(lambda: im2col(x32, KERNEL, KERNEL, 1, 1)),
        },
        "col2im": {
            "legacy_s": time_per_call(
                lambda: legacy_col2im(cols32, x32.shape, KERNEL, KERNEL, 1, 1)
            ),
            "fast_s": time_per_call(lambda: col2im(cols32, x32.shape, KERNEL, KERNEL, 1, 1)),
        },
        "col2im_auto": {
            "legacy_s": time_per_call(
                lambda: legacy_col2im(cols32, x32.shape, KERNEL, KERNEL, 1, 1)
            ),
            "fast_s": time_per_call(
                lambda: col2im_auto(cols32, x32.shape, KERNEL, KERNEL, 1, 1)
            ),
        },
        "col2im_bincount": {
            "legacy_s": time_per_call(
                lambda: legacy_col2im(cols32, x32.shape, KERNEL, KERNEL, 1, 1)
            ),
            "fast_s": time_per_call(
                lambda: col2im_bincount(cols32, x32.shape, KERNEL, KERNEL, 1, 1)
            ),
        },
        # end-to-end: old engine (legacy kernels, float64) vs new
        # engine (fast kernels, float32 default)
        "conv_forward_backward": {
            "legacy_s": legacy_conv_step_seconds(monkeypatch),
            "fast_s": conv_step_seconds(np.float32),
        },
    }
    for entry in timings.values():
        entry["speedup"] = entry["legacy_s"] / entry["fast_s"]
        entry["fast_ops_per_s"] = 1.0 / entry["fast_s"]
    benchmark.pedantic(lambda: timings, rounds=1, iterations=1)

    lines = [f"{'hot path':<24} {'legacy(ms)':>11} {'fast(ms)':>9} {'speedup':>8}"]
    for name, entry in timings.items():
        lines.append(
            f"{name:<24} {1e3 * entry['legacy_s']:>11.3f} "
            f"{1e3 * entry['fast_s']:>9.3f} {entry['speedup']:>7.1f}x"
        )
    emit("perf_engine", "\n".join(lines))

    update_bench_json(
        "engine",
        {
            "workload": {
                "batch": BATCH, "channels": CHANNELS, "image": SIZE,
                "filters": FILTERS, "kernel": KERNEL,
            },
            "timings": timings,
        },
    )

    # The PR's acceptance bar: conv forward+backward at least 3x the
    # pre-optimisation engine. The micro paths must not regress either.
    assert timings["conv_forward_backward"]["speedup"] >= 3.0
    assert timings["im2col"]["speedup"] >= 1.0
    assert timings["col2im"]["speedup"] >= 2.0
    # The auto dispatcher must never pick the losing variant: on this
    # (large) workload it routes to the slab path.
    assert timings["col2im_auto"]["speedup"] >= 2.0

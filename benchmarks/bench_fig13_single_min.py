"""Figure 13: single model, arrivals around the minimum throughput r_l.

At this gentler rate the paper finds RL better than greedy at both high
and low phases: the queue rarely fills a candidate batch, so greedy
keeps stalling on Algorithm 3's deadline check while RL serves
immediately.
"""

import pytest
from _harness import (
    SINGLE_MODEL,
    emit,
    run_serving,
    serving_summary_line,
    serving_timeline_table,
    single_model_rates,
)

HORIZON = 6160.0  # 22 arrival cycles


@pytest.fixture(scope="module")
def runs():
    _, r_l = single_model_rates()
    greedy = run_serving("greedy-single", r_l, HORIZON, models=(SINGLE_MODEL,))
    rl = run_serving("rl", r_l, HORIZON, models=(SINGLE_MODEL,))
    return greedy, rl


def test_fig13_greedy_vs_rl_at_min_rate(benchmark, runs):
    (greedy, g_window), (rl, r_window) = benchmark.pedantic(
        lambda: runs, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            serving_summary_line("greedy", greedy, g_window),
            serving_summary_line("RL", rl, r_window),
            "greedy timeline (one cycle):\n" + serving_timeline_table(greedy, g_window),
            "RL timeline (one cycle):\n" + serving_timeline_table(rl, r_window),
        ]
    )
    emit("fig13_single_min", text)

    # overall fewer overdue requests than the Figure 10 regime
    assert greedy.overdue_fraction(g_window) < 0.10
    # RL strictly beats greedy on both overdue count and exceeding time
    assert rl.overdue_fraction(r_window) <= greedy.overdue_fraction(g_window)
    assert rl.mean_exceeding_time(r_window) <= greedy.mean_exceeding_time(g_window)


def test_fig13_greedy_overdue_comes_from_leftovers(benchmark, runs):
    """Greedy's overdue requests are served in *padded* (min-batch)
    dispatches - the leftover mechanism the paper describes."""
    (greedy, g_window), _ = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    overdue_dispatches = [
        d for d in greedy.dispatches if d.time >= g_window and d.overdue > 0
    ]
    if overdue_dispatches:  # at least: overwhelmingly leftover batches
        leftover_like = [d for d in overdue_dispatches if d.served < d.batch_size]
        assert len(leftover_like) >= 0.8 * len(overdue_dispatches)

"""Benchmark-suite configuration.

The heavy experiments run exactly once per benchmark (rounds=1); the
regenerated figure tables are printed and persisted under
``benchmarks/results/``.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

"""Multi-core trial execution with ``run_study_parallel``.

Runs the same small real-training study twice — once with the
in-process ``run_study`` loop and once with trials farmed out to child
processes via :class:`repro.core.tune.ParallelTrialExecutor` — and
shows that the study reports are identical: same best accuracy, same
epoch counts, same simulated wall time. Only real wall-clock changes
(on a multi-core box the parallel run finishes roughly ``min(workers,
cores)`` times faster, since each trial's NumPy training occupies its
own core).

Run:  python examples/parallel_tuning.py
"""

import os
import time

import numpy as np

from repro.core.tune import (
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    make_workers,
    run_study,
    run_study_parallel,
)
from repro.data import make_image_classification
from repro.paramserver import ParameterServer
from repro.zoo.builders import build_mlp

TRIALS = 6
WORKERS = 3
SEED = 4


def make_study(dataset):
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.3, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.9)
    conf = HyperConf(max_trials=TRIALS, max_epochs_per_trial=4, delta=0.005)
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(space, rng=np.random.default_rng(SEED))
    master = StudyMaster("parallel-demo", conf, advisor, param_server)
    backend = RealTrainer(dataset, build_mlp, batch_size=16,
                          use_augmentation=False, seed=SEED)
    workers = make_workers(master, backend, param_server, conf, WORKERS)
    return master, workers


dataset = make_image_classification(
    name="demo", num_classes=3, image_shape=(3, 8, 8),
    train_per_class=24, val_per_class=8, test_per_class=8,
    difficulty=0.3, seed=SEED,
)

# Sequential and parallel runs must hand out identical trial ids for a
# bit-for-bit comparison; rewind the global counter between them.
import repro.core.tune.trial as trial_module
import itertools

results = {}
for mode in ("sequential", "parallel"):
    trial_module._trial_ids = itertools.count(1)
    master, workers = make_study(dataset)
    start = time.perf_counter()
    if mode == "parallel":
        report = run_study_parallel(master, workers, processes=WORKERS)
    else:
        report = run_study(master, workers)
    elapsed = time.perf_counter() - start
    results[mode] = (report, elapsed)
    print(f"{mode:<11} best={report.best_performance:.4f}  "
          f"epochs={report.total_epochs}  sim-wall={report.wall_time:.0f}s  "
          f"real-wall={elapsed:.2f}s")

seq, par = results["sequential"][0], results["parallel"][0]
assert par.best_performance == seq.best_performance
assert par.total_epochs == seq.total_epochs
assert par.wall_time == seq.wall_time
print(f"\nreports identical across {os.cpu_count()} CPU core(s): the parallel "
      "executor changes where epochs run, never what the study decides.")

"""Object detection: bounding-box output shapes (Figure 2's second task).

The Figure 2 API notes that a job's ``output_shape`` "could be the
total number of classes or bounding-box shape". This example trains a
small regression network that localises a bright blob in synthetic
images, tuning its hyper-parameters through the same study machinery
the classification tasks use, and reports mean IoU.

Run:  python examples/object_detection.py
"""

import numpy as np

from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    Trial,
    make_workers,
    run_study,
)
from repro.data import make_object_detection, mean_iou
from repro.paramserver import ParameterServer
from repro.tensor import Adam, MeanSquaredError, Sigmoid
from repro.zoo.builders import build_mlp

dataset = make_object_detection(train_count=200, val_count=60, noise=0.25, seed=5)
print(f"dataset: {dataset.train_x.shape[0]} train / {dataset.val_x.shape[0]} val "
      f"images of shape {dataset.image_shape}; labels are (cx, cy, w, h) boxes")


class DetectionBackend:
    """Trainer backend for the box-regression task (duck-typed)."""

    def __init__(self, seed=0):
        self.seed = seed

    def start(self, trial: Trial, init_state):
        rng = np.random.default_rng(self.seed + trial.trial_id)
        network = build_mlp(dataset.image_shape, 4, rng,
                            hidden=(int(trial.params["hidden"]),))
        network.layers.append(Sigmoid(name=f"sig{trial.trial_id}"))
        if init_state:
            network.warm_start(init_state)
        return _Session(network, trial)

    def epoch_cost(self, trial):
        return 10.0


class _Session:
    def __init__(self, network, trial):
        self.network = network
        self.loss = MeanSquaredError()
        self.optimizer = Adam(lr=float(trial.params["lr"]))
        self.epochs = 0
        self.best_performance = 0.0

    def run_epoch(self):
        # one epoch = 10 full-batch steps on this small dataset
        for _ in range(10):
            self.network.zero_grads()
            predictions = self.network.forward(dataset.train_x, training=True)
            self.loss.forward(predictions, dataset.train_boxes)
            self.network.backward(self.loss.backward())
            self.optimizer.step(self.network.params, self.network.grads)
        score = mean_iou(self.network.forward(dataset.val_x), dataset.val_boxes)
        self.epochs += 1
        self.best_performance = max(self.best_performance, score)
        return score

    def state_dict(self):
        return self.network.state_dict()


space = HyperSpace()
space.add_range_knob("lr", "float", 1e-4, 3e-2, log_scale=True)
space.add_categorical_knob("hidden", "int", [32, 64, 128])

conf = HyperConf(max_trials=8, max_epochs_per_trial=12, early_stop_patience=4,
                 delta=0.01)
param_server = ParameterServer()
master = CoStudyMaster(
    "detect", conf, RandomSearchAdvisor(space, rng=np.random.default_rng(0)),
    param_server, rng=np.random.default_rng(1),
)
workers = make_workers(master, DetectionBackend(), param_server, conf, num_workers=2)
report = run_study(master, workers)

best = report.best
print(f"\ntuned {len(report.results)} trials; best validation mean IoU "
      f"{best.performance:.3f} with {best.trial.params}")
print("(an untrained/random box scores around 0.1 mean IoU)")

"""Quickstart: the paper's Figure 2 user code, end to end.

Trains Rafiki's built-in image-classification models on an uploaded
dataset (4 lines, as in the paper), deploys them instantly, and sends a
prediction query — all through the Python SDK backed by the REST-style
gateway.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as rafiki
from repro.api.sdk import connect
from repro.data import make_image_classification

# ----------------------------------------------------------------------
# Connect the SDK to a Rafiki deployment (here: an in-process cluster
# with 3 simulated nodes, as in the paper's testbed).
# ----------------------------------------------------------------------
gateway = connect()

# ----------------------------------------------------------------------
# train.py (Figure 2) - no real image folder ships offline, so we
# generate a synthetic "food photo" dataset; rafiki.import_images also
# accepts a directory of <label>/<image>.npy files.
# ----------------------------------------------------------------------
food_photos = make_image_classification(
    name="food", num_classes=4, image_shape=(3, 8, 8),
    train_per_class=30, val_per_class=10, test_per_class=8,
    difficulty=0.3, seed=42,
)
data = rafiki.import_images(food_photos)
hyper = rafiki.HyperConf(max_trials=5, max_epochs_per_trial=8)
job = rafiki.Train(
    name="train", data=data, task="ImageClassification",
    input_shape=(3, 8, 8), output_shape=(4,), hyper=hyper,
)
job_id = job.run()
status = gateway.handle("GET", f"/train/{job_id}").body
print(f"training job {job_id}: {status['status']}, "
      f"models={status['models']}, best={status['best_performance']:.3f}")

# ----------------------------------------------------------------------
# infer.py (Figure 2): instant deployment from the parameter server.
# ----------------------------------------------------------------------
models = rafiki.get_models(job_id)
infer_job = rafiki.Inference(models)
infer_id = infer_job.run()
print(f"deployed {[m['model_name'] for m in models]} as {infer_id}")

# ----------------------------------------------------------------------
# query.py (Figure 2): an application user sends an image.
# ----------------------------------------------------------------------
correct = 0
for i in range(len(food_photos.test_y)):
    img = food_photos.test_x[i]
    ret = rafiki.query(job=infer_id, data={"img": img})
    correct += int(ret["label"] == food_photos.test_y[i])
    if i < 3:
        print(f"query {i}: predicted={ret['label']} "
              f"true={int(food_photos.test_y[i])} votes={ret['votes']}")
total = len(food_photos.test_y)
print(f"ensemble test accuracy: {correct}/{total} = {correct / total:.2f}")

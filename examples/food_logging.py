"""Section 8 case study: deep-learning UDFs inside SQL.

A database stores a food log whose photos have no structured food-name
column. A deep-learning expert trains and deploys a recognition model
on Rafiki; the database user calls it from SQL through a UDF. The
engine evaluates the WHERE predicate *before* the UDF, so inference is
paid only for the filtered rows — the saving the paper demonstrates.

Run:  python examples/food_logging.py
"""

import numpy as np

import repro as rafiki
from repro.api.sdk import connect
from repro.data import make_image_classification
from repro.sqlext import Column, Database, make_inference_udf

LABELS = ("laksa", "chicken rice", "salad")

gateway = connect()

# -- the deep-learning expert: train and deploy a food classifier ------
photos = make_image_classification(
    name="food", num_classes=len(LABELS), image_shape=(3, 8, 8),
    train_per_class=24, val_per_class=8, test_per_class=20,
    difficulty=0.3, seed=7,
)
data = rafiki.import_images(photos)
job_id = rafiki.Train(
    name="food-train", data=data, task="ImageClassification",
    hyper=rafiki.HyperConf(max_trials=3, max_epochs_per_trial=5),
).run()
infer_id = rafiki.Inference(rafiki.get_models(job_id)).run()
print(f"deployed inference job {infer_id}")

# -- the database user: the paper's foodlog table ----------------------
db = Database()
db.create_table(
    "foodlog",
    [
        Column("user_id", "integer"),
        Column("age", "integer", not_null=True),
        Column("location", "text", not_null=True),
        Column("time", "text", not_null=True),
        Column("image_path", "text", not_null=True),
    ],
    primary_key=("user_id", "time"),
)

image_store: dict[str, np.ndarray] = {}
rng = np.random.default_rng(0)
for i in range(60):
    path = f"meals/{i}.npy"
    image_store[path] = photos.test_x[i % len(photos.test_x)]
    db.insert(
        "foodlog", user_id=i, age=int(rng.integers(18, 80)),
        location=rng.choice(["sg", "cn", "us"]), time=f"2018-04-{i % 28 + 1:02d}",
        image_path=path,
    )

db.udfs.register(
    "food_name", make_inference_udf(gateway, infer_id, image_store, LABELS)
)

# -- the paper's analysis query ----------------------------------------
sql = (
    "SELECT food_name(image_path) AS name, count(*) "
    "FROM foodlog WHERE age > 52 GROUP BY name"
)
print(f"\n{sql}")
result = db.execute(sql)
for name, count in result.rows:
    print(f"  {name:<14} {count}")
print(
    f"\nUDF (inference) calls: {result.udf_calls} "
    f"of {len(db.tables['foodlog'])} rows - the WHERE predicate ran first."
)

# the same query without the filter pays for every row
full = db.execute("SELECT food_name(image_path) AS name, count(*) FROM foodlog GROUP BY name")
print(f"without the filter the same analysis costs {full.udf_calls} inference calls")

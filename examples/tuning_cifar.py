"""Section 7.1: distributed hyper-parameter tuning, Study vs CoStudy.

Tunes the optimisation hyper-parameters of the 8-conv-layer network
(learning rate, momentum, weight decay, dropout, init std) with random
search and Bayesian optimisation, comparing the plain distributed
Study (Algorithm 1) against the collaborative CoStudy (Algorithm 2).
Trials run on the calibrated surrogate trainer, standing in for the
paper's GPU cluster (see DESIGN.md).

Run:  python examples/tuning_cifar.py
"""

import numpy as np

from repro.core.tune import (
    BayesianAdvisor,
    CoStudyMaster,
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    make_workers,
    run_study,
    section71_space,
)
from repro.paramserver import ParameterServer

TRIALS = 120
WORKERS = 3
SEED = 1


def run_one(advisor_name: str, collaborative: bool):
    space = section71_space()
    conf = HyperConf(max_trials=TRIALS, max_epochs_per_trial=50, delta=0.005)
    param_server = ParameterServer()
    advisor_cls = {"random": RandomSearchAdvisor, "bayesian": BayesianAdvisor}[advisor_name]
    advisor = advisor_cls(space, rng=np.random.default_rng(SEED))
    master_cls = CoStudyMaster if collaborative else StudyMaster
    kwargs = {"rng": np.random.default_rng(SEED + 7)} if collaborative else {}
    master = master_cls("cifar-study", conf, advisor, param_server, **kwargs)
    backend = SurrogateTrainer(seed=SEED)
    workers = make_workers(master, backend, param_server, conf, WORKERS)
    return run_study(master, workers)


def describe(label: str, report):
    performances = [r.performance for r in report.results]
    high = sum(1 for p in performances if p > 0.5)
    print(
        f"{label:<22} best={max(performances):.4f}  mean={np.mean(performances):.3f}  "
        f"trials>50%={high:>3}/{len(performances)}  "
        f"epochs={report.total_epochs:>5}  wall={report.wall_time / 3600:.1f}h(sim)"
    )


print(f"tuning {TRIALS} trials on {WORKERS} workers (simulated time)\n")
for advisor_name in ("random", "bayesian"):
    study = run_one(advisor_name, collaborative=False)
    costudy = run_one(advisor_name, collaborative=True)
    describe(f"{advisor_name} / Study", study)
    describe(f"{advisor_name} / CoStudy", costudy)
    print()

print("CoStudy reaches comparable-or-better accuracy with a fraction of the")
print("training epochs, because new trials warm-start from the best checkpoint")
print("in the parameter server (Figures 8 and 9 of the paper).")

"""Section 7.2: the inference service's accuracy/latency trade-off.

Deploys the paper's three-model set (inception_v3, inception_v4,
inception_resnet_v2) behind the serving environment with sine-wave
request arrivals, and compares:

* the sync-ensemble baseline (all models on every batch, fixed accuracy),
* the async baseline (one model per batch, no ensemble),
* the RL controller, which adapts the ensemble size and batch size.

Run:  python examples/serving_ensemble.py        (about a minute)
"""

import numpy as np

from repro.core.serve import (
    DEFAULT_BATCH_SIZES,
    EnsembleScorer,
    GreedyAsyncController,
    GreedySyncController,
    RLController,
    ServingEnv,
    SineArrival,
)
from repro.zoo import get_profile

MODEL_NAMES = ("inception_v3", "inception_v4", "inception_resnet_v2")
PROFILES = [get_profile(name) for name in MODEL_NAMES]
TAU = 0.56
PERIOD = 500 * TAU
MIN_RATE = min(p.throughput(min(DEFAULT_BATCH_SIZES)) for p in PROFILES)

scorer = EnsembleScorer(MODEL_NAMES)
print("ensemble accuracy table (Figure 6 panel):")
print(f"  best single model: {scorer.best_single:.4f}")
print(f"  full 3-model ensemble: {scorer.full_ensemble:.4f}\n")


def run(controller_name: str, horizon: float):
    arrival = SineArrival(MIN_RATE, PERIOD, rng=np.random.default_rng(0))
    if controller_name == "sync":
        controller = GreedySyncController(PROFILES, DEFAULT_BATCH_SIZES, TAU)
    elif controller_name == "async":
        controller = GreedyAsyncController(PROFILES, DEFAULT_BATCH_SIZES, TAU)
    else:
        controller = RLController(PROFILES, DEFAULT_BATCH_SIZES, TAU, seed=0,
                                  lr=3e-3, gamma=0.0)
        controller.learner.entropy_min = 0.005
        controller.learner.entropy_decay = 0.9997
    env = ServingEnv(PROFILES, controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                     scorer=scorer, reward_shaping="per_request", shaping_beta=4.0)
    metrics = env.run(horizon)
    window = horizon * 0.8  # measure after the RL policy has settled
    return metrics, window


HORIZONS = {"sync": 2000.0, "async": 2000.0, "rl": 12000.0}
print(f"arrival: sine around the minimum throughput ({MIN_RATE:.0f} req/s), "
      f"SLO tau={TAU}s\n")
print(f"{'controller':<10} {'accuracy':>9} {'overdue %':>10} {'models/batch':>13}")
for name in ("sync", "async", "rl"):
    metrics, window = run(name, HORIZONS[name])
    rows = metrics.timeline(bucket=PERIOD / 8, start=window)
    mean_models = np.mean([r.mean_models for r in rows if r.serve_rate > 0])
    print(
        f"{name:<10} {metrics.mean_accuracy(window):>9.4f} "
        f"{100 * metrics.overdue_fraction(window):>10.2f} {mean_models:>13.2f}"
    )

print("\nThe RL controller lands near the sync baseline's accuracy while")
print("serving almost every request within the SLO (Figure 14 of the paper).")

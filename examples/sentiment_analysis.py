"""Sentiment analysis: a second built-in task from Figure 2's table.

Uses the lower-level library APIs directly (rather than the SDK) to
tune and train a FastText-style bag-of-words MLP on a synthetic binary
sentiment dataset, reporting accuracy and F1 — the kind of review
classification the paper's introduction motivates ("inferring the
quality of a product from the review column").

Run:  python examples/sentiment_analysis.py
"""

import numpy as np

from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    Trial,
    make_workers,
    run_study,
)
from repro.data import make_sentiment_dataset
from repro.paramserver import ParameterServer
from repro.tensor import SGD, SoftmaxCrossEntropy, evaluate, f1_score, train_epoch
from repro.zoo.builders import build_mlp

train_x, train_y, test_x, test_y = make_sentiment_dataset(
    vocab_size=120, train_count=400, test_count=150, signal=0.9, seed=3
)
# split a validation set off the training data
val_x, val_y = train_x[:80], train_y[:80]
fit_x, fit_y = train_x[80:], train_y[80:]


class SentimentBackend:
    """A trainer backend over the sentiment MLP (duck-typed)."""

    def __init__(self, seed=0):
        self.seed = seed

    def start(self, trial: Trial, init_state):
        rng = np.random.default_rng(self.seed + trial.trial_id)
        hidden = int(trial.params["hidden"])
        network = build_mlp((train_x.shape[1],), 2, rng, hidden=(hidden,),
                            dropout=float(trial.params["dropout"]))
        if init_state:
            network.warm_start(init_state)
        return _Session(network, trial, rng)

    def epoch_cost(self, trial):
        return 5.0


class _Session:
    def __init__(self, network, trial, rng):
        self.network = network
        self.loss = SoftmaxCrossEntropy()
        self.optimizer = SGD(lr=float(trial.params["lr"]),
                             momentum=float(trial.params["momentum"]))
        self._rng = rng
        self.epochs = 0
        self.best_performance = 0.0

    def run_epoch(self):
        train_epoch(self.network, self.loss, self.optimizer, fit_x, fit_y,
                    batch_size=32, rng=self._rng)
        acc = evaluate(self.network, val_x, val_y)
        self.epochs += 1
        self.best_performance = max(self.best_performance, acc)
        return acc

    def state_dict(self):
        return self.network.state_dict()


space = HyperSpace()
space.add_range_knob("lr", "float", 1e-3, 1.0, log_scale=True)
space.add_range_knob("momentum", "float", 0.0, 0.99)
space.add_range_knob("dropout", "float", 0.0, 0.5)
space.add_categorical_knob("hidden", "int", [16, 32, 64])

conf = HyperConf(max_trials=10, max_epochs_per_trial=8, early_stop_patience=3)
param_server = ParameterServer()
master = CoStudyMaster(
    "sentiment", conf, RandomSearchAdvisor(space, rng=np.random.default_rng(0)),
    param_server, rng=np.random.default_rng(1),
)
workers = make_workers(master, SentimentBackend(), param_server, conf, num_workers=2)
report = run_study(master, workers)

best = report.best
print(f"tuned {len(report.results)} trials; best validation accuracy "
      f"{best.performance:.3f} with {best.trial.params}")

# retrain the best configuration and evaluate on the held-out test set
rng = np.random.default_rng(9)
network = build_mlp((train_x.shape[1],), 2, rng,
                    hidden=(int(best.trial.params["hidden"]),))
optimizer = SGD(lr=float(best.trial.params["lr"]),
                momentum=float(best.trial.params["momentum"]))
loss = SoftmaxCrossEntropy()
for _ in range(10):
    train_epoch(network, loss, optimizer, train_x, train_y, batch_size=32, rng=rng)
predictions = network.predict_labels(test_x)
print(f"test accuracy: {np.mean(predictions == test_y):.3f}")
print(f"test F1:       {f1_score(predictions, test_y):.3f}")

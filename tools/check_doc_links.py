"""Fail on dead relative links in the repository's markdown docs.

Scans README.md, EXPERIMENTS.md, docs/*.md and benchmarks/README.md for
markdown links/images (``[text](target)``) whose targets are relative
paths, and exits non-zero if any target does not exist on disk.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped; a relative target's ``#anchor`` suffix is
stripped before the existence check (anchors themselves are not
verified — renames are the failure mode this guards against).

Usage::

    python tools/check_doc_links.py [root]

Run from anywhere; ``root`` defaults to the repository root (the parent
of this file's directory). CI runs it on every push so a moved or
renamed file cannot leave dangling references behind.
"""

from __future__ import annotations

import os
import re
import sys

#: inline markdown links/images: [text](target) / ![alt](target).
#: Targets with spaces or nested parens are not used in this repo.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_doc_files(root: str) -> list[str]:
    """The markdown files the checker covers, relative to ``root``."""
    docs = []
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            docs.append(name)
    for sub in ("docs", "benchmarks"):
        directory = os.path.join(root, sub)
        if os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                if name.endswith(".md"):
                    docs.append(os.path.join(sub, name))
    return docs


def check_file(root: str, rel_path: str) -> list[str]:
    """Dead-link messages for one markdown file."""
    failures = []
    path = os.path.join(root, rel_path)
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = os.path.normpath(os.path.join(base, target_path))
                if not os.path.exists(resolved):
                    failures.append(
                        f"{rel_path}:{line_no}: dead link -> {target}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = os.path.abspath(
        argv[0] if argv
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    )
    failures = []
    checked = 0
    for rel_path in iter_doc_files(root):
        failures.extend(check_file(root, rel_path))
        checked += 1
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"{len(failures)} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"docs links OK ({checked} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Additional distributed-tuning tests: recovery timing and scaling shape."""

import numpy as np
import pytest

from repro.cluster import ClusterManager, Node
from repro.cluster.node import Resources
from repro.core.tune import (
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    section71_space,
)
from repro.core.tune.distributed import run_cluster_study
from repro.paramserver import ParameterServer


def cluster(nodes=3, gpus=3):
    manager = ClusterManager()
    for i in range(nodes):
        manager.add_node(Node(f"n{i}", capacity=Resources(cpus=8, gpus=gpus,
                                                          memory_gb=64)))
    return manager


def run(num_workers, manager=None, failure_plan=None, max_trials=24, seed=0):
    manager = manager if manager is not None else cluster()
    ps = ParameterServer()
    conf = HyperConf(max_trials=max_trials, max_epochs_per_trial=20)
    master = StudyMaster(
        "dx", conf, RandomSearchAdvisor(section71_space(),
                                        rng=np.random.default_rng(seed)), ps
    )
    report = run_cluster_study(
        manager, master, SurrogateTrainer(seed=seed), ps, conf,
        num_workers=num_workers, failure_plan=failure_plan,
    )
    return manager, report


class TestScalingShape:
    def test_speedup_is_monotone_in_workers(self):
        walls = []
        for workers in (1, 2, 4):
            _, report = run(workers)
            walls.append(report.wall_time)
        assert walls[0] > walls[1] > walls[2]

    def test_doubling_workers_roughly_halves_wall_time(self):
        _, one = run(1)
        _, two = run(2)
        speedup = one.wall_time / two.wall_time
        assert 1.5 < speedup <= 2.2


class TestFailureTiming:
    def test_failure_slows_but_does_not_stop(self):
        _, healthy = run(3, max_trials=20, seed=1)
        manager = cluster()
        _, degraded = run(
            3, manager=manager,
            failure_plan=[(healthy.wall_time * 0.3, "n0", None)],
            max_trials=20, seed=1,
        )
        assert len(degraded.results) >= 20
        # losing in-flight trials cannot make the study *faster*
        assert degraded.wall_time >= healthy.wall_time * 0.9

    def test_replacement_workers_actually_train(self):
        manager = cluster()
        _, report = run(3, manager=manager, failure_plan=[(100.0, "n0", None)],
                        max_trials=30)
        assert manager.recoveries > 0
        replaced_workers = {
            result.worker for result in report.results
        }
        # at least one trial was finished by a restarted container
        restarted_ids = {
            c.container_id for c in manager.containers.values() if c.restarts > 0
        }
        assert restarted_ids & replaced_workers

    def test_two_failures_survived(self):
        manager = cluster(nodes=4)
        _, report = run(
            3, manager=manager,
            failure_plan=[(150.0, "n0", None), (400.0, "n1", None)],
            max_trials=25,
        )
        assert len(report.results) >= 25

"""Multi-tenant control plane: quotas, fair share, isolation, regressions."""

import asyncio

import numpy as np
import pytest

from repro import telemetry
from repro.api import sdk
from repro.api.gateway import Gateway, make_query_executor
from repro.cluster import ClusterManager, Node
from repro.cluster.manager import JobKind, JobState
from repro.cluster.node import Resources
from repro.core.system import Rafiki
from repro.core.tune import HyperConf
from repro.data import make_image_classification
from repro.data.store import DataStore
from repro.exceptions import (
    GatewayError,
    PlacementError,
    QuotaExceededError,
    StorageError,
    TenantAccessError,
)
from repro.paramserver import ParameterServer
from repro.tenancy import (
    DEFAULT_TENANT,
    TenantQuota,
    TenantRegistry,
    current_tenant,
    tenant_context,
)


@pytest.fixture()
def dataset():
    return make_image_classification(
        name="food", num_classes=3, image_shape=(3, 8, 8),
        train_per_class=12, val_per_class=6, test_per_class=6,
        difficulty=0.3, seed=11,
    )


def quick_hyper():
    return HyperConf(max_trials=2, max_epochs_per_trial=3, early_stop_patience=3)


class TestTenantRegistry:
    def test_default_tenant_preregistered(self):
        registry = TenantRegistry()
        assert registry.resolve(DEFAULT_TENANT).name == DEFAULT_TENANT

    def test_lenient_mode_autoregisters(self):
        registry = TenantRegistry()
        assert registry.resolve("newcomer").name == "newcomer"

    def test_strict_mode_refuses_unknown(self):
        registry = TenantRegistry(strict=True)
        with pytest.raises(TenantAccessError):
            registry.resolve("ghost")

    def test_suspend_and_reinstate(self):
        registry = TenantRegistry()
        registry.register("acme")
        registry.suspend("acme")
        with pytest.raises(TenantAccessError):
            registry.resolve("acme")
        registry.reinstate("acme")
        assert registry.resolve("acme").active

    def test_quota_denial_counts_and_raises(self):
        registry = TenantRegistry()
        registry.register("acme", quota=TenantQuota(trials=2))
        registry.charge("acme", "trials", 2)
        with pytest.raises(QuotaExceededError) as excinfo:
            registry.check("acme", "trials", 1)
        assert excinfo.value.tenant == "acme"
        assert excinfo.value.resource == "trials"
        denials = telemetry.get_registry().counter(
            "repro_tenant_quota_denials_total", "denials"
        )
        assert denials.value(tenant="acme", resource="trials") == 1

    def test_release_floors_at_zero_and_unlimited_passes(self):
        registry = TenantRegistry()
        registry.release("acme", "ps_bytes", 100)
        assert registry.usage("acme", "ps_bytes") == 0.0
        registry.check("acme", "ps_bytes", 10**12)  # unlimited: no raise

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota().limit("electricity")

    def test_ledger_snapshot_and_usage_gauge(self):
        registry = TenantRegistry()
        registry.charge("acme", "store_bytes", 64)
        assert registry.ledger.snapshot() == {"acme": {"store_bytes": 64.0}}
        gauge = telemetry.get_registry().gauge("repro_tenant_usage", "usage")
        assert gauge.value(tenant="acme", resource="store_bytes") == 64.0

    def test_tenant_context_is_scoped(self):
        assert current_tenant() == DEFAULT_TENANT
        with tenant_context("acme"):
            assert current_tenant() == "acme"
            with tenant_context("globex"):
                assert current_tenant() == "globex"
            assert current_tenant() == "acme"
        assert current_tenant() == DEFAULT_TENANT


class TestQuotaScheduling:
    def cluster(self, tenants=None, num_nodes=3, gpus=3):
        manager = ClusterManager(tenants=tenants)
        for i in range(num_nodes):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=8, gpus=gpus, memory_gb=64))
            )
        return manager

    def test_over_quota_job_queues_then_drains(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(trials=2))
        manager = self.cluster(tenants)
        first = manager.submit_job(JobKind.TRAIN, "a", num_workers=2, tenant="acme")
        second = manager.submit_job(JobKind.TRAIN, "b", num_workers=2, tenant="acme")
        assert first.state is JobState.RUNNING
        assert second.state is JobState.PENDING
        assert second.pending_reason == "quota"
        manager.stop_job(first.job_id)
        assert second.state is JobState.RUNNING
        assert manager.pending_jobs() == []

    def test_queue_false_fails_fast_on_quota(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(trials=1))
        manager = self.cluster(tenants)
        with pytest.raises(QuotaExceededError):
            manager.submit_job(
                JobKind.TRAIN, "big", num_workers=2, tenant="acme", queue=False
            )
        assert manager.jobs == {}
        assert tenants.usage("acme", "trials") == 0.0

    def test_quota_released_on_stop_only_if_charged(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(trials=4))
        manager = self.cluster(tenants)
        job = manager.submit_job(JobKind.TRAIN, "a", num_workers=3, tenant="acme")
        assert tenants.usage("acme", "trials") == 3.0
        manager.stop_job(job.job_id)
        assert tenants.usage("acme", "trials") == 0.0
        manager.stop_job(job.job_id)  # double stop must not go negative
        assert tenants.usage("acme", "trials") == 0.0

    def test_pending_job_holds_no_quota(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(trials=1))
        manager = self.cluster(tenants)
        manager.submit_job(JobKind.TRAIN, "a", num_workers=1, tenant="acme")
        queued = manager.submit_job(JobKind.TRAIN, "b", num_workers=1, tenant="acme")
        assert queued.state is JobState.PENDING
        assert tenants.usage("acme", "trials") == 1.0
        manager.stop_job(queued.job_id)  # stopping a pending job releases nothing
        assert tenants.usage("acme", "trials") == 1.0

    def test_fair_share_prefers_smaller_tenant(self):
        tenants = TenantRegistry()
        manager = self.cluster(tenants)
        # acme holds 6 of 9 gpus, globex 2; both queue one more job.
        acme1 = manager.submit_job(JobKind.TRAIN, "a1", num_workers=3, tenant="acme")
        manager.submit_job(JobKind.TRAIN, "a2", num_workers=3, tenant="acme")
        manager.submit_job(JobKind.TRAIN, "g1", num_workers=2, tenant="globex")
        acme3 = manager.submit_job(JobKind.TRAIN, "a3", num_workers=3, tenant="acme")
        globex2 = manager.submit_job(JobKind.TRAIN, "g2", num_workers=3, tenant="globex")
        assert acme3.state is JobState.PENDING
        assert globex2.state is JobState.PENDING
        # Freeing acme's first job leaves room for exactly one pending
        # job; max-min fairness picks globex (smaller dominant share)
        # even though acme's job queued first.
        manager.stop_job(acme1.job_id)
        assert globex2.state is JobState.RUNNING
        assert acme3.state is JobState.PENDING

    def test_priority_breaks_ties_within_tenant(self):
        manager = self.cluster(num_nodes=1, gpus=2)
        running = manager.submit_job(JobKind.TRAIN, "hold", num_workers=2)
        low = manager.submit_job(JobKind.TRAIN, "low", num_workers=2, priority=0)
        high = manager.submit_job(JobKind.TRAIN, "high", num_workers=2, priority=5)
        assert low.state is high.state is JobState.PENDING
        manager.stop_job(running.job_id)
        assert high.state is JobState.RUNNING
        assert low.state is JobState.PENDING

    def test_add_node_drains_pending(self):
        manager = self.cluster(num_nodes=1, gpus=1)
        queued = manager.submit_job(JobKind.TRAIN, "big", num_workers=3)
        assert queued.state is JobState.PENDING
        manager.add_node(Node("n9", capacity=Resources(cpus=8, gpus=4, memory_gb=64)))
        assert queued.state is JobState.RUNNING

    def test_suspended_tenant_queued_job_does_not_wedge_scheduling(self):
        # Regression: _dominant_share used to resolve() the tenant,
        # so a suspended tenant with a queued job made every
        # add_node/stop_job raise TenantAccessError.
        tenants = TenantRegistry()
        tenants.register("noisy", quota=TenantQuota(trials=1))
        manager = self.cluster(tenants, num_nodes=1, gpus=2)
        first = manager.submit_job(JobKind.TRAIN, "n1", num_workers=1, tenant="noisy")
        queued = manager.submit_job(JobKind.TRAIN, "n2", num_workers=1, tenant="noisy")
        assert queued.state is JobState.PENDING
        tenants.suspend("noisy")
        manager.add_node(Node("n9", capacity=Resources(cpus=8, gpus=4, memory_gb=64)))
        # the suspended tenant's job stays queued, but the cluster
        # keeps operating for everyone else
        assert queued.state is JobState.PENDING
        other = manager.submit_job(JobKind.TRAIN, "g", num_workers=1, tenant="globex")
        assert other.state is JobState.RUNNING
        # reinstating lets the queue drain again once quota frees up
        tenants.reinstate("noisy")
        manager.stop_job(first.job_id)
        assert queued.state is JobState.RUNNING

    def test_pending_jobs_gauge_tracks_queue(self):
        manager = self.cluster(num_nodes=1, gpus=1)
        queued = manager.submit_job(JobKind.TRAIN, "big", num_workers=3)
        gauge = telemetry.get_registry().gauge("repro_cluster_pending_jobs", "pending")
        assert gauge.value() == 1
        manager.stop_job(queued.job_id)
        assert gauge.value() == 0


class TestSpreadAntiAffinity:
    def test_spread_replicas_avoid_stacking_on_one_big_node(self):
        # Regression: one over-provisioned node used to absorb every
        # replica of a spread job because the sort only looked at free
        # resources — breaking the block store's host-diversity
        # assumption.
        manager = ClusterManager()
        manager.add_node(Node("big", capacity=Resources(cpus=64, gpus=24, memory_gb=512)))
        manager.add_node(Node("s1", capacity=Resources(cpus=8, gpus=3, memory_gb=64)))
        manager.add_node(Node("s2", capacity=Resources(cpus=8, gpus=3, memory_gb=64)))
        job = manager.submit_job(JobKind.INFERENCE, "svc", num_workers=3, spread=True)
        worker_nodes = [c.node_name for c in job.workers]
        assert len(set(worker_nodes)) == 3, (
            f"spread replicas stacked: {worker_nodes}"
        )

    def test_spread_still_reuses_nodes_when_it_must(self):
        manager = ClusterManager()
        manager.add_node(Node("n0", capacity=Resources(cpus=8, gpus=4, memory_gb=64)))
        manager.add_node(Node("n1", capacity=Resources(cpus=8, gpus=1, memory_gb=64)))
        job = manager.submit_job(JobKind.INFERENCE, "svc", num_workers=4, spread=True)
        assert len(job.workers) == 4  # anti-affinity is a preference, not a veto
        assert {c.node_name for c in job.workers} == {"n0", "n1"}


class TestStopDegradedJob:
    def test_stop_degraded_job_purges_queued_restarts(self):
        # Regression guard: a DEGRADED job queues its lost containers in
        # _pending_restarts; stopping the job must drop them so a later
        # recover_node does not resurrect containers of a dead job (and
        # the pending-restarts gauge must not report ghosts).
        manager = ClusterManager()
        for i in range(2):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=8, gpus=2, memory_gb=64))
            )
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=4)
        lost = job.containers[0].node_name
        manager.fail_node(lost)
        assert job.state is JobState.DEGRADED
        gauge = telemetry.get_registry().gauge(
            "repro_cluster_pending_restarts", "pending restarts"
        )
        assert gauge.value() > 0
        manager.stop_job(job.job_id)
        assert gauge.value() == 0
        started = manager.recover_node(lost)
        assert started == []
        assert all(not c.running for c in job.containers)
        assert all(node.allocated.gpus == 0 for node in manager.nodes.values())


class TestByteQuotas:
    def test_ps_put_over_quota_stores_nothing(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(ps_bytes=100))
        server = ParameterServer(tenants=tenants)
        big = {"w": np.zeros((64, 64))}
        with tenant_context("acme"):
            with pytest.raises(QuotaExceededError):
                server.put("ckpt", big, model="m", dataset="d", performance=0.5)
        assert server.keys() == []
        assert tenants.usage("acme", "ps_bytes") == 0.0

    def test_ps_delete_releases_bytes(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(ps_bytes=10**6))
        server = ParameterServer(tenants=tenants)
        with tenant_context("acme"):
            server.put("ckpt", {"w": np.zeros(16)}, model="m", dataset="d",
                       performance=0.5)
        assert tenants.usage("acme", "ps_bytes") > 0
        server.delete("ckpt")
        assert tenants.usage("acme", "ps_bytes") == 0.0

    def test_ps_put_store_quota_denial_leaves_no_phantom_version(self):
        # Regression: _put_once used to charge ps_bytes and append the
        # entry before put_blob, so a store_bytes denial left a phantom
        # version (whose get() failed) and a leaked ps_bytes charge.
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(store_bytes=10))
        store = DataStore("hdfs", tenants=tenants)
        server = ParameterServer(store=store, tenants=tenants)
        with tenant_context("acme"):
            with pytest.raises(QuotaExceededError):
                server.put("ckpt", {"w": np.zeros(64)}, model="m", dataset="d",
                           performance=0.5)
        assert server.keys() == []
        assert tenants.usage("acme", "ps_bytes") == 0.0
        assert tenants.usage("acme", "store_bytes") == 0.0
        # after lifting the quota, the next put starts clean at v1 and
        # its state is readable
        tenants.register("acme", quota=TenantQuota())
        with tenant_context("acme"):
            entry = server.put("ckpt", {"w": np.ones(4)}, model="m", dataset="d",
                               performance=0.5)
        assert entry.version == 1
        np.testing.assert_array_equal(server.get("ckpt")["w"], np.ones(4))

    def test_store_write_failure_leaves_no_phantom_charge(self, monkeypatch):
        # Regression: put_blob used to mutate the ledger before
        # fs.write, so a storage fault leaked a store_bytes charge and
        # prematurely released the displaced version's charge.
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(store_bytes=1000))
        store = DataStore("hdfs", tenants=tenants)
        with tenant_context("acme"):
            store.put_blob("a/blob", b"x" * 100)

            def boom(*args, **kwargs):
                raise StorageError("injected disk fault")

            monkeypatch.setattr(store.fs, "write", boom)
            with pytest.raises(StorageError):
                store.put_blob("a/blob", b"y" * 200)
        monkeypatch.undo()
        # old version intact and still the one charged
        assert tenants.usage("acme", "store_bytes") == 100.0
        assert store.get_blob("a/blob") == b"x" * 100
        with tenant_context("acme"):
            store.put_blob("a/blob", b"z" * 1000)  # headroom from v1 still counts
        assert tenants.usage("acme", "store_bytes") == 1000.0

    def test_store_blob_quota_and_overwrite_headroom(self):
        tenants = TenantRegistry()
        tenants.register("acme", quota=TenantQuota(store_bytes=1000))
        store = DataStore("hdfs", tenants=tenants)
        with tenant_context("acme"):
            store.put_blob("a/blob", b"x" * 900)
            with pytest.raises(QuotaExceededError):
                store.put_blob("a/other", b"x" * 200)
            # Overwriting the same path releases the displaced version's
            # charge first, so a same-size rewrite fits.
            store.put_blob("a/blob", b"y" * 950)
        assert tenants.usage("acme", "store_bytes") == 950.0
        store.delete_blob("a/blob")
        assert tenants.usage("acme", "store_bytes") == 0.0


class TestGatewayTenancy:
    def test_suspended_tenant_gets_403(self):
        system = Rafiki(seed=5)
        system.tenants.register("acme")
        system.tenants.suspend("acme")
        gateway = Gateway(system)
        response = gateway.handle("GET", "/datasets", tenant="acme")
        assert response.status == 403
        assert response.body["tenant"] == "acme"

    def test_tenant_from_body_field(self):
        system = Rafiki(seed=5)
        system.tenants.register("acme")
        system.tenants.suspend("acme")
        gateway = Gateway(system)
        response = gateway.handle("POST", "/train", {"tenant": "acme"})
        assert response.status == 403

    def test_quota_denied_train_gets_429(self, dataset):
        from repro.core.tune import SurrogateTrainer

        system = Rafiki(seed=5)
        system.tenants.register("acme", quota=TenantQuota(trials=0))
        system.import_images(dataset)
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/train",
            {
                "name": "t", "task": "ImageClassification", "dataset": "food",
                "num_workers": 2,
            },
            tenant="acme",
        )
        assert response.status == 429
        assert response.body["reason"] == "quota"
        assert response.body["tenant"] == "acme"
        assert response.body["resource"] == "trials"
        assert response.body["retry_after"] > 0
        del SurrogateTrainer  # imported for parity with sibling tests

    def test_requests_counter_carries_tenant_label(self):
        system = Rafiki(seed=5)
        gateway = Gateway(system)
        gateway.handle("GET", "/datasets", tenant="acme")
        counter = telemetry.get_registry().counter(
            "repro_gateway_requests_total", "requests"
        )
        assert counter.value(
            method="GET", route="/datasets", status="200", tenant="acme"
        ) == 1

    def test_train_job_records_tenant(self, dataset):
        system = Rafiki(seed=5)
        system.import_images(dataset)
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/train",
            {
                "name": "t", "task": "ImageClassification", "dataset": "food",
                "hyper": {"max_trials": 2, "max_epochs_per_trial": 3},
            },
            tenant="acme",
        )
        assert response.ok
        info = system.get_train_job(response.body["job_id"])
        assert info.tenant == "acme"


class TestHyperValidation:
    def test_unknown_hyper_field_is_400(self):
        # Regression: HyperConf(**{"max_trialz": 5}) used to raise
        # TypeError out of the gateway, crashing the caller instead of
        # answering 400.
        system = Rafiki(seed=5)
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/train",
            {
                "name": "t", "task": "ImageClassification", "dataset": "d",
                "hyper": {"max_trialz": 5},
            },
        )
        assert response.status == 400
        assert "max_trialz" in response.body["error"]
        assert "valid fields" in response.body["error"]

    def test_non_object_hyper_is_400(self):
        system = Rafiki(seed=5)
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/train",
            {
                "name": "t", "task": "ImageClassification", "dataset": "d",
                "hyper": [1, 2, 3],
            },
        )
        assert response.status == 400
        assert "must be an object" in response.body["error"]

    def test_invalid_hyper_value_is_400(self):
        system = Rafiki(seed=5)
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/train",
            {
                "name": "t", "task": "ImageClassification", "dataset": "d",
                "hyper": {"max_trials": -3},
            },
        )
        assert response.status == 400

    def test_parse_hyper_accepts_valid_kwargs(self):
        conf = Gateway._parse_hyper({"max_trials": 4, "max_epochs_per_trial": 2})
        assert isinstance(conf, HyperConf)
        assert conf.max_trials == 4
        assert Gateway._parse_hyper({}) is None


class TestBatchShapeIsolation:
    def _deployed(self, dataset):
        system = Rafiki(seed=5)
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper()
        )
        infer_id = system.create_inference_job(system.get_models(job_id))
        return system, infer_id

    def test_wrong_shape_fails_one_request_not_the_batch(self, dataset):
        # Regression: one client's wrong-shaped image used to blow up
        # np.stack over the whole batch, shedding every co-batched
        # client's request as executor_error.
        from repro.core.serve.frontend import AsyncServeFrontend, FrontendConfig

        system, infer_id = self._deployed(dataset)
        gateway = Gateway(system)
        cfg = FrontendConfig(
            latency=lambda b: 0.001, tau=0.5, batch_sizes=(1, 2, 4, 8),
            max_queue=16,
        )
        frontend = AsyncServeFrontend(cfg, make_query_executor(system, infer_id))
        gateway.attach_frontend(infer_id, frontend)

        good = dataset.test_x[0].tolist()
        bad = np.zeros((2, 2)).tolist()

        async def scenario():
            async with frontend:
                return await asyncio.gather(*(
                    gateway.handle_async(
                        "POST", f"/query/{infer_id}",
                        {"img": bad if i == 1 else good},
                        client_id=f"c{i}",
                    )
                    for i in range(4)
                ))

        responses = asyncio.run(scenario())
        statuses = [r.status for r in responses]
        assert statuses.count(400) == 1
        assert statuses.count(200) == 3
        bad_response = responses[statuses.index(400)]
        assert "shape" in bad_response.body["error"]
        for response in responses:
            if response.status == 200:
                assert "label" in response.body
        gateway.detach_frontend(infer_id)

    def test_ragged_payload_fails_alone(self, dataset):
        executor = make_query_executor(*self._deployed(dataset))
        good = dataset.test_x[0].tolist()
        ragged = [[1.0, 2.0], [3.0]]
        results = executor([good, ragged, good], batch_size=3)
        assert isinstance(results[1], GatewayError)
        assert results[0]["label"] is not None
        assert results[2]["label"] is not None


class TestFrontendTenantLimits:
    def make(self, **kwargs):
        from repro.core.serve.frontend import FrontendConfig, ServeFrontend

        config = FrontendConfig(
            latency=lambda b: 0.01, tau=0.5, max_queue=kwargs.pop("max_queue", 8),
            **kwargs,
        )
        return ServeFrontend(config)

    def test_tenant_bucket_spans_clients(self):
        from repro.exceptions import RequestShedError

        frontend = self.make(tenant_rate_limit=2.0, tenant_burst=2.0)
        frontend.offer("c1", None, 0.0, tenant="acme")
        frontend.offer("c2", None, 0.0, tenant="acme")
        with pytest.raises(RequestShedError) as excinfo:
            frontend.offer("c3", None, 0.0, tenant="acme")
        assert excinfo.value.reason == "tenant_rate_limit"
        # another tenant is unaffected by acme's exhausted bucket
        assert frontend.offer("c4", None, 0.0, tenant="globex")

    def test_tenant_queue_share_caps_one_tenant(self):
        from repro.exceptions import RequestShedError

        frontend = self.make(max_queue=8, tenant_max_queue_share=0.25)
        frontend.offer("a1", None, 0.0, tenant="acme")
        frontend.offer("a2", None, 0.0, tenant="acme")
        with pytest.raises(RequestShedError) as excinfo:
            frontend.offer("a3", None, 0.0, tenant="acme")
        assert excinfo.value.reason == "tenant_queue_full"
        assert frontend.offer("g1", None, 0.0, tenant="globex")

    def test_shed_request_does_not_consume_tenant_token(self):
        # Regression: the tenant bucket used to be debited before the
        # per-client and queue checks, so one throttled client drained
        # its tenant's bucket and co-tenant clients were shed as
        # tenant_rate_limit despite the admitted rate being in budget.
        from repro.exceptions import RequestShedError

        frontend = self.make(
            max_queue=32, tenant_rate_limit=10.0, tenant_burst=10.0,
            rate_limit=1.0, burst=1.0,
        )
        frontend.offer("hot", None, 0.0, tenant="acme")
        for _ in range(8):
            with pytest.raises(RequestShedError) as excinfo:
                frontend.offer("hot", None, 0.0, tenant="acme")
            assert excinfo.value.reason == "rate_limit"
        # the hot client's sheds left 9 tenant tokens for well-behaved
        # co-tenant clients
        for i in range(9):
            frontend.offer(f"c{i}", None, 0.0, tenant="acme")
        with pytest.raises(RequestShedError) as excinfo:
            frontend.offer("c9", None, 0.0, tenant="acme")
        assert excinfo.value.reason == "tenant_rate_limit"

    def test_queue_full_shed_does_not_consume_tenant_token(self):
        from repro.exceptions import RequestShedError

        frontend = self.make(
            max_queue=2, tenant_rate_limit=100.0, tenant_burst=100.0,
        )
        frontend.offer("c1", None, 0.0, tenant="acme")
        frontend.offer("c2", None, 0.0, tenant="acme")
        before = frontend._tenant_buckets["acme"].available(0.0)
        with pytest.raises(RequestShedError) as excinfo:
            frontend.offer("c3", None, 0.0, tenant="acme")
        assert excinfo.value.reason in ("queue_full", "deadline")
        assert frontend._tenant_buckets["acme"].available(0.0) == before

    def test_tenant_outcome_accounting(self):
        frontend = self.make(tenant_rate_limit=1.0, tenant_burst=1.0)
        frontend.offer("c1", None, 0.0, tenant="acme")
        try:
            frontend.offer("c2", None, 0.0, tenant="acme")
        except Exception:
            pass
        assert frontend.tenant_outcomes["acme"]["admitted"] == 1
        assert frontend.tenant_outcomes["acme"]["tenant_rate_limit"] == 1


class TestSDKTenancy:
    def test_connect_tenant_flows_to_gateway(self, dataset):
        system = Rafiki(seed=5)
        system.tenants.register("acme")
        system.tenants.suspend("acme")
        sdk.connect(system, tenant="acme")
        try:
            with pytest.raises(GatewayError, match="403"):
                sdk.Train(
                    name="t", data="food", task="ImageClassification"
                ).run()
        finally:
            sdk.connect(None)

    def test_explicit_tenant_overrides_session_tenant(self):
        system = Rafiki(seed=5)
        system.tenants.register("bad")
        system.tenants.suspend("bad")
        sdk.connect(system, tenant="good")
        try:
            with pytest.raises(GatewayError, match="403"):
                sdk.query("nojob", {"img": [1.0]}, tenant="bad")
            # session tenant "good" is fine; failure is now just 404
            with pytest.raises(GatewayError, match="404"):
                sdk.query("nojob", {"img": [1.0]})
        finally:
            sdk.connect(None)

    def test_set_tenant(self):
        system = Rafiki(seed=5)
        system.tenants.register("acme")
        system.tenants.suspend("acme")
        sdk.connect(system)
        try:
            sdk.set_tenant("acme")
            with pytest.raises(GatewayError, match="403"):
                sdk.query("nojob", {"img": [1.0]})
            sdk.set_tenant(None)
            with pytest.raises(GatewayError, match="404"):
                sdk.query("nojob", {"img": [1.0]})
        finally:
            sdk.connect(None)


@pytest.mark.chaos
class TestTenantIsolationScenario:
    def test_isolation_gate_holds(self):
        from repro.chaos.scenarios import run_tenant_isolation_scenario

        out = run_tenant_isolation_scenario(seed=3)
        cluster = out["results"]["cluster"]
        isolation = out["results"]["isolation"]
        assert cluster["b1_survived_crash_loop"]
        assert cluster["fair_share_winner"] == "tenant-b"
        assert isolation["zero_b_sheds"]
        assert isolation["b_p99_within_2tau"]
        assert out["faults_injected"] > 0
        assert out["points_hit"] == ["frontend.accept.tenant.tenant-a"]

    def test_trace_bit_identical_per_seed(self):
        from repro.chaos.scenarios import run_tenant_isolation_scenario

        first = run_tenant_isolation_scenario(seed=0)
        second = run_tenant_isolation_scenario(seed=0)
        assert first["trace"] == second["trace"]
        different = run_tenant_isolation_scenario(seed=9)
        assert different["trace"] != first["trace"]

"""Tests for metrics and losses."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.tensor import MeanSquaredError, SoftmaxCrossEntropy, accuracy, confusion_matrix, f1_score, top_k_accuracy
from repro.tensor.losses import softmax
from repro.tensor.metrics import auc_score, precision_recall


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=8))
    def test_shift_invariance(self, logits):
        arr = np.array([logits])
        np.testing.assert_allclose(softmax(arr), softmax(arr + 17.0), atol=1e-12)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_uniform_prediction_log_k(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((3, 10)), np.zeros(3, dtype=int))
        assert value == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for i, j in [(0, 0), (2, 3), (3, 4)]:
            shifted = logits.copy()
            shifted[i, j] += eps
            plus = loss.forward(shifted, labels)
            shifted[i, j] -= 2 * eps
            minus = loss.forward(shifted, labels)
            assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)

    def test_rejects_onehot_targets(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_batch_mismatch(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestMSE:
    def test_zero_for_exact(self):
        loss = MeanSquaredError()
        x = np.ones((2, 3))
        assert loss.forward(x, x) == 0.0

    def test_value(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([[2.0]]), np.array([[0.0]])) == pytest.approx(4.0)

    def test_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[3.0, 1.0]])
        loss.forward(pred, np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(loss.backward(), [[2.0, 0.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestAccuracyMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            accuracy(np.array([]), np.array([]))

    def test_top_k(self):
        scores = np.array([[0.1, 0.5, 0.4], [0.8, 0.15, 0.05]])
        labels = np.array([2, 2])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(scores, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(scores, labels, k=3) == pytest.approx(1.0)

    def test_top_k_bad_k(self):
        with pytest.raises(ConfigurationError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_matrix(self):
        predicted = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predicted, labels, 3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_precision_recall(self):
        predicted = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        precision, recall = precision_recall(predicted, labels)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_f1_degenerate(self):
        assert f1_score(np.array([0, 0]), np.array([0, 0])) == 0.0

    def test_auc_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert auc_score(scores, labels) == pytest.approx(1.0)

    def test_auc_random_is_half(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([1, 0, 1, 0])
        assert auc_score(scores, labels) == pytest.approx(0.5)

    def test_auc_requires_both_classes(self):
        with pytest.raises(ConfigurationError):
            auc_score(np.array([0.1, 0.2]), np.array([1, 1]))

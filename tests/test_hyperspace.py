"""Tests for the HyperSpace programming model (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tune import HyperSpace, section71_space
from repro.core.tune.spaces import demo_space
from repro.exceptions import HyperSpaceError


def simple_space() -> HyperSpace:
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.001, 1.0, log_scale=True)
    space.add_range_knob("layers", "int", 2, 10)
    space.add_categorical_knob("kernel", "str", ["linear", "rbf", "poly"])
    return space


class TestDefinition:
    def test_duplicate_name_rejected(self):
        space = HyperSpace()
        space.add_range_knob("x", "float", 0, 1)
        with pytest.raises(HyperSpaceError, match="duplicate"):
            space.add_range_knob("x", "float", 0, 1)

    def test_bad_domain_rejected(self):
        with pytest.raises(HyperSpaceError, match="max"):
            HyperSpace().add_range_knob("x", "float", 1.0, 1.0)

    def test_log_scale_needs_positive_min(self):
        with pytest.raises(HyperSpaceError, match="log_scale"):
            HyperSpace().add_range_knob("x", "float", 0.0, 1.0, log_scale=True)

    def test_empty_categorical_rejected(self):
        with pytest.raises(HyperSpaceError, match="empty"):
            HyperSpace().add_categorical_knob("x", "str", [])

    def test_bad_dtype_rejected(self):
        with pytest.raises(HyperSpaceError, match="dtype"):
            HyperSpace().add_range_knob("x", "str", 0, 1)

    def test_unknown_dependency_rejected(self):
        space = HyperSpace()
        with pytest.raises(HyperSpaceError, match="unknown knob"):
            space.add_range_knob("x", "float", 0, 1, depends=["ghost"])

    def test_dependency_cycle_rejected(self):
        space = HyperSpace()
        space.add_range_knob("a", "float", 0, 1)
        space.add_range_knob("b", "float", 0, 1, depends=["a"])
        # introduce a cycle by hand (the API cannot create one forward)
        object.__setattr__(space.knobs["a"], "depends", ("b",))
        with pytest.raises(HyperSpaceError, match="cycle"):
            space.sample_order()


class TestSampling:
    def test_sample_covers_all_knobs(self, rng):
        space = simple_space()
        trial = space.sample(rng)
        assert set(trial) == {"lr", "layers", "kernel"}

    def test_values_in_domain(self, rng):
        space = simple_space()
        for _ in range(100):
            trial = space.sample(rng)
            assert 0.001 <= trial["lr"] < 1.0
            assert 2 <= trial["layers"] < 10
            assert trial["kernel"] in ("linear", "rbf", "poly")
            assert isinstance(trial["layers"], int)

    def test_depends_ordering(self, rng):
        order_seen = []

        def post_hook(values, value):
            order_seen.append(sorted(values))
            return value

        space = HyperSpace()
        space.add_range_knob("lr", "float", 0.01, 1.0)
        space.add_range_knob("decay", "float", 0.5, 1.0, depends=["lr"], post_hook=post_hook)
        space.sample(rng)
        assert order_seen == [["lr"]]  # lr was drawn before decay

    def test_post_hook_adjusts_value(self, rng):
        """The paper's example: large lr forces faster decay."""
        space = demo_space()
        trials = [space.sample(rng) for _ in range(200)]
        for trial in trials:
            if trial["lr"] > 0.1:
                assert trial["lr_decay"] >= 0.9  # doubled but capped

    def test_pre_hook_can_replace_knob(self, rng):
        from repro.core.tune.hyperspace import RangeKnob

        def pre_hook(values, knob):
            return RangeKnob(name=knob.name, dtype="float", min=5.0, max=6.0)

        space = HyperSpace()
        space.add_range_knob("x", "float", 0.0, 1.0, pre_hook=pre_hook)
        assert 5.0 <= space.sample(rng)["x"] < 6.0


class TestEncoding:
    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_encode_decode_roundtrip(self, seed):
        space = section71_space()
        trial = space.sample(np.random.default_rng(seed))
        decoded = space.decode(space.encode(trial))
        for name in trial:
            assert decoded[name] == pytest.approx(trial[name], rel=1e-9)

    def test_encode_in_unit_cube(self, rng):
        space = section71_space()
        for _ in range(50):
            point = space.encode(space.sample(rng))
            assert np.all(point >= 0.0) and np.all(point <= 1.0)

    def test_decode_wrong_dim_rejected(self):
        with pytest.raises(HyperSpaceError, match="dims"):
            section71_space().decode(np.zeros(2))

    def test_categorical_encode_decode(self):
        space = simple_space()
        for kernel in ("linear", "rbf", "poly"):
            trial = {"lr": 0.01, "layers": 5, "kernel": kernel}
            assert space.decode(space.encode(trial))["kernel"] == kernel

    def test_categorical_unknown_value_rejected(self):
        space = simple_space()
        with pytest.raises(HyperSpaceError):
            space.encode({"lr": 0.01, "layers": 5, "kernel": "ghost"})


class TestGridAndValidate:
    def test_grid_size(self):
        space = simple_space()
        grid = space.grid(resolution=2)
        # lr: 2, layers: 2 (deduped ints), kernel: 3
        assert len(grid) == 2 * 2 * 3

    def test_grid_points_valid(self):
        space = simple_space()
        for trial in space.grid(2):
            space.validate(trial)

    def test_validate_missing(self):
        space = simple_space()
        with pytest.raises(HyperSpaceError, match="missing"):
            space.validate({"lr": 0.1})

    def test_validate_unknown(self):
        space = simple_space()
        with pytest.raises(HyperSpaceError, match="unknown"):
            space.validate({"lr": 0.1, "layers": 3, "kernel": "rbf", "ghost": 1})

    def test_section71_space_has_five_knobs(self):
        assert len(section71_space()) == 5

"""Tests for the Network container: params, warm start, serialisation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tensor import Conv2D, Dense, Flatten, Network, ReLU


def make_net(rng, name="net", units=(6, 3)):
    return Network(
        [Dense(units[0], name="d1"), ReLU(name="r"), Dense(units[1], name="d2")],
        name=name,
    ).build((4,), rng)


class TestConstruction:
    def test_duplicate_layer_names_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Network([Dense(3, name="d"), Dense(3, name="d")])

    def test_forward_before_build_rejected(self, rng):
        net = Network([Dense(3, name="d")])
        with pytest.raises(ConfigurationError, match="not built"):
            net.forward(np.zeros((1, 4)))

    def test_output_shape_propagates(self, rng):
        net = Network(
            [Conv2D(4, 3, name="c"), Flatten(name="f"), Dense(2, name="d")]
        ).build((3, 8, 8), rng)
        assert net.output_shape == (2,)

    def test_param_count(self, rng):
        net = make_net(rng)
        # d1: 4*6+6, d2: 6*3+3
        assert net.param_count() == 4 * 6 + 6 + 6 * 3 + 3

    def test_summary_mentions_layers(self, rng):
        text = make_net(rng).summary()
        assert "d1" in text and "total parameters" in text


class TestParams:
    def test_params_are_live_views(self, rng):
        net = make_net(rng)
        net.params["d1/W"][...] = 0.0
        assert np.all(net.params["d1/W"] == 0.0)

    def test_state_dict_is_a_copy(self, rng):
        net = make_net(rng)
        state = net.state_dict()
        state["d1/W"][...] = 99.0
        assert not np.any(net.params["d1/W"] == 99.0)

    def test_load_state_dict_roundtrip(self, rng):
        a = make_net(rng, "a")
        b = make_net(rng, "b")
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_missing_key_strict(self, rng):
        net = make_net(rng)
        state = net.state_dict()
        del state["d1/W"]
        with pytest.raises(ConfigurationError, match="missing"):
            net.load_state_dict(state)

    def test_load_shape_mismatch(self, rng):
        net = make_net(rng)
        state = net.state_dict()
        state["d1/W"] = np.zeros((2, 2))
        with pytest.raises(ConfigurationError, match="shape"):
            net.load_state_dict(state)

    def test_save_load_bytes(self, rng):
        a = make_net(rng, "a")
        blob = a.save_bytes()
        b = make_net(rng, "b")
        b.load_bytes(blob)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))


class TestWarmStart:
    def test_exact_architecture_transfers_everything(self, rng):
        a = make_net(rng, "a")
        b = make_net(rng, "b")
        loaded = b.warm_start(a.state_dict())
        assert sorted(loaded) == sorted(b.params)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_partial_shape_match(self, rng):
        """Only same-shape layers transfer across different architectures.

        This is the Section 4.2.2 rule: ConvNet a's layer initialises
        ConvNet b's layer when their shapes agree.
        """
        a = make_net(rng, "a", units=(6, 3))
        b = make_net(rng, "b", units=(6, 5))  # d2 differs
        loaded = b.warm_start(a.state_dict())
        assert "d1/W" in loaded and "d1/b" in loaded
        assert "d2/W" not in loaded
        np.testing.assert_allclose(b.params["d1/W"], a.params["d1/W"])

    def test_no_match_loads_nothing(self, rng):
        a = make_net(rng, "a")
        b = Network([Dense(9, name="z")], name="b").build((7,), rng)
        assert b.warm_start(a.state_dict()) == []

    def test_pool_not_reused_twice(self, rng):
        """Each checkpoint array initialises at most one parameter."""
        a = Network([Dense(4, name="d1")], name="a").build((4,), rng)
        b = Network(
            [Dense(4, name="d1"), ReLU(name="r"), Dense(4, name="d2")], name="b"
        ).build((4,), rng)
        loaded = b.warm_start(a.state_dict())
        # a has one (4,4) matrix; b has two. Only one may be initialised.
        assert sum(1 for name in loaded if name.endswith("/W")) == 1


class TestPredict:
    def test_probabilities_sum_to_one(self, rng):
        net = make_net(rng)
        probs = net.predict(rng.normal(size=(5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_labels_match_argmax(self, rng):
        net = make_net(rng)
        x = rng.normal(size=(5, 4))
        np.testing.assert_array_equal(
            net.predict_labels(x), np.argmax(net.predict(x), axis=1)
        )


class TestBuffers:
    """Batch-norm running statistics travel with the state dict."""

    def _bn_net(self, rng, name="net"):
        from repro.tensor import BatchNorm

        return Network(
            [Dense(4, name="d"), BatchNorm(name="bn")], name=name
        ).build((4,), rng)

    def test_state_dict_includes_running_stats(self, rng):
        net = self._bn_net(rng)
        state = net.state_dict()
        assert "bn/running_mean" in state
        assert "bn/running_var" in state

    def test_running_stats_survive_roundtrip(self, rng):
        a = self._bn_net(rng, "a")
        x = rng.normal(3.0, 2.0, size=(64, 4))
        a.forward(x, training=True)  # updates running stats
        b = self._bn_net(rng, "b")
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_warm_start_carries_running_stats(self, rng):
        a = self._bn_net(rng, "a")
        a.forward(rng.normal(5.0, 1.0, size=(32, 4)), training=True)
        b = self._bn_net(rng, "b")
        loaded = b.warm_start(a.state_dict())
        assert "bn/running_mean" in loaded
        np.testing.assert_allclose(b.buffers["bn/running_mean"],
                                   a.buffers["bn/running_mean"])

    def test_buffers_never_match_weights(self, rng):
        """A (C,)-shaped running stat must not initialise a (C,) bias."""
        a = self._bn_net(rng, "a")
        a.forward(rng.normal(50.0, 1.0, size=(32, 4)), training=True)
        plain = Network([Dense(4, name="d")], name="p").build((4,), rng)
        before = plain.params["d/b"].copy()
        state = {k: v for k, v in a.state_dict().items() if "running" in k}
        loaded = plain.warm_start(state)
        assert loaded == []
        np.testing.assert_allclose(plain.params["d/b"], before)

"""Differential test harness: planned executor vs the naive oracle.

A seeded generator builds random tables and random SELECT statements —
projections, UDF calls (including nested and repeated ones), WHERE
conjunctions, aggregates with GROUP BY, ORDER BY and LIMIT — and every
query runs on both executors:

* results must match **bit-for-bit** (``repr`` equality, so ``3`` and
  ``3.0`` do not conflate);
* the planned path must never make *more* UDF calls than the naive
  oracle (dedup + cascade filtering can only save);
* a chaos-marked test injects drop/latency faults at
  ``sql.udf.dispatch`` and asserts deterministic retry-then-shed with
  bit-identical same-seed traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import chaos
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.exceptions import RequestShedError
from repro.sqlext import Column, Database

QUERIES = 220  # >= 200 seeded random queries (the acceptance floor)

FRUITS = ("apple", "pear", "plum", "fig", "it's", "quince")


def make_udfs(db: Database) -> None:
    """Register pure, total, None-safe scalar UDFs on both executors."""
    db.udfs.register(
        "band", lambda v: None if v is None else ("lo" if v < 50 else "hi")
    )
    db.udfs.register(
        "double", lambda v: None if v is None else v * 2
    )
    db.udfs.register(
        "tag", lambda v: f"t:{v!r}"
    )


def make_database(rng: np.random.Generator) -> Database:
    """A database with a few random tables of mixed column types."""
    db = Database()
    make_udfs(db)
    specs = {
        "alpha": (
            [Column("id", "int"), Column("a", "int"), Column("b", "int"),
             Column("c", "float"), Column("s", "str")],
            int(rng.integers(0, 40)),
        ),
        "beta": (
            [Column("id", "int"), Column("a", "int"), Column("s", "str")],
            int(rng.integers(1, 25)),
        ),
        "empty": (
            [Column("id", "int"), Column("a", "int"), Column("s", "str")],
            0,
        ),
    }
    for name, (columns, rows) in specs.items():
        db.create_table(name, columns)
        for i in range(rows):
            values = {"id": i}
            for column in columns[1:]:
                if rng.random() < 0.15:
                    values[column.name] = None
                elif column.name == "c":
                    values[column.name] = float(
                        np.round(rng.uniform(-10, 110), 2)
                    )
                elif column.name == "s":
                    values[column.name] = FRUITS[int(rng.integers(len(FRUITS)))]
                else:
                    values[column.name] = int(rng.integers(-5, 100))
            db.insert(name, **values)
    return db

# column name -> (kind, the literal pool WHERE comparisons draw from)
_COLUMN_KINDS = {
    "id": ("int", (0, 3, 10, 20)),
    "a": ("int", (-5, 0, 7, 42, 90)),
    "b": ("int", (-5, 0, 7, 42, 90)),
    "c": ("float", (-3.5, 0.0, 25.25, 99.9)),
    "s": ("str", FRUITS),
}

# UDFs keyed by the argument kind they accept; (name, output kind)
_UDFS_BY_KIND = {
    "int": (("band", "str"), ("double", "int"), ("tag", "str")),
    "float": (("band", "str"), ("double", "float"), ("tag", "str")),
    "str": (("tag", "str"),),
}


class QueryGenerator:
    """Builds random SELECT statements valid for both executors."""

    def __init__(self, rng: np.random.Generator, table: str,
                 columns: list[str]):
        self.rng = rng
        self.table = table
        self.columns = columns

    def _pick(self, options):
        return options[int(self.rng.integers(len(options)))]

    def _scalar_expr(self) -> tuple[str, str]:
        """A random (sql text, output kind) non-aggregate expression."""
        column = self._pick(self.columns)
        kind = _COLUMN_KINDS[column][0]
        roll = self.rng.random()
        if roll < 0.45:
            return column, kind
        udf, out_kind = self._pick(_UDFS_BY_KIND[kind])
        if roll < 0.85:
            return f"{udf}({column})", out_kind
        # Nested call: the optimizer must CSE and stage these correctly.
        inner, inner_kind = f"{udf}({column})", out_kind
        outer, outer_kind = self._pick(_UDFS_BY_KIND[inner_kind])
        return f"{outer}({inner})", outer_kind

    def _predicate(self) -> str:
        column = self._pick(self.columns)
        kind, literals = _COLUMN_KINDS[column]
        use_udf = self.rng.random() < 0.3
        if use_udf:
            udf, out_kind = self._pick(_UDFS_BY_KIND[kind])
            left = f"{udf}({column})"
            _, literals = ("str", ("lo", "hi", "t:None"))
            if out_kind != "str":
                literals = _COLUMN_KINDS[column][1]
            kind = out_kind
        else:
            left = column
        if kind == "str":
            op = self._pick(("=", "!=", "<", ">"))
            value = self._pick(literals)
            return f"{left} {op} '{value.replace(chr(39), chr(39) * 2)}'"
        op = self._pick(("=", "!=", "<", "<=", ">", ">="))
        return f"{left} {op} {self._pick(literals)}"

    def _where(self) -> str:
        count = int(self.rng.integers(0, 4))
        if not count:
            return ""
        return " WHERE " + " AND ".join(self._predicate() for _ in range(count))

    def plain_query(self) -> str:
        items = []
        names = []
        for index in range(int(self.rng.integers(1, 4))):
            expr, _ = self._scalar_expr()
            name = f"o{index}"
            items.append(f"{expr} AS {name}")
            names.append(name)
        sql = f"SELECT {', '.join(items)} FROM {self.table}{self._where()}"
        if self.rng.random() < 0.5:
            keys = []
            for name in names[: int(self.rng.integers(1, len(names) + 1))]:
                direction = self._pick((" ASC", " DESC", ""))
                keys.append(name + direction)
            sql += " ORDER BY " + ", ".join(keys)
        if self.rng.random() < 0.4:
            sql += f" LIMIT {int(self.rng.integers(0, 12))}"
        return sql

    def aggregate_query(self) -> str:
        items = []
        names = []
        group = []
        for index in range(int(self.rng.integers(0, 3))):
            expr, _ = self._scalar_expr()
            name = f"k{index}"
            items.append(f"{expr} AS {name}")
            names.append(name)
            group.append(name)
        for index in range(int(self.rng.integers(1, 3))):
            agg = self._pick(("count", "sum", "avg", "min", "max"))
            if agg == "count" and self.rng.random() < 0.5:
                items.append(f"count(*) AS g{index}")
                names.append(f"g{index}")
                continue
            column = self._pick(self.columns)
            kind = _COLUMN_KINDS[column][0]
            if agg in ("sum", "avg") and kind == "str":
                column = "id"
                kind = "int"
            if self.rng.random() < 0.3 and kind != "str":
                udf = "double"
                expr = f"{agg}({udf}({column}))"
            else:
                expr = f"{agg}({column})"
            items.append(f"{expr} AS g{index}")
            names.append(f"g{index}")
        sql = f"SELECT {', '.join(items)} FROM {self.table}{self._where()}"
        if group:
            sql += " GROUP BY " + ", ".join(group)
        if self.rng.random() < 0.4:
            key = self._pick(names)
            sql += f" ORDER BY {key}{self._pick((' ASC', ' DESC', ''))}"
        if self.rng.random() < 0.3:
            sql += f" LIMIT {int(self.rng.integers(0, 6))}"
        return sql

    def query(self) -> str:
        if self.rng.random() < 0.45:
            return self.aggregate_query()
        return self.plain_query()


def run_differential(seed: int, queries: int) -> dict:
    """Run ``queries`` random statements on both executors; compare."""
    rng = np.random.default_rng(seed)
    db = make_database(rng)
    stats = {"queries": 0, "rows": 0, "planned_calls": 0, "naive_calls": 0,
             "cache_hits": 0, "batches": 0}
    generators = {
        name: QueryGenerator(rng, name, [c.name for c in table.columns])
        for name, table in db.tables.items()
    }
    while stats["queries"] < queries:
        generator = generators[
            ("alpha", "beta", "empty")[int(rng.integers(3))]
        ]
        sql = generator.query()
        calls_before = db.udfs.total_calls
        naive = db.execute(sql, executor="naive")
        naive_calls = db.udfs.total_calls - calls_before
        planned = db.execute(sql, executor="planned")
        assert planned.columns == naive.columns, sql
        assert planned.rows == naive.rows, sql
        # Bit-for-bit: repr distinguishes 3 from 3.0 and True from 1.
        assert repr(planned.rows) == repr(naive.rows), sql
        assert planned.udf_calls <= naive_calls, (
            f"planned made MORE udf calls ({planned.udf_calls} > "
            f"{naive_calls}): {sql}"
        )
        stats["queries"] += 1
        stats["rows"] += len(planned.rows)
        stats["planned_calls"] += planned.udf_calls
        stats["naive_calls"] += naive_calls
        stats["cache_hits"] += planned.cache_hits
        stats["batches"] += planned.udf_batches
    return stats


@pytest.mark.parametrize("seed", [0, 1])
def test_differential_planned_equals_naive(seed):
    """>= 200 random queries per seed: planned == naive, calls <= naive."""
    stats = run_differential(seed, QUERIES)
    assert stats["queries"] >= 200
    # The workloads genuinely exercise the batched path.
    assert stats["planned_calls"] > 0
    assert stats["batches"] > 0
    assert stats["planned_calls"] <= stats["naive_calls"]


def test_differential_covers_cache_hits():
    """Repeated argument values must be served from the cache."""
    stats = run_differential(2, 60)
    assert stats["cache_hits"] > 0


def test_unoptimized_plan_matches_too():
    """optimize=False is the planned pipeline minus every rewrite."""
    rng = np.random.default_rng(3)
    db = make_database(rng)
    generator = QueryGenerator(
        rng, "alpha", [c.name for c in db.tables["alpha"].columns]
    )
    for _ in range(40):
        sql = generator.query()
        naive = db.execute(sql, executor="naive")
        planned = db.execute(sql, executor="planned", optimize=False)
        assert repr(planned.rows) == repr(naive.rows), sql
        assert planned.columns == naive.columns, sql


def _chaos_run(seed: int, probability: float, kind: FaultKind):
    """One seeded chaos run; returns (trace, outcomes, results)."""
    rng = np.random.default_rng(seed)
    db = make_database(rng)
    generator = QueryGenerator(
        rng, "alpha", [c.name for c in db.tables["alpha"].columns]
    )
    statements = [generator.query() for _ in range(25)]
    plan = FaultPlan(
        [FaultRule(point="sql.udf.dispatch", kind=kind,
                   probability=probability, latency=0.25)],
        seed=seed,
    )
    outcomes = []
    results = []
    with chaos.active(plan):
        for sql in statements:
            try:
                result = db.execute(sql, executor="planned")
            except RequestShedError as exc:
                outcomes.append(("shed", exc.reason))
            else:
                outcomes.append(("ok", len(result.rows)))
                results.append((result.columns, result.rows))
    return list(db.dispatcher.trace), outcomes, results


@pytest.mark.chaos
def test_dispatch_fault_retries_then_sheds_deterministically():
    """Heavy drop faults: retries fire, exhaustion sheds with 'dispatch_failed'."""
    trace, outcomes, _ = _chaos_run(7, 0.9, FaultKind.DROP)
    events = [entry["event"] for entry in trace]
    assert "retry" in events
    assert "shed" in events
    sheds = [o for o in outcomes if o[0] == "shed"]
    assert sheds, "no query was shed under 90% drop faults"
    assert all(reason == "dispatch_failed" for _, reason in sheds)


@pytest.mark.chaos
def test_dispatch_fault_trace_is_bit_identical_across_runs():
    """Same seed, same plan -> byte-identical trace and outcomes."""
    first = _chaos_run(11, 0.5, FaultKind.DROP)
    second = _chaos_run(11, 0.5, FaultKind.DROP)
    assert repr(first) == repr(second)


@pytest.mark.chaos
def test_dispatch_latency_faults_do_not_change_results():
    """Latency-only faults slow dispatches but never alter rows."""
    trace, outcomes, results = _chaos_run(5, 0.8, FaultKind.LATENCY)
    assert all(outcome[0] == "ok" for outcome in outcomes)
    assert any(entry["event"] == "latency" for entry in trace)
    rng = np.random.default_rng(5)
    db = make_database(rng)
    generator = QueryGenerator(
        rng, "alpha", [c.name for c in db.tables["alpha"].columns]
    )
    clean = []
    for sql in [generator.query() for _ in range(25)]:
        result = db.execute(sql, executor="planned")
        clean.append((result.columns, result.rows))
    assert repr(clean) == repr(results)

"""Tests for the mini SQL engine and UDF integration."""

import pytest

from repro.exceptions import SQLExecutionError, SQLParseError
from repro.sqlext import Column, Database


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "foodlog",
        [
            Column("user_id", "integer"),
            Column("age", "integer", not_null=True),
            Column("location", "text", not_null=True),
            Column("image_path", "text", not_null=True),
        ],
        primary_key=("user_id",),
    )
    rows = [
        (1, 25, "sg", "a.npy"),
        (2, 34, "sg", "b.npy"),
        (3, 41, "cn", "a.npy"),
        (4, 58, "cn", "c.npy"),
        (5, 63, "sg", "b.npy"),
    ]
    for user_id, age, location, path in rows:
        database.insert("foodlog", user_id=user_id, age=age, location=location,
                        image_path=path)
    return database


class TestTable:
    def test_type_coercion(self, db):
        db.insert("foodlog", user_id="6", age="30", location="us", image_path="d.npy")
        assert db.tables["foodlog"].rows[-1]["user_id"] == 6

    def test_not_null_enforced(self, db):
        with pytest.raises(SQLExecutionError, match="NOT NULL"):
            db.insert("foodlog", user_id=7, age=None, location="us", image_path="x")

    def test_primary_key_uniqueness(self, db):
        with pytest.raises(SQLExecutionError, match="primary key"):
            db.insert("foodlog", user_id=1, age=20, location="us", image_path="x")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SQLExecutionError, match="unknown columns"):
            db.insert("foodlog", user_id=9, age=20, location="us", image_path="x",
                      ghost=1)


class TestSelect:
    def test_simple_projection(self, db):
        result = db.execute("SELECT user_id, age FROM foodlog")
        assert result.columns == ["user_id", "age"]
        assert len(result) == 5

    def test_where_filters(self, db):
        result = db.execute("SELECT user_id FROM foodlog WHERE age > 40")
        assert sorted(row[0] for row in result.rows) == [3, 4, 5]

    def test_where_and(self, db):
        result = db.execute(
            "SELECT user_id FROM foodlog WHERE age > 30 AND location = 'sg'"
        )
        assert sorted(row[0] for row in result.rows) == [2, 5]

    def test_string_literal_with_quote(self, db):
        db.insert("foodlog", user_id=9, age=20, location="o'brien", image_path="x")
        result = db.execute("SELECT user_id FROM foodlog WHERE location = 'o''brien'")
        assert result.rows == [(9,)]

    def test_comparison_operators(self, db):
        assert len(db.execute("SELECT user_id FROM foodlog WHERE age <= 34")) == 2
        assert len(db.execute("SELECT user_id FROM foodlog WHERE age != 25")) == 4
        assert len(db.execute("SELECT user_id FROM foodlog WHERE age <> 25")) == 4

    def test_count_star(self, db):
        result = db.execute("SELECT count(*) FROM foodlog")
        assert result.rows == [(5,)]

    def test_aggregates(self, db):
        result = db.execute("SELECT min(age), max(age), avg(age), sum(age) FROM foodlog")
        low, high, mean, total = result.rows[0]
        assert (low, high, total) == (25, 63, 221)
        assert mean == pytest.approx(221 / 5)

    def test_group_by_with_count(self, db):
        result = db.execute(
            "SELECT location, count(*) FROM foodlog GROUP BY location"
        )
        assert dict(result.rows) == {"sg": 3, "cn": 2}

    def test_group_by_alias(self, db):
        result = db.execute(
            "SELECT location AS loc, avg(age) FROM foodlog GROUP BY loc"
        )
        rows = dict(result.rows)
        assert rows["cn"] == pytest.approx(49.5)

    def test_non_aggregate_requires_group_by(self, db):
        with pytest.raises(SQLExecutionError, match="GROUP BY"):
            db.execute("SELECT location, count(*) FROM foodlog")

    def test_keywords_case_insensitive(self, db):
        result = db.execute("select COUNT(*) from foodlog where AGE > 40")
        assert result.rows == [(3,)]

    def test_as_dicts(self, db):
        result = db.execute("SELECT count(*) AS n FROM foodlog")
        assert result.as_dicts() == [{"n": 5}]


class TestParserErrors:
    def test_garbage_rejected(self, db):
        with pytest.raises(SQLParseError):
            db.execute("SELEKT * FROM foodlog")

    def test_trailing_tokens_rejected(self, db):
        with pytest.raises(SQLParseError, match="trailing"):
            db.execute("SELECT age FROM foodlog 42")

    def test_missing_from_rejected(self, db):
        with pytest.raises(SQLParseError):
            db.execute("SELECT age")

    def test_unknown_table(self, db):
        with pytest.raises(SQLExecutionError, match="unknown table"):
            db.execute("SELECT x FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(SQLExecutionError, match="unknown column"):
            db.execute("SELECT ghost FROM foodlog")


class TestUdf:
    def test_udf_in_select(self, db):
        db.udfs.register("double_age", lambda age: age * 2)
        result = db.execute("SELECT double_age(age) FROM foodlog WHERE user_id = 1")
        assert result.rows == [(50,)]

    def test_udf_called_only_on_filtered_rows(self, db):
        """The Section 8 saving: WHERE runs before select-list UDFs."""
        calls = []

        def classify(path):
            calls.append(path)
            return "noodle"

        db.udfs.register("food_name", classify)
        result = db.execute(
            "SELECT food_name(image_path) AS name, count(*) FROM foodlog "
            "WHERE age > 52 GROUP BY name"
        )
        assert len(calls) == 2  # only user 4 and 5 pass the filter
        assert result.udf_calls == 2
        assert result.rows == [("noodle", 2)]

    def test_udf_call_counters(self, db):
        db.udfs.register("f", lambda x: x)
        db.execute("SELECT f(age) FROM foodlog")
        assert db.udfs.calls["f"] == 5
        assert db.last_udf_calls == 5

    def test_group_by_udf_alias(self, db):
        db.udfs.register("age_band", lambda age: "young" if age < 40 else "old")
        result = db.execute(
            "SELECT age_band(age) AS band, count(*) FROM foodlog GROUP BY band"
        )
        assert dict(result.rows) == {"young": 2, "old": 3}

    def test_unknown_function(self, db):
        with pytest.raises(SQLExecutionError, match="unknown function"):
            db.execute("SELECT ghost(age) FROM foodlog")

    def test_duplicate_registration_rejected(self, db):
        db.udfs.register("f", lambda x: x)
        with pytest.raises(SQLExecutionError):
            db.udfs.register("F", lambda x: x)

    def test_udf_in_where(self, db):
        db.udfs.register("is_sg", lambda loc: 1 if loc == "sg" else 0)
        result = db.execute("SELECT user_id FROM foodlog WHERE is_sg(location) = 1")
        assert len(result) == 3


class TestTokenizerProperties:
    """Property-style checks over the SQL tokenizer."""

    def test_identifier_roundtrip(self, db):
        from hypothesis import given
        from hypothesis import strategies as st
        from repro.sqlext.engine import _tokenize

        @given(st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True))
        def check(ident):
            tokens = _tokenize(f"SELECT {ident} FROM t")
            assert ("ident", ident) in tokens

        check()

    def test_number_parsing(self):
        # The minus is its own operator token — the parser applies it
        # as unary minus, so a negative literal can never be confused
        # with a binary minus between two tokens.
        from repro.sqlext.engine import _tokenize, parse_select
        from repro.sqlext.engine import Comparison, Literal

        tokens = _tokenize("SELECT a FROM t WHERE x > -3.5")
        assert ("op", "-") in tokens
        assert ("number", "3.5") in tokens
        assert ("number", "-3.5") not in tokens
        statement = parse_select("SELECT a FROM t WHERE x > -3.5")
        assert statement.where[0] == Comparison(
            statement.where[0].left, ">", Literal(-3.5)
        )

    def test_string_with_doubled_quotes(self):
        from repro.sqlext.engine import _tokenize

        tokens = _tokenize("SELECT a FROM t WHERE s = 'it''s'")
        assert ("string", "'it''s'") in tokens

    def test_semicolon_stripped(self, db):
        assert db.execute("SELECT count(*) FROM foodlog;").rows == [(5,)]


class TestNullSemantics:
    def test_null_fails_comparisons(self, db):
        db.insert("foodlog", user_id=10, age=30, location="sg", image_path="z")
        # user_id is nullable; NULL rows never pass a WHERE on that column
        db.insert("foodlog", user_id=None, age=31, location="sg", image_path="z2")
        result = db.execute("SELECT image_path FROM foodlog WHERE user_id >= 0")
        assert ("z2",) not in result.rows

    def test_aggregates_skip_nulls(self, db):
        db.insert("foodlog", user_id=None, age=99, location="x", image_path="p")
        result = db.execute("SELECT count(user_id), count(*) FROM foodlog")
        non_null, total = result.rows[0]
        assert total == non_null + 1


class TestOrderByLimit:
    def test_order_by_ascending(self, db):
        result = db.execute("SELECT user_id, age FROM foodlog ORDER BY age")
        ages = [row[1] for row in result.rows]
        assert ages == sorted(ages)

    def test_order_by_descending(self, db):
        result = db.execute("SELECT age FROM foodlog ORDER BY age DESC")
        ages = [row[0] for row in result.rows]
        assert ages == sorted(ages, reverse=True)

    def test_limit(self, db):
        result = db.execute("SELECT user_id FROM foodlog ORDER BY user_id LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_limit_zero(self, db):
        assert db.execute("SELECT user_id FROM foodlog LIMIT 0").rows == []

    def test_order_by_alias(self, db):
        result = db.execute(
            "SELECT location AS loc, count(*) AS n FROM foodlog "
            "GROUP BY loc ORDER BY n DESC LIMIT 1"
        )
        assert result.rows == [("sg", 3)]

    def test_order_by_multiple_keys(self, db):
        result = db.execute(
            "SELECT location, age FROM foodlog ORDER BY location, age DESC"
        )
        rows = result.rows
        # grouped by location ascending, ages descending within each
        assert rows[0][0] <= rows[-1][0]
        cn_ages = [age for loc, age in rows if loc == "cn"]
        assert cn_ages == sorted(cn_ages, reverse=True)

    def test_order_by_unknown_column_rejected(self, db):
        with pytest.raises(SQLExecutionError, match="ORDER BY"):
            db.execute("SELECT age FROM foodlog ORDER BY ghost")

    def test_bad_limit_rejected(self, db):
        with pytest.raises(SQLParseError, match="LIMIT"):
            db.execute("SELECT age FROM foodlog LIMIT 2.5")

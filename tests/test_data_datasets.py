"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import make_image_classification, make_sentiment_dataset
from repro.exceptions import ConfigurationError


class TestImageClassification:
    def test_shapes_and_splits(self):
        ds = make_image_classification(
            num_classes=4, image_shape=(3, 16, 16),
            train_per_class=10, val_per_class=3, test_per_class=2,
        )
        assert ds.train_x.shape == (40, 3, 16, 16)
        assert ds.val_x.shape == (12, 3, 16, 16)
        assert ds.test_x.shape == (8, 3, 16, 16)
        assert len(ds) == 60
        assert ds.image_shape == (3, 16, 16)

    def test_balanced_labels(self):
        ds = make_image_classification(num_classes=5, train_per_class=7)
        counts = np.bincount(ds.train_y, minlength=5)
        assert np.all(counts == 7)

    def test_deterministic_by_seed(self):
        a = make_image_classification(seed=3, train_per_class=4)
        b = make_image_classification(seed=3, train_per_class=4)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_different_seeds_differ(self):
        a = make_image_classification(seed=1, train_per_class=4)
        b = make_image_classification(seed=2, train_per_class=4)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_difficulty_controls_noise(self):
        easy = make_image_classification(difficulty=0.1, train_per_class=8, seed=0)
        hard = make_image_classification(difficulty=1.5, train_per_class=8, seed=0)
        # a nearest-template classifier separates easy better than hard
        assert easy.train_x.std() < hard.train_x.std()

    def test_classes_are_distinguishable(self):
        """Per-class means differ more across classes than within."""
        ds = make_image_classification(
            num_classes=3, train_per_class=20, difficulty=0.3, seed=5
        )
        means = np.stack([
            ds.train_x[ds.train_y == c].mean(axis=0).ravel() for c in range(3)
        ])
        cross = np.linalg.norm(means[0] - means[1])
        assert cross > 1.0  # templates have unit-ish contrast

    def test_splits_dict(self):
        ds = make_image_classification(train_per_class=2, val_per_class=1, test_per_class=1)
        splits = ds.splits()
        assert set(splits) == {"train", "val", "test"}

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            make_image_classification(num_classes=1)
        with pytest.raises(ConfigurationError):
            make_image_classification(difficulty=-1)


class TestSentiment:
    def test_shapes(self):
        train_x, train_y, test_x, test_y = make_sentiment_dataset(
            vocab_size=50, train_count=30, test_count=10, doc_length=20
        )
        assert train_x.shape == (30, 50)
        assert test_x.shape == (10, 50)
        assert set(np.unique(train_y)) <= {0, 1}

    def test_documents_have_fixed_length(self):
        train_x, *_ = make_sentiment_dataset(doc_length=25, train_count=10)
        np.testing.assert_allclose(train_x.sum(axis=1), 25)

    def test_polarity_signal_is_learnable(self):
        train_x, train_y, test_x, test_y = make_sentiment_dataset(
            vocab_size=100, train_count=200, test_count=100, signal=1.5, seed=1
        )
        # a trivial polarity-sum classifier should beat chance easily
        polarity = np.concatenate([np.ones(50), -np.ones(50)])
        predictions = (test_x @ polarity > 0).astype(int)
        assert np.mean(predictions == test_y) > 0.8

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ConfigurationError):
            make_sentiment_dataset(vocab_size=2)

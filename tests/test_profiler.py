"""Tests for the deployed-network latency profiler."""

import numpy as np
import pytest

from repro.core.serve import fit_affine_latency, profile_network
from repro.core.system import Rafiki
from repro.core.tune import HyperConf
from repro.data import make_image_classification
from repro.exceptions import ConfigurationError
from repro.zoo.builders import build_mlp, build_vgg_mini


class TestAffineFit:
    def test_recovers_exact_affine(self):
        sizes = [1, 8, 16, 32]
        times = [0.01 + 0.002 * b for b in sizes]
        overhead, per_image = fit_affine_latency(sizes, times)
        assert overhead == pytest.approx(0.01, rel=1e-6)
        assert per_image == pytest.approx(0.002, rel=1e-6)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        sizes = np.arange(1, 65)
        times = 0.05 + 0.003 * sizes + rng.normal(0, 1e-4, size=sizes.size)
        overhead, per_image = fit_affine_latency(sizes, times)
        assert overhead == pytest.approx(0.05, abs=0.005)
        assert per_image == pytest.approx(0.003, rel=0.05)

    def test_negative_intercept_clamped(self):
        overhead, per_image = fit_affine_latency([1, 2], [0.001, 0.005])
        assert overhead >= 0.0
        assert per_image > 0.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_affine_latency([1], [0.1])


class TestProfileNetwork:
    def test_profile_shape_and_positivity(self, rng):
        net = build_mlp((12,), 3, rng, hidden=(16,))
        profile = profile_network(net, "mlp", batch_sizes=(1, 4, 16), iterations=3)
        assert profile.name == "mlp"
        assert profile.overhead_s >= 0.0
        assert profile.per_image_s > 0.0
        assert profile.memory_mb > 0.0
        assert profile.inference_time(16) > profile.inference_time(1)

    def test_deterministic_with_fake_clock(self, rng):
        """A fake clock makes the measured times exact."""
        net = build_mlp((4,), 2, rng, hidden=(8,))
        ticks = iter(np.arange(0, 1000, 0.5))

        def fake_clock():
            return float(next(ticks))

        profile = profile_network(net, "m", batch_sizes=(1, 2, 4), iterations=2,
                                  clock=fake_clock)
        # every timed span is exactly 0.5 fake seconds, so the fit is flat
        assert profile.per_image_s == pytest.approx(1e-9)

    def test_unbuilt_network_rejected(self):
        from repro.tensor import Dense, Network

        with pytest.raises(ConfigurationError, match="built"):
            profile_network(Network([Dense(3, name="d")]), "x")

    def test_conv_profile_scales_with_batch(self, rng, tiny_dataset):
        net = build_vgg_mini(tiny_dataset.image_shape, tiny_dataset.num_classes,
                             rng, width=4)
        profile = profile_network(net, "vgg", batch_sizes=(1, 8, 16), iterations=3)
        assert profile.throughput(16) > profile.throughput(1)


class TestFacadeProfiling:
    def test_profile_deployed_job(self):
        system = Rafiki(seed=6)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=10, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=6,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=2),
        )
        infer_id = system.create_inference_job(system.get_models(job_id))
        profiles = system.profile_inference_job(infer_id, batch_sizes=(1, 4, 8))
        assert len(profiles) == len(system.get_models(job_id))
        for profile, spec in zip(profiles, system.get_models(job_id)):
            assert profile.top1_accuracy == pytest.approx(spec.performance)
            assert profile.inference_time(8) > 0

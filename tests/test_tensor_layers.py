"""Gradient and shape tests for every layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tensor import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)
from repro.tensor.im2col import col2im, conv_output_size, im2col

# Finite-difference gradient checks need float64 precision.
pytestmark = pytest.mark.usefixtures("float64_engine")


def numeric_grad(f, array, index, eps=1e-6):
    array[index] += eps
    plus = f()
    array[index] -= 2 * eps
    minus = f()
    array[index] += eps
    return (plus - minus) / (2 * eps)


def check_param_grads(net, x, labels, param_name, spots, tol=1e-5):
    """Compare backprop gradients with central differences."""
    loss = SoftmaxCrossEntropy()

    def forward():
        # Dropout-free nets are deterministic; BatchNorm recomputes batch
        # stats each call, so training-mode forward is a pure function.
        return loss.forward(net.forward(x, training=True), labels)

    net.zero_grads()
    forward()
    net.backward(loss.backward())
    analytic = net.grads[param_name].copy()
    param = net.params[param_name]
    for spot in spots:
        numeric = numeric_grad(forward, param, spot)
        assert analytic[spot] == pytest.approx(numeric, abs=tol), (
            f"{param_name}{spot}: {analytic[spot]} vs {numeric}"
        )


def check_input_grads(net, x, labels, spots, tol=1e-5):
    loss = SoftmaxCrossEntropy()
    x = x.copy()

    def forward():
        return loss.forward(net.forward(x, training=True), labels)

    net.zero_grads()
    forward()
    grad_x = net.backward(loss.backward())
    for spot in spots:
        numeric = numeric_grad(forward, x, spot)
        assert grad_x[spot] == pytest.approx(numeric, abs=tol)


class TestIm2col:
    def test_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 2, 2, 0) == 16
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_roundtrip_counts(self, rng):
        """col2im(im2col(x)) counts each pixel's window multiplicity."""
        x = np.ones((2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1, 1)
        back = col2im(cols, x.shape, 3, 3, 1, 1)
        # centre pixels appear in 9 windows
        assert back[0, 0, 3, 3] == 9.0
        # corner pixels appear in 4 windows (with pad 1)
        assert back[0, 0, 0, 0] == 4.0

    def test_patch_content(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, 2, 2, 2, 0)
        # first column is the top-left 2x2 window
        np.testing.assert_allclose(cols[:, 0], x[0, 0, :2, :2].ravel())


class TestDense:
    def test_forward_shape(self, rng):
        net = Network([Dense(7, name="d")]).build((4,), rng)
        assert net.forward(rng.normal(size=(3, 4))).shape == (3, 7)

    def test_gradients(self, rng):
        net = Network([Dense(6, name="d1"), ReLU(name="r"), Dense(3, name="d2")]).build((5,), rng)
        x = rng.normal(size=(8, 5))
        y = rng.integers(0, 3, size=8)
        check_param_grads(net, x, y, "d1/W", [(0, 0), (2, 3), (4, 5)])
        check_param_grads(net, x, y, "d1/b", [(0,), (5,)])
        check_input_grads(net, x, y, [(0, 0), (3, 2)])

    def test_no_bias(self, rng):
        layer = Dense(4, name="d", use_bias=False)
        Network([layer]).build((3,), rng)
        assert "b" not in layer.params

    def test_rejects_multidim_input(self, rng):
        with pytest.raises(ConfigurationError, match="Flatten"):
            Network([Dense(4, name="d")]).build((3, 4, 4), rng)

    def test_rejects_bad_units(self):
        with pytest.raises(ConfigurationError):
            Dense(0)


class TestConv2D:
    def test_forward_shape_same_pad(self, rng):
        net = Network([Conv2D(5, 3, name="c")]).build((2, 9, 9), rng)
        assert net.output_shape == (5, 9, 9)

    def test_forward_shape_strided(self, rng):
        net = Network([Conv2D(4, 3, stride=2, pad=1, name="c")]).build((2, 8, 8), rng)
        assert net.output_shape == (4, 4, 4)

    def test_matches_direct_convolution(self, rng):
        """im2col convolution equals a naive loop implementation."""
        layer = Conv2D(2, 3, pad=1, name="c")
        net = Network([layer]).build((1, 5, 5), rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = net.forward(x)
        w, b = layer.params["W"], layer.params["b"]
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for f in range(2):
            for i in range(5):
                for j in range(5):
                    window = padded[0, :, i : i + 3, j : j + 3]
                    expected = float((window * w[f]).sum() + b[f])
                    assert out[0, f, i, j] == pytest.approx(expected)

    def test_gradients(self, rng):
        net = Network(
            [Conv2D(3, 3, name="c"), ReLU(name="r"), Flatten(name="f"), Dense(2, name="d")]
        ).build((2, 5, 5), rng)
        x = rng.normal(size=(4, 2, 5, 5))
        y = rng.integers(0, 2, size=4)
        check_param_grads(net, x, y, "c/W", [(0, 0, 0, 0), (2, 1, 2, 2), (1, 0, 1, 2)])
        check_param_grads(net, x, y, "c/b", [(0,), (2,)])
        check_input_grads(net, x, y, [(0, 0, 0, 0), (2, 1, 3, 4)])

    def test_same_pad_requires_stride_one(self):
        with pytest.raises(ConfigurationError):
            Conv2D(4, 3, stride=2, pad="same")


class TestPooling:
    def test_maxpool_values(self, rng):
        net = Network([MaxPool2D(2, name="p")]).build((1, 4, 4), rng)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = net.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self, rng):
        net = Network(
            [MaxPool2D(2, name="p"), Flatten(name="f"), Dense(2, name="d")]
        ).build((2, 4, 4), rng)
        x = rng.normal(size=(3, 2, 4, 4))
        y = rng.integers(0, 2, size=3)
        check_input_grads(net, x, y, [(0, 0, 0, 0), (1, 1, 2, 3), (2, 0, 3, 3)])

    def test_avgpool_values(self, rng):
        net = Network([AvgPool2D(2, name="p")]).build((1, 4, 4), rng)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = net.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradients(self, rng):
        net = Network(
            [AvgPool2D(2, name="p"), Flatten(name="f"), Dense(2, name="d")]
        ).build((1, 4, 4), rng)
        x = rng.normal(size=(3, 1, 4, 4))
        y = rng.integers(0, 2, size=3)
        check_input_grads(net, x, y, [(0, 0, 0, 0), (2, 0, 3, 1)])

    def test_pool_collapse_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            Network([MaxPool2D(4, name="p")]).build((1, 2, 2), rng)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_gradients(self, layer_cls, rng):
        net = Network(
            [Dense(5, name="d1"), layer_cls(name="act"), Dense(3, name="d2")]
        ).build((4,), rng)
        x = rng.normal(size=(6, 4))
        y = rng.integers(0, 3, size=6)
        check_param_grads(net, x, y, "d1/W", [(0, 0), (3, 4)])

    def test_relu_zeroes_negatives(self, rng):
        relu = ReLU(name="r")
        out = relu.forward(np.array([[-1.0, 2.0, -3.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0, 0.0]])

    def test_sigmoid_range(self, rng):
        sig = Sigmoid(name="s")
        out = sig.forward(rng.normal(size=(4, 4)) * 100)
        assert np.all(out >= 0) and np.all(out <= 1)


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, name="do")
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, name="do", seed=0)
        x = np.ones((1, 10_000))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert kept[0] == pytest.approx(2.0)  # inverted dropout scaling
        assert 0.45 < (out > 0).mean() < 0.55

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, name="do", seed=0)
        x = np.ones((1, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_rejects_rate_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalises_training_batch(self, rng):
        layer = BatchNorm(name="bn")
        Network([layer]).build((6,), rng)
        x = rng.normal(3.0, 2.0, size=(64, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_used_at_inference(self, rng):
        layer = BatchNorm(momentum=0.0, name="bn")  # running = last batch
        Network([layer]).build((4,), rng)
        x = rng.normal(5.0, 3.0, size=(128, 4))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.05

    def test_gradients_2d(self, rng):
        net = Network(
            [Dense(5, name="d1"), BatchNorm(name="bn"), Dense(3, name="d2")]
        ).build((4,), rng)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)
        check_param_grads(net, x, y, "bn/gamma", [(0,), (3,)])
        check_param_grads(net, x, y, "bn/beta", [(1,), (4,)])
        check_param_grads(net, x, y, "d1/W", [(0, 0), (2, 2)])

    def test_gradients_4d(self, rng):
        net = Network(
            [Conv2D(2, 3, name="c"), BatchNorm(name="bn"), Flatten(name="f"),
             Dense(2, name="d")]
        ).build((1, 4, 4), rng)
        x = rng.normal(size=(5, 1, 4, 4))
        y = rng.integers(0, 2, size=5)
        check_param_grads(net, x, y, "c/W", [(0, 0, 1, 1), (1, 0, 2, 0)])
        check_param_grads(net, x, y, "bn/gamma", [(0,), (1,)])

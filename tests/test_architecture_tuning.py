"""Architecture-knob tuning with real training (Section 4.2.2, part 2).

When the architecture itself is tuned, model parameters change shape
between trials; the collaborative scheme still reuses every layer whose
shape matches the checkpoint ("the shape matched W"). These tests run a
small real-training CoStudy over a width knob and verify the partial
reuse actually happens.
"""

import numpy as np
import pytest

from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    RealTrainer,
    make_workers,
    run_study,
)
from repro.paramserver import ParameterServer
from repro.zoo.builders import build_vgg_mini


def width_space() -> HyperSpace:
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.2, log_scale=True)
    space.add_categorical_knob("width", "int", [4, 8])
    return space


class TestArchitectureTuning:
    def test_costudy_with_varying_width(self, tiny_dataset):
        conf = HyperConf(max_trials=6, max_epochs_per_trial=3,
                         alpha0=0.5, alpha_decay=0.5, alpha_min=0.0, delta=0.0)
        ps = ParameterServer()
        advisor = RandomSearchAdvisor(width_space(), rng=np.random.default_rng(0))
        master = CoStudyMaster("arch", conf, advisor, ps,
                               rng=np.random.default_rng(4))
        backend = RealTrainer(
            dataset=tiny_dataset, builder=build_vgg_mini, batch_size=16,
            use_augmentation=False, arch_knobs=("width",), seed=3,
        )
        workers = make_workers(master, backend, ps, conf, 2)
        report = run_study(master, workers)
        widths = {r.trial.params["width"] for r in report.results}
        assert widths == {4, 8}  # both architectures were tried
        assert ps.has("arch/best")

    def test_shape_matched_reuse_across_widths(self, tiny_dataset, rng):
        """A width-8 checkpoint partially initialises a width-4 net.

        vgg-mini's first conv has shape (width, 3, 3, 3); with different
        widths nothing below the classifier matches, but the final
        num_classes-sized bias does — exactly the partial-match rule.
        """
        wide = build_vgg_mini(tiny_dataset.image_shape, tiny_dataset.num_classes,
                              rng, width=8)
        narrow = build_vgg_mini(tiny_dataset.image_shape, tiny_dataset.num_classes,
                                rng, width=4)
        loaded = narrow.warm_start(wide.state_dict())
        assert loaded  # something matched (the final bias at least)
        assert len(loaded) < len(narrow.params)  # but not everything

    def test_same_width_reuses_everything(self, tiny_dataset, rng):
        a = build_vgg_mini(tiny_dataset.image_shape, tiny_dataset.num_classes,
                           rng, width=4, name="a")
        b = build_vgg_mini(tiny_dataset.image_shape, tiny_dataset.num_classes,
                           rng, width=4, name="b")
        loaded = b.warm_start(a.state_dict())
        assert len(loaded) == len(b.params)
        x = tiny_dataset.val_x[:4]
        np.testing.assert_allclose(a.forward(x), b.forward(x))

"""Golden-plan snapshots and tokenizer edge cases.

The textual ``explain()`` format is a stable contract: these tests pin
exact plans for representative queries, proving the optimizer passes
fired (predicate pushdown, projection pruning, common-UDF-subexpression
elimination) — and that pushdown is *skipped* for predicates that read
a UDF output. The tokenizer section covers the edge cases the random
query generator surfaced: unary minus vs negative literals, doubled
single-quote escapes round-tripping through ``explain()``, and parse
errors that report source positions.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.exceptions import SQLParseError
from repro.sqlext import Column, Database


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "foodlog",
        [Column("user_id", "int"), Column("age", "int"),
         Column("location", "str"), Column("image_path", "str")],
    )
    database.udfs.register("food_name", lambda path: path)
    database.udfs.register("calories", lambda food: 1)
    return database


def golden(text: str) -> str:
    return textwrap.dedent(text).strip()


class TestGoldenPlans:
    def test_pushdown_and_pruning_under_aggregate(self, db):
        plan = db.explain(
            "SELECT food_name(image_path) AS name, count(*) AS n "
            "FROM foodlog WHERE age > 52 AND location = 'sg' "
            "GROUP BY name ORDER BY n DESC LIMIT 3"
        )
        assert plan == golden("""
            Limit(count=3)
              Sort(n DESC)
                Aggregate(keys=[__udf0 AS name], aggs=[count(*) AS n], group_by=[name])
                  EvalUdf(__udf0 := food_name(image_path))
                    Filter(age > 52 AND location = 'sg')
                      Scan(foodlog, columns=[age, image_path, location])
        """)

    def test_pushdown_skipped_for_predicate_on_udf_output(self, db):
        # Regression: ``age > 30`` sinks below the UDF stage, but the
        # predicate reading the UDF's output MUST stay above it — it
        # reads a column that does not exist before EvalUdf runs.
        plan = db.explain(
            "SELECT user_id FROM foodlog "
            "WHERE food_name(image_path) = 'laksa' AND age > 30"
        )
        assert plan == golden("""
            Project(user_id)
              Filter(__udf0 = 'laksa')
                EvalUdf(__udf0 := food_name(image_path))
                  Filter(age > 30)
                    Scan(foodlog, columns=[age, image_path, user_id])
        """)

    def test_common_udf_subexpression_eliminated(self, db):
        # ``food_name(image_path)`` appears twice (once nested inside
        # ``calories``) but is materialized exactly once as __udf0.
        plan = db.explain(
            "SELECT calories(food_name(image_path)) AS kcal, "
            "food_name(image_path) AS name "
            "FROM foodlog WHERE age >= 21 GROUP BY kcal, name"
        )
        assert plan == golden("""
            Aggregate(keys=[__udf1 AS kcal, __udf0 AS name], aggs=[], group_by=[kcal, name])
              EvalUdf(__udf0 := food_name(image_path), __udf1 := calories(__udf0))
                Filter(age >= 21)
                  Scan(foodlog, columns=[age, image_path])
        """)

    def test_pruning_without_udfs(self, db):
        plan = db.explain(
            "SELECT user_id, age FROM foodlog "
            "WHERE location = 'it''s' ORDER BY age DESC LIMIT 5"
        )
        assert plan == golden("""
            Limit(count=5)
              Sort(age DESC)
                Project(user_id, age)
                  Filter(location = 'it''s')
                    Scan(foodlog, columns=[age, location, user_id])
        """)

    def test_canonical_plan_is_unrewritten(self, db):
        plan = db.explain(
            "SELECT user_id FROM foodlog "
            "WHERE food_name(image_path) = 'laksa' AND age > 30",
            optimize=False,
        )
        assert plan == golden("""
            Project(user_id)
              Filter(food_name(image_path) = 'laksa' AND age > 30)
                Scan(foodlog)
        """)

    def test_optimized_explain_matches_executed_plan(self, db):
        from repro.sqlext.plan import explain_plan

        sql = ("SELECT food_name(image_path) AS name, count(*) AS n "
               "FROM foodlog WHERE age > 52 GROUP BY name")
        explained = db.explain(sql)
        db.execute(sql, executor="planned")
        assert explain_plan(db._planned.last_plan) == explained


class TestTokenizerEdgeCases:
    def test_unary_minus_evaluates(self, db):
        db.insert("foodlog", user_id=1, age=-4, location="x", image_path="p")
        db.insert("foodlog", user_id=2, age=10, location="x", image_path="p")
        for executor in ("planned", "naive"):
            result = db.execute(
                "SELECT user_id FROM foodlog WHERE age < -3 ORDER BY user_id",
                executor=executor,
            )
            assert result.rows == [(1,)]

    def test_unary_minus_requires_number(self):
        database = Database()
        database.create_table("t", [Column("a", "int")])
        with pytest.raises(SQLParseError, match=r"unary '-'"):
            database.execute("SELECT a FROM t WHERE a > - x")

    def test_binary_minus_is_rejected_with_position(self):
        # ``a - 3`` is not in the grammar; the op token is reported with
        # its source position instead of a confusing mis-tokenization.
        database = Database()
        database.create_table("t", [Column("a", "int")])
        with pytest.raises(SQLParseError, match=r"position"):
            database.execute("SELECT a FROM t WHERE a - 3 > 1")

    def test_doubled_quote_roundtrips_through_explain(self, db):
        # The literal renders back in SQL form (quote doubled), and the
        # rendered text re-parses to the same value.
        from repro.sqlext.engine import parse_select

        plan = db.explain("SELECT user_id FROM foodlog WHERE location = 'it''s'")
        assert "location = 'it''s'" in plan
        reparsed = parse_select(
            "SELECT user_id FROM foodlog WHERE location = 'it''s'"
        )
        assert reparsed.where[0].right.value == "it's"

    def test_trailing_garbage_reports_position(self):
        database = Database()
        database.create_table("t", [Column("a", "int")])
        with pytest.raises(SQLParseError, match=r"trailing tokens at position 16"):
            database.execute("SELECT a FROM t 42")

    def test_tokenizer_error_reports_position(self):
        with pytest.raises(SQLParseError, match=r"position 16"):
            Database().execute("SELECT a FROM t ;;;!")

    def test_limit_rejects_negative_with_position(self):
        database = Database()
        database.create_table("t", [Column("a", "int")])
        with pytest.raises(SQLParseError, match=r"LIMIT"):
            database.execute("SELECT a FROM t LIMIT -1")

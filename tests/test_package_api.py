"""Tests for the top-level package surface."""

import pytest


class TestLazySdkExports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_figure2_symbols_resolve(self):
        import repro

        for name in ("import_images", "HyperConf", "Train", "Inference",
                     "get_models", "query", "connect"):
            assert callable(getattr(repro, name))

    def test_rafiki_facade_reachable(self):
        import repro

        assert repro.Rafiki.__name__ == "Rafiki"

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_symbol

"""Tests for the sequence layers (Embedding, RNN)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tensor import Dense, Embedding, Network, RNN, SGD, SoftmaxCrossEntropy

# Finite-difference gradient checks need float64 precision.
pytestmark = pytest.mark.usefixtures("float64_engine")


class TestEmbedding:
    def test_lookup_shape_and_values(self, rng):
        layer = Embedding(10, 4, name="e")
        Network([layer]).build((5,), rng)
        ids = np.array([[0, 1, 2, 3, 9]])
        out = layer.forward(ids)
        assert out.shape == (1, 5, 4)
        np.testing.assert_allclose(out[0, 0], layer.params["W"][0])
        np.testing.assert_allclose(out[0, 4], layer.params["W"][9])

    def test_gradient_accumulates_per_token(self, rng):
        layer = Embedding(6, 3, name="e")
        Network([layer]).build((4,), rng)
        ids = np.array([[2, 2, 1, 0]])
        layer.forward(ids)
        grad_out = np.ones((1, 4, 3))
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.grads["W"][2], 2.0)  # appeared twice
        np.testing.assert_allclose(layer.grads["W"][1], 1.0)
        np.testing.assert_allclose(layer.grads["W"][5], 0.0)

    def test_out_of_range_ids_rejected(self, rng):
        layer = Embedding(4, 2, name="e")
        Network([layer]).build((2,), rng)
        with pytest.raises(ConfigurationError, match="token ids"):
            layer.forward(np.array([[0, 4]]))

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            Embedding(0, 4)


class TestRNN:
    def test_output_shapes(self, rng):
        final = Network([RNN(7, name="r")]).build((5, 3), rng)
        assert final.output_shape == (7,)
        seq = Network([RNN(7, return_sequences=True, name="r")]).build((5, 3), rng)
        assert seq.output_shape == (5, 7)

    def test_forward_matches_manual_recurrence(self, rng):
        layer = RNN(2, return_sequences=True, name="r")
        Network([layer]).build((3, 2), rng)
        x = rng.normal(size=(1, 3, 2))
        out = layer.forward(x)
        wx, wh, b = layer.params["Wx"], layer.params["Wh"], layer.params["b"]
        h = np.zeros(2)
        for t in range(3):
            h = np.tanh(x[0, t] @ wx + h @ wh + b)
            np.testing.assert_allclose(out[0, t], h)

    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_bptt_gradients_match_numeric(self, rng, return_sequences):
        layers = [RNN(4, return_sequences=return_sequences, name="r")]
        if return_sequences:
            from repro.tensor import Flatten

            layers.append(Flatten(name="f"))
        layers.append(Dense(2, name="d"))
        net = Network(layers).build((5, 3), rng)
        x = rng.normal(size=(4, 5, 3))
        y = rng.integers(0, 2, size=4)
        loss = SoftmaxCrossEntropy()

        def forward():
            return loss.forward(net.forward(x, training=True), y)

        net.zero_grads()
        forward()
        net.backward(loss.backward())
        for pname in ("r/Wx", "r/Wh", "r/b"):
            analytic = net.grads[pname].copy()
            param = net.params[pname]
            flat_index = (0,) * param.ndim
            eps = 1e-6
            param[flat_index] += eps
            plus = forward()
            param[flat_index] -= 2 * eps
            minus = forward()
            param[flat_index] += eps
            numeric = (plus - minus) / (2 * eps)
            assert analytic[flat_index] == pytest.approx(numeric, abs=1e-6), pname

    def test_learns_parity_of_short_sequences(self, rng):
        """An RNN can learn a sequential task an MLP on sums cannot."""
        n, steps = 256, 6
        x_bits = rng.integers(0, 2, size=(n, steps))
        y = x_bits.sum(axis=1) % 2
        x = x_bits[:, :, None].astype(np.float64)
        from repro.tensor import Adam

        net = Network([RNN(16, name="r"), Dense(2, name="d")]).build((steps, 1), rng)
        loss = SoftmaxCrossEntropy()
        optimizer = Adam(lr=0.01)
        for _ in range(250):
            net.zero_grads()
            loss.forward(net.forward(x, training=True), y)
            net.backward(loss.backward())
            optimizer.step(net.params, net.grads)
        accuracy = float(np.mean(net.predict_labels(x) == y))
        assert accuracy > 0.9

    def test_bad_input_rank(self, rng):
        with pytest.raises(ConfigurationError, match=r"\(T, D\)"):
            Network([RNN(4, name="r")]).build((5,), rng)


class TestEmbeddingRNNPipeline:
    def test_character_model_trains(self, rng):
        """An Embedding->RNN->Dense 'CharacterRNN' learns a toy rule:
        class = most frequent of two marker tokens."""
        vocab, steps, n = 8, 10, 200
        tokens = rng.integers(2, vocab, size=(n, steps))
        labels = rng.integers(0, 2, size=n)
        # plant marker tokens 0/1 according to the label
        for i in range(n):
            positions = rng.choice(steps, size=4, replace=False)
            tokens[i, positions] = labels[i]
        net = Network(
            [Embedding(vocab, 8, name="e"), RNN(12, name="r"), Dense(2, name="d")]
        ).build((steps,), rng)
        loss = SoftmaxCrossEntropy()
        optimizer = SGD(lr=0.1, momentum=0.9)
        for _ in range(80):
            net.zero_grads()
            loss.forward(net.forward(tokens, training=True), labels)
            net.backward(loss.backward())
            optimizer.step(net.params, net.grads)
        accuracy = float(np.mean(net.predict_labels(tokens) == labels))
        assert accuracy > 0.85

"""Tests for the reservoir sampler and latency quantiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.utils.reservoir import Reservoir


class TestReservoirBasics:
    def test_fills_up_exactly(self):
        reservoir = Reservoir(capacity=5)
        for value in range(3):
            reservoir.add(float(value))
        assert len(reservoir) == 3
        assert sorted(reservoir.values()) == [0.0, 1.0, 2.0]

    def test_never_exceeds_capacity(self):
        reservoir = Reservoir(capacity=10)
        for value in range(1000):
            reservoir.add(float(value))
        assert len(reservoir) == 10
        assert reservoir.stream_length == 1000

    def test_add_many_matches_semantics(self):
        reservoir = Reservoir(capacity=8)
        reservoir.add_many(np.arange(100, dtype=float))
        assert len(reservoir) == 8
        assert reservoir.stream_length == 100
        assert set(reservoir.values()) <= set(np.arange(100, dtype=float))

    def test_quantiles_of_known_distribution(self):
        reservoir = Reservoir(capacity=4096, seed=1)
        reservoir.add_many(np.linspace(0.0, 1.0, 100_000))
        assert reservoir.quantile(0.5) == pytest.approx(0.5, abs=0.03)
        assert reservoir.quantile(0.99) == pytest.approx(0.99, abs=0.02)

    def test_sample_is_roughly_uniform_over_stream(self):
        """Late elements are as likely to survive as early ones."""
        reservoir = Reservoir(capacity=500, seed=2)
        reservoir.add_many(np.arange(50_000, dtype=float))
        values = reservoir.values()
        # the sample mean tracks the stream mean (~25k)
        assert abs(values.mean() - 25_000) < 3_000

    def test_empty_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            Reservoir().quantile(0.5)

    def test_bad_q_rejected(self):
        reservoir = Reservoir()
        reservoir.add(1.0)
        with pytest.raises(ConfigurationError):
            reservoir.quantile(1.5)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Reservoir(capacity=0)

    @given(st.lists(st.floats(-1e6, 1e6), max_size=200), st.integers(1, 50))
    @settings(max_examples=30)
    def test_invariants_hold_for_any_stream(self, stream, capacity):
        reservoir = Reservoir(capacity=capacity)
        reservoir.add_many(np.array(stream))
        assert len(reservoir) == min(len(stream), capacity)
        assert reservoir.stream_length == len(stream)
        if stream:
            sample = set(reservoir.values())
            assert sample <= set(stream)


class TestServingLatencyQuantiles:
    def test_env_records_latency_distribution(self):
        from repro.core.serve import (
            DEFAULT_BATCH_SIZES,
            GreedySingleController,
            ServingEnv,
            SineArrival,
        )
        from repro.zoo import get_profile

        profile = get_profile("inception_v3")
        arrival = SineArrival(150.0, period=100.0, rng=np.random.default_rng(0))
        controller = GreedySingleController(profile, DEFAULT_BATCH_SIZES, tau=0.56)
        env = ServingEnv([profile], controller, arrival, 0.56, DEFAULT_BATCH_SIZES)
        metrics = env.run(horizon=60.0)
        assert metrics.latencies.stream_length == metrics.total_served
        p50 = metrics.latency_quantile(0.5)
        p99 = metrics.latency_quantile(0.99)
        assert 0.0 < p50 <= p99
        # under capacity, nearly everything lands within the SLO
        assert p99 < 2 * 0.56

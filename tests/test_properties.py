"""Property-based tests (hypothesis) over core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serve import RequestQueue, SineArrival
from repro.core.tune import HyperSpace
from repro.paramserver import LRUCache
from repro.sim import Simulator
from repro.zoo import majority_vote


class TestLRUCacheProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(1, 20)),
            max_size=60,
        ),
        st.integers(10, 50),
    )
    def test_never_exceeds_capacity(self, operations, capacity):
        cache = LRUCache(capacity, size_of=lambda v: v)
        for key, size in operations:
            cache.put(key, size)
            assert cache.used_bytes <= capacity

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=40))
    def test_get_after_put_without_eviction(self, keys):
        cache = LRUCache(10_000, size_of=lambda v: 1)
        stored = {}
        for i, key in enumerate(keys):
            cache.put(key, i)
            stored[key] = i
        for key, value in stored.items():
            assert cache.get(key) == value

    @given(st.lists(st.sampled_from("abcdef"), max_size=40))
    def test_hit_plus_miss_equals_gets(self, keys):
        cache = LRUCache(3, size_of=lambda v: 1)
        cache.put("a", 1)
        for key in keys:
            cache.get(key)
        assert cache.hits + cache.misses == len(keys)


class TestRequestQueueProperties:
    @given(st.lists(st.floats(0, 1e6), max_size=50), st.integers(1, 20))
    def test_fifo_returns_in_arrival_order(self, times, pop):
        queue = RequestQueue()
        ordered = sorted(times)
        for t in ordered:
            queue.push(t)
        popped = queue.pop_oldest(pop)
        assert list(popped) == ordered[: len(popped)]

    @given(st.lists(st.integers(1, 30), max_size=20), st.integers(1, 100))
    def test_capacity_accounting(self, batches, capacity):
        queue = RequestQueue(capacity=capacity)
        for count in batches:
            queue.push(0.0, count=count)
        assert len(queue) <= capacity
        assert queue.total_enqueued + queue.total_dropped == sum(batches)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=30), st.integers(1, 40))
    def test_waiting_times_are_non_negative_and_sorted(self, times, window):
        queue = RequestQueue()
        for t in sorted(times):
            queue.push(t)
        now = max(times)
        waits = queue.waiting_times(now, window)
        observed = waits[: min(len(times), window)]
        assert np.all(waits >= 0)
        # oldest first => non-increasing waits over the real entries
        assert np.all(np.diff(observed) <= 1e-12)


class TestSimulatorProperties:
    @given(st.lists(st.floats(0, 1000), max_size=40))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run_all()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=10))
    def test_process_clock_accumulates_delays(self, delays):
        sim = Simulator()
        seen = []

        def proc():
            for delay in delays:
                yield delay
                seen.append(sim.now)

        sim.spawn(proc())
        sim.run_all()
        np.testing.assert_allclose(seen, np.cumsum(delays))


class TestMajorityVoteProperties:
    @given(st.integers(1, 5), st.integers(1, 30), st.integers(0, 10_000))
    def test_unanimous_always_wins(self, num_models, num_examples, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 10, size=num_examples)
        votes = np.tile(labels, (num_models, 1))
        out = majority_vote(votes, rng.random(num_models))
        np.testing.assert_array_equal(out, labels)

    @given(st.integers(0, 10_000))
    def test_winner_unchanged_by_extra_agreeing_model(self, seed):
        rng = np.random.default_rng(seed)
        votes = rng.integers(0, 4, size=(3, 20))
        accuracies = rng.random(3)
        winners = majority_vote(votes, accuracies)
        # add a fourth model that votes exactly the current winner
        boosted = np.vstack([votes, winners])
        out = majority_vote(boosted, np.append(accuracies, 0.0))
        np.testing.assert_array_equal(out, winners)

    @given(st.integers(0, 10_000))
    def test_prediction_is_someones_vote(self, seed):
        rng = np.random.default_rng(seed)
        votes = rng.integers(0, 5, size=(4, 15))
        out = majority_vote(votes, rng.random(4))
        for i in range(15):
            assert out[i] in votes[:, i]


class TestHyperSpaceProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(0.1, 100)),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 10_000),
    )
    def test_samples_respect_every_domain(self, domains, seed):
        space = HyperSpace()
        for i, (low, width) in enumerate(domains):
            space.add_range_knob(f"k{i}", "float", low, low + width)
        trial = space.sample(np.random.default_rng(seed))
        for i, (low, width) in enumerate(domains):
            assert low <= trial[f"k{i}"] < low + width

    @settings(max_examples=30)
    @given(st.integers(0, 10_000))
    def test_encode_is_unit_cube(self, seed):
        space = HyperSpace()
        space.add_range_knob("a", "float", 1e-4, 10.0, log_scale=True)
        space.add_range_knob("b", "int", 1, 100)
        space.add_categorical_knob("c", "str", ["x", "y", "z"])
        point = space.encode(space.sample(np.random.default_rng(seed)))
        assert np.all(point >= 0.0) and np.all(point <= 1.0)


class TestSineArrivalProperties:
    @given(st.floats(1, 5000), st.floats(10, 2000))
    def test_rate_bounded_by_peak(self, target, period):
        arrival = SineArrival(target, period)
        for t in np.linspace(0, 2 * period, 50):
            rate = arrival.rate(t)
            assert 0.0 <= rate <= arrival.peak_rate() + 1e-9

    @given(st.floats(1, 1000), st.integers(0, 1000))
    def test_counts_are_non_negative(self, target, seed):
        arrival = SineArrival(target, 100.0, rng=np.random.default_rng(seed))
        assert all(arrival.count(t * 0.1, 0.1) >= 0 for t in range(100))

"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_image_classification
from repro.utils.rng import RngStream


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Per-test isolation for the process-wide observability globals.

    Every test gets a fresh metrics registry and tracer, and no fault
    plan installed, with the previous globals restored afterwards — so
    counters never leak between tests and a chaos test cannot poison
    its neighbours. The telemetry *clock* is deliberately left alone
    (profiler tests measure real time); use the ``manual_clock``
    fixture to pin it.
    """
    from repro import chaos, telemetry

    previous_registry = telemetry.set_registry(telemetry.MetricsRegistry())
    previous_tracer = telemetry.set_tracer(telemetry.Tracer())
    previous_plan = chaos.set_plan(None)
    yield
    chaos.set_plan(previous_plan)
    telemetry.set_tracer(previous_tracer)
    telemetry.set_registry(previous_registry)


@pytest.fixture
def manual_clock():
    """Install a :class:`~repro.telemetry.ManualClock` for the test."""
    from repro import telemetry

    clock = telemetry.ManualClock()
    previous = telemetry.set_clock(clock)
    yield clock
    telemetry.set_clock(previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def float64_engine():
    """Run the tensor engine in float64 (for numerical-gradient checks).

    Finite-difference gradients need double precision; the engine's
    float32 default is exercised by every other test.
    """
    from repro.tensor import set_default_dtype

    previous = set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


@pytest.fixture
def rng_stream() -> RngStream:
    return RngStream(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, learnable image dataset shared across tests."""
    return make_image_classification(
        name="tiny",
        num_classes=3,
        image_shape=(3, 8, 8),
        train_per_class=16,
        val_per_class=6,
        test_per_class=6,
        difficulty=0.3,
        seed=7,
    )

"""Tests for the model zoo: profiles, registry, ensemble simulator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotFoundError
from repro.zoo import (
    EnsembleAccuracyModel,
    ModelEntry,
    PROFILES,
    default_registry,
    get_profile,
    list_profiles,
    majority_vote,
)
from repro.zoo.builders import build_mlp


class TestProfiles:
    def test_figure3_has_16_models(self):
        assert len(PROFILES) == 16

    def test_paper_operating_points_inception_v3(self):
        """The quoted c(16)=0.07 s and c(64)=0.235 s (Section 7.2.1)."""
        profile = get_profile("inception_v3")
        assert profile.inference_time(16) == pytest.approx(0.070, abs=1e-9)
        assert profile.inference_time(64) == pytest.approx(0.235, abs=1e-9)
        assert profile.throughput(64) == pytest.approx(272.3, abs=0.5)

    def test_paper_ensemble_throughputs(self):
        """Max 572 and min 128 requests/s for the 3-model set."""
        names = ("inception_v3", "inception_v4", "inception_resnet_v2")
        profiles = [get_profile(n) for n in names]
        max_throughput = sum(p.throughput(64) for p in profiles)
        min_throughput = min(p.throughput(16) for p in profiles)
        assert max_throughput == pytest.approx(572, abs=2)
        assert min_throughput == pytest.approx(128, abs=1)

    def test_latency_affine_increasing(self):
        for profile in PROFILES.values():
            assert profile.inference_time(64) > profile.inference_time(16) > 0

    def test_nasnet_large_is_most_accurate(self):
        ranked = list_profiles()
        assert ranked[0].name == "nasnet_large"

    def test_family_filter(self):
        vggs = list_profiles(family="vgg")
        assert {p.name for p in vggs} == {"vgg_16", "vgg_19"}

    def test_unknown_model(self):
        with pytest.raises(ModelNotFoundError):
            get_profile("alexnet")

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            get_profile("vgg_16").inference_time(0)


class TestMajorityVote:
    def test_unanimous(self):
        votes = np.array([[1, 2], [1, 2], [1, 2]])
        out = majority_vote(votes, np.array([0.7, 0.8, 0.9]))
        np.testing.assert_array_equal(out, [1, 2])

    def test_majority_beats_best_model(self):
        votes = np.array([[1], [1], [2]])
        out = majority_vote(votes, np.array([0.1, 0.1, 0.99]))
        assert out[0] == 1

    def test_tie_resolved_by_best_model(self):
        """Two models disagreeing is always a tie -> best model wins."""
        votes = np.array([[1], [2]])
        out = majority_vote(votes, np.array([0.7, 0.8]))
        assert out[0] == 2

    def test_three_way_tie(self):
        votes = np.array([[1], [2], [3]])
        out = majority_vote(votes, np.array([0.9, 0.7, 0.8]))
        assert out[0] == 1

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            majority_vote(np.zeros(3, dtype=int), np.zeros(3))


class TestEnsembleAccuracyModel:
    @pytest.fixture(scope="class")
    def panel(self):
        return EnsembleAccuracyModel(
            ("resnet_v2_101", "inception_v3", "inception_v4", "inception_resnet_v2"),
            num_examples=20_000,
        )

    def test_marginals_match_profiles(self, panel):
        for name in panel.model_names:
            simulated = panel.marginal_accuracy(name)
            assert simulated == pytest.approx(get_profile(name).top1_accuracy, abs=0.01)

    def test_two_model_ensemble_equals_better_member(self, panel):
        """The paper's observation: {resnet_v2_101, inception_v3}
        degenerates to inception_v3 and underperforms the single best."""
        pair = panel.ensemble_accuracy(("resnet_v2_101", "inception_v3"))
        v3 = panel.marginal_accuracy("inception_v3")
        best_single = panel.marginal_accuracy("inception_resnet_v2")
        assert pair == pytest.approx(v3, abs=1e-12)
        assert pair < best_single

    def test_more_models_generally_better(self, panel):
        three = panel.ensemble_accuracy(
            ("inception_v3", "inception_v4", "inception_resnet_v2")
        )
        four = panel.ensemble_accuracy(panel.model_names)
        best_single = panel.marginal_accuracy("inception_resnet_v2")
        assert three > best_single
        assert four > three

    def test_figure6_magnitudes(self, panel):
        """3-model ~0.81-0.82, 4-model ~0.82-0.83 as in Figure 6."""
        three = panel.ensemble_accuracy(
            ("inception_v3", "inception_v4", "inception_resnet_v2")
        )
        four = panel.ensemble_accuracy(panel.model_names)
        assert 0.805 < three < 0.825
        assert 0.815 < four < 0.835

    def test_accuracy_table_covers_all_subsets(self, panel):
        assert len(panel.accuracy_table()) == 2**4 - 1

    def test_selection_forms(self, panel):
        by_name = panel.ensemble_accuracy(("inception_v3", "inception_v4"))
        by_index = panel.ensemble_accuracy([1, 2])
        by_mask = panel.ensemble_accuracy(np.array([False, True, True, False]))
        assert by_name == by_index == by_mask

    def test_empty_selection_rejected(self, panel):
        with pytest.raises(ConfigurationError):
            panel.ensemble_accuracy(())

    def test_deterministic_panel(self):
        a = EnsembleAccuracyModel(("vgg_16", "vgg_19"), num_examples=5000)
        b = EnsembleAccuracyModel(("vgg_16", "vgg_19"), num_examples=5000)
        assert a.ensemble_accuracy((0, 1)) == b.ensemble_accuracy((0, 1))


class TestRegistry:
    def test_default_tasks_match_figure2(self):
        registry = default_registry()
        assert set(registry.tasks()) == {
            "ImageClassification",
            "ObjectDetection",
            "SentimentAnalysis",
        }

    def test_select_diverse_prefers_different_families(self):
        registry = default_registry()
        for name, acc in [("vgg-mini", 0.80), ("resnet-mini", 0.79),
                          ("squeeze-mini", 0.78), ("snoek8", 0.795)]:
            registry.get("ImageClassification", name).record_performance("d", acc)
        chosen = registry.select_diverse("ImageClassification", k=3)
        families = [entry.family for entry in chosen]
        assert len(set(families)) == 3
        assert chosen[0].name == "vgg-mini"  # best first

    def test_select_diverse_tolerance_filters_weak_models(self):
        registry = default_registry()
        registry.get("ImageClassification", "vgg-mini").record_performance("d", 0.9)
        registry.get("ImageClassification", "resnet-mini").record_performance("d", 0.5)
        chosen = registry.select_diverse("ImageClassification", k=2, tolerance=0.1)
        assert [e.name for e in chosen] == ["vgg-mini"]

    def test_record_performance_keeps_best(self):
        entry = ModelEntry("m", "t", "f", build_mlp)
        entry.record_performance("d", 0.7)
        entry.record_performance("d", 0.5)
        assert entry.performance["d"] == 0.7

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ConfigurationError):
            registry.register(ModelEntry("vgg-mini", "ImageClassification", "vgg", build_mlp))

    def test_unknown_task_and_model(self):
        registry = default_registry()
        with pytest.raises(ModelNotFoundError):
            registry.models_for("Translation")
        with pytest.raises(ModelNotFoundError):
            registry.get("ImageClassification", "ghost")

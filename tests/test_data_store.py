"""Tests for the data store (HDFS substitute) and batch loader."""

import os

import numpy as np
import pytest

from repro.data import BatchLoader, DataStore, make_image_classification
from repro.exceptions import ConfigurationError, DatasetNotFoundError, StorageError


class TestDatasets:
    def test_put_get_roundtrip(self, tiny_dataset):
        store = DataStore()
        handle = store.put_dataset(tiny_dataset)
        assert handle.name == "tiny"
        assert handle.num_classes == 3
        fetched = store.get_dataset("tiny")
        np.testing.assert_array_equal(fetched.train_x, tiny_dataset.train_x)

    def test_missing_dataset_raises(self):
        with pytest.raises(DatasetNotFoundError):
            DataStore().get_dataset("nope")

    def test_list_and_delete(self, tiny_dataset):
        store = DataStore()
        store.put_dataset(tiny_dataset)
        assert store.list_datasets() == ["tiny"]
        store.delete_dataset("tiny")
        assert store.list_datasets() == []
        with pytest.raises(DatasetNotFoundError):
            store.delete_dataset("tiny")

    def test_io_accounting(self, tiny_dataset):
        store = DataStore()
        store.put_dataset(tiny_dataset)
        written = store.bytes_written
        assert written > 0
        store.get_dataset("tiny")
        assert store.bytes_read > 0


class TestImportImages:
    def _make_folder(self, tmp_path, labels=("noodle", "rice"), per_label=6,
                     shape=(3, 4, 4)):
        rng = np.random.default_rng(0)
        for label in labels:
            folder = tmp_path / label
            folder.mkdir()
            for i in range(per_label):
                np.save(folder / f"img{i}.npy", rng.normal(size=shape))
        return str(tmp_path)

    def test_labels_from_subfolders(self, tmp_path):
        directory = self._make_folder(tmp_path)
        store = DataStore()
        handle = store.import_images(directory, val_fraction=0.25)
        assert handle.labels == ("noodle", "rice")
        assert handle.num_examples == 12
        ds = store.get_dataset(handle.name)
        assert ds.num_classes == 2
        assert ds.train_x.shape[0] + ds.val_x.shape[0] == 12

    def test_split_fractions(self, tmp_path):
        directory = self._make_folder(tmp_path, per_label=10)
        store = DataStore()
        handle = store.import_images(directory, val_fraction=0.2, test_fraction=0.1)
        ds = store.get_dataset(handle.name)
        assert ds.val_x.shape[0] == 4
        assert ds.test_x.shape[0] == 2
        assert ds.train_x.shape[0] == 14

    def test_rejects_missing_directory(self):
        with pytest.raises(StorageError, match="not a directory"):
            DataStore().import_images("/definitely/not/here")

    def test_rejects_empty_directory(self, tmp_path):
        with pytest.raises(StorageError, match="no label sub-folders"):
            DataStore().import_images(str(tmp_path))

    def test_rejects_inconsistent_shapes(self, tmp_path):
        folder = tmp_path / "a"
        folder.mkdir()
        np.save(folder / "x.npy", np.zeros((3, 4, 4)))
        np.save(folder / "y.npy", np.zeros((3, 5, 5)))
        with pytest.raises(StorageError, match="inconsistent"):
            DataStore().import_images(str(tmp_path))

    def test_rejects_bad_dimensionality(self, tmp_path):
        folder = tmp_path / "a"
        folder.mkdir()
        np.save(folder / "x.npy", np.zeros((4, 4)))
        with pytest.raises(StorageError, match="CHW"):
            DataStore().import_images(str(tmp_path))

    def test_rejects_all_validation_split(self, tmp_path):
        directory = self._make_folder(tmp_path, per_label=2)
        with pytest.raises(StorageError, match="no training data"):
            DataStore().import_images(directory, val_fraction=1.0)


class TestBlobs:
    def test_roundtrip(self):
        store = DataStore()
        store.put_blob("params/a", b"hello")
        assert store.get_blob("params/a") == b"hello"

    def test_list_by_prefix(self):
        store = DataStore()
        store.put_blob("params/a", b"1")
        store.put_blob("params/b", b"2")
        store.put_blob("other/c", b"3")
        assert store.list_blobs("params/") == ["params/a", "params/b"]

    def test_delete(self):
        store = DataStore()
        store.put_blob("x", b"1")
        store.delete_blob("x")
        assert not store.has_blob("x")
        with pytest.raises(DatasetNotFoundError):
            store.get_blob("x")


class TestBlobRegressions:
    """Gaps the flat-namespace store had before the BlockStore re-base."""

    def test_overwrite_keeps_old_version_reachable(self):
        # Regression: a name collision used to silently destroy the old
        # blob. Now every overwrite appends a manifest version.
        store = DataStore()
        store.put_blob("model/ckpt", b"old weights")
        store.put_blob("model/ckpt", b"new weights")
        assert store.get_blob("model/ckpt") == b"new weights"
        assert store.get_blob("model/ckpt", version=1) == b"old weights"
        assert [m.version for m in store.versions("model/ckpt")] == [1, 2]

    def test_versions_of_missing_path_raises(self):
        with pytest.raises(DatasetNotFoundError):
            DataStore().versions("ghost")

    def test_concurrent_writers_last_writer_wins(self):
        # Two interleaved two-phase writes must each commit a complete
        # manifest — never a mixture of the writers' chunk lists.
        store = DataStore(chunk_size=4)
        first = store.fs.begin_write("p", b"AAAABBBBCCCC", writer="w1")
        second = store.fs.begin_write("p", b"XXXXYYYYZZZZ", writer="w2")
        store.fs.commit(first)
        store.fs.commit(second)
        assert store.get_blob("p") == b"XXXXYYYYZZZZ"
        assert store.get_blob("p", version=1) == b"AAAABBBBCCCC"

    def test_get_of_path_deleted_mid_read_raises_not_found(self):
        # A reader must see NotFound, never a partial blob.
        from repro.exceptions import NotFoundError

        store = DataStore(chunk_size=4)
        store.put_blob("p", b"AAAABBBBCCCCDDDD")
        reader = store.fs.read_chunks("p")
        assert next(reader) == b"AAAA"
        store.delete_blob("p")
        with pytest.raises(NotFoundError):
            next(reader)
        # And the plain get after deletion maps to the dataset error.
        with pytest.raises(DatasetNotFoundError):
            store.get_blob("p")

    def test_blob_accounting_still_counts_logical_bytes(self):
        store = DataStore()
        store.put_blob("a", b"12345678")
        assert store.bytes_written >= 8
        store.get_blob("a")
        assert store.bytes_read >= 8


class TestBatchLoader:
    def test_covers_all_examples(self, rng):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        loader = BatchLoader(x, y, batch_size=3, rng=rng)
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen) == list(range(10))

    def test_len(self, rng):
        loader = BatchLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3)
        assert len(loader) == 4
        loader = BatchLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3, drop_last=True)
        assert len(loader) == 3

    def test_drop_last(self, rng):
        loader = BatchLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3,
                             drop_last=True, shuffle=False)
        batches = [b for b, _ in loader]
        assert all(b.shape[0] == 3 for b in batches)
        assert len(batches) == 3

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        loader = BatchLoader(x, np.arange(6), batch_size=2, shuffle=False)
        first_batch, first_labels = next(iter(loader))
        np.testing.assert_array_equal(first_labels, [0, 1])

    def test_reshuffles_per_epoch(self):
        loader = BatchLoader(np.zeros((50, 1)), np.arange(50), batch_size=50,
                             rng=np.random.default_rng(0))
        _, first = next(iter(loader))
        _, second = next(iter(loader))
        assert not np.array_equal(first, second)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchLoader(np.zeros((3, 1)), np.zeros(4), batch_size=2)


class TestExportImages:
    def test_roundtrip_through_filesystem(self, tiny_dataset, tmp_path):
        store = DataStore()
        store.put_dataset(tiny_dataset, labels=("noodle", "rice", "salad"))
        written = store.export_images("tiny", str(tmp_path / "out"))
        assert written == len(tiny_dataset)

        other = DataStore()
        handle = other.import_images(str(tmp_path / "out"), val_fraction=0.25)
        assert handle.labels == ("noodle", "rice", "salad")
        assert handle.num_examples == len(tiny_dataset)
        # per-class counts survive the roundtrip
        reimported = other.get_dataset(handle.name)
        all_labels = np.concatenate(
            [reimported.train_y, reimported.val_y, reimported.test_y]
        )
        original = np.concatenate(
            [tiny_dataset.train_y, tiny_dataset.val_y, tiny_dataset.test_y]
        )
        np.testing.assert_array_equal(
            np.bincount(all_labels, minlength=3), np.bincount(original, minlength=3)
        )

    def test_export_without_label_names_uses_class_ids(self, tiny_dataset, tmp_path):
        store = DataStore()
        store.put_dataset(tiny_dataset)
        store.export_images("tiny", str(tmp_path / "out"))
        import os

        assert sorted(os.listdir(tmp_path / "out")) == ["class0", "class1", "class2"]

    def test_export_unknown_dataset(self, tmp_path):
        with pytest.raises(DatasetNotFoundError):
            DataStore().export_images("ghost", str(tmp_path))

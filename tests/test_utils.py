"""Tests for repro.utils: RNG streams and validation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.utils import (
    RngStream,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    derive_rng,
    spawn_rng,
)


class TestDeriveRng:
    def test_same_name_same_stream(self):
        a = derive_rng(42, "x")
        b = derive_rng(42, "x")
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = derive_rng(42, "x")
        b = derive_rng(42, "y")
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert a.random() != b.random()

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_deterministic_for_any_seed_and_name(self, seed, name):
        assert derive_rng(seed, name).random() == derive_rng(seed, name).random()

    def test_spawn_rng_independent(self):
        parent = derive_rng(0, "p")
        child = spawn_rng(parent)
        assert child.random() != parent.random()


class TestRngStream:
    def test_get_returns_same_generator(self):
        stream = RngStream(7)
        assert stream.get("a") is stream.get("a")

    def test_fresh_restarts_state(self):
        stream = RngStream(7)
        first = stream.get("a").random()
        assert stream.fresh("a").random() == pytest.approx(first)

    def test_streams_isolated(self):
        stream = RngStream(7)
        before = stream.get("a").random()
        stream.get("b").random()  # consuming b must not perturb a's sequence
        again = RngStream(7)
        again.get("a").random()
        assert again.get("a").random() != before or True  # sequence continues
        # the real isolation check: a's second draw matches a fresh replay
        replay = RngStream(7).get("a")
        replay.random()
        assert stream.get("a").random() == replay.random()


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_check_probability_accepts_unit_interval(self, p):
        assert check_probability("p", p) == p

    def test_check_probability_rejects(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_check_in(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"
        with pytest.raises(ConfigurationError, match="mode"):
            check_in("mode", "c", ["a", "b"])

    def test_check_type(self):
        assert check_type("n", 3, int) == 3
        with pytest.raises(ConfigurationError, match="must be of type int"):
            check_type("n", "3", int)

    def test_check_type_tuple(self):
        assert check_type("n", 3.0, (int, float)) == 3.0

"""Tests for Algorithm 3 (greedy batching)."""

import pytest

from repro.core.serve import GreedyBatcher, RequestQueue
from repro.exceptions import ConfigurationError
from repro.zoo import get_profile


def make_batcher(tau=0.56, backoff=None):
    profile = get_profile("inception_v3")
    return GreedyBatcher(
        batch_sizes=(16, 32, 48, 64), latency=profile.inference_time,
        tau=tau, backoff=backoff,
    )


def queue_with(arrivals):
    queue = RequestQueue()
    for t in arrivals:
        queue.push(t)
    return queue


class TestConstruction:
    def test_requires_latency_model(self):
        with pytest.raises(ConfigurationError):
            GreedyBatcher(latency=None)

    def test_default_backoff_is_tenth_of_tau(self):
        batcher = make_batcher(tau=1.0)
        assert batcher.backoff == pytest.approx(0.1)

    def test_batch_sizes_sorted_deduped(self):
        batcher = GreedyBatcher(batch_sizes=(64, 16, 16, 32), latency=lambda b: 0.1)
        assert batcher.batch_sizes == (16, 32, 64)


class TestDecide:
    def test_empty_queue_waits(self):
        decision = make_batcher().decide(RequestQueue(), now=0.0)
        assert not decision.dispatch

    def test_full_batch_dispatches_immediately(self):
        queue = queue_with([0.0] * 70)
        decision = make_batcher().decide(queue, now=0.0)
        assert decision.dispatch
        assert decision.batch_size == 64
        assert decision.take == 64

    def test_partial_batch_waits_until_deadline(self):
        queue = queue_with([0.0] * 32)
        batcher = make_batcher(tau=0.56)
        early = batcher.decide(queue, now=0.01)
        assert not early.dispatch
        # c(32) ~ 0.125; trigger when 0.125 + w + 0.056 >= 0.56 -> w ~ 0.38
        late = batcher.decide(queue, now=0.40)
        assert late.dispatch
        assert late.batch_size == 32

    def test_fit_batch_picks_largest_that_fits(self):
        batcher = make_batcher()
        assert batcher.fit_batch(70) == 64
        assert batcher.fit_batch(63) == 48
        assert batcher.fit_batch(16) == 16
        assert batcher.fit_batch(15) is None

    def test_leftover_requests_wait_until_overdue(self):
        """Queues shorter than min(B) have no valid batch (Algorithm 3
        line 7); they are served - already late - after tau."""
        queue = queue_with([0.0] * 10)
        batcher = make_batcher(tau=0.56)
        assert not batcher.decide(queue, now=0.5).dispatch
        decision = batcher.decide(queue, now=0.57)
        assert decision.dispatch
        assert decision.batch_size == 16  # padded batch
        assert decision.take == 10

    def test_backoff_dispatches_earlier(self):
        queue = queue_with([0.0] * 32)
        eager = make_batcher(backoff=0.3)
        lazy = make_batcher(backoff=0.0)
        now = 0.2
        assert eager.decide(queue, now).dispatch
        assert not lazy.decide(queue, now).dispatch


class TestNextDeadline:
    def test_empty_queue_none(self):
        assert make_batcher().next_deadline(RequestQueue(), 0.0) is None

    def test_deadline_matches_decide_boundary(self):
        queue = queue_with([0.0] * 32)
        batcher = make_batcher()
        wake = batcher.next_deadline(queue, now=0.0)
        assert not batcher.decide(queue, now=wake - 1e-6).dispatch
        assert batcher.decide(queue, now=wake + 1e-9).dispatch

    def test_leftover_deadline_is_tau(self):
        queue = queue_with([2.0] * 5)
        batcher = make_batcher(tau=0.56)
        assert batcher.next_deadline(queue, now=2.0) == pytest.approx(2.56)

    def test_deadline_never_in_past(self):
        queue = queue_with([0.0] * 32)
        assert make_batcher().next_deadline(queue, now=100.0) == 100.0

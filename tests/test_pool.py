"""Persistent trial pool: lifecycle, crash recovery, shm hygiene.

The determinism contract (pool report == sequential report, bit for
bit) is covered in ``test_parallel_study.py`` for both parallel
backends; this module exercises what is new in the pool subsystem —
reuse across studies, worker-crash resubmission without duplicate
epochs, dead-worker replacement, and shared-memory segment cleanup on
every exit path.
"""

from __future__ import annotations

import itertools
import os

import numpy as np
import pytest

import repro.core.tune.trial as trial_module
from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.core.tune import (
    HyperConf,
    PoolTrialExecutor,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    TrialPool,
    make_workers,
    run_study,
    run_study_parallel,
)
from repro.core.tune.hyperspace import HyperSpace
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer
from repro.utils.shm import SHM_DIR, ShmArena
from repro.zoo.builders import build_mlp


def tiny_space() -> HyperSpace:
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.2, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.9)
    return space


def make_study(tiny_dataset, seed: int = 3, max_trials: int = 4, max_epochs: int = 2):
    trial_module._trial_ids = itertools.count(1)
    conf = HyperConf(
        max_trials=max_trials, max_epochs_per_trial=max_epochs,
        early_stop_patience=2, delta=0.005,
    )
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(tiny_space(), rng=np.random.default_rng(seed))
    master = StudyMaster("pool", conf, advisor, param_server)
    backend = RealTrainer(
        tiny_dataset, build_mlp, batch_size=16, use_augmentation=False, seed=11
    )
    workers = make_workers(master, backend, param_server, conf, num_workers=2)
    return master, workers


def report_fingerprint(report):
    return [
        (e.index, round(e.performance, 10), e.epochs, e.total_epochs,
         round(e.best_so_far, 10), e.time, e.init_kind)
        for e in report.history
    ]


def leaked_segments(prefix: str) -> list[str]:
    if not os.path.isdir(SHM_DIR):
        return []
    return [e for e in os.listdir(SHM_DIR) if e.startswith(prefix)]


# ----------------------------------------------------------------------
# ShmArena
# ----------------------------------------------------------------------


class TestShmArena:
    def test_share_view_roundtrip(self, rng):
        array = rng.standard_normal((32, 7)).astype(np.float32)
        with ShmArena() as arena:
            tensor = arena.share(array)
            view = arena.view(tensor)
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable  # zero-copy views are read-only
            assert tensor.nbytes == array.nbytes
            assert tensor.exists()

    def test_release_unlinks_owned_segment(self, rng):
        arena = ShmArena()
        tensor = arena.share(rng.standard_normal(128))
        assert tensor.exists()
        arena.release(tensor)
        assert not tensor.exists()
        assert arena.live_segments == 0
        arena.close()

    def test_publish_adopt_transfers_ownership(self, rng):
        array = rng.standard_normal((8, 8))
        producer = ShmArena()
        consumer = ShmArena(prefix=producer.prefix)
        tensor = producer.publish(array)
        assert tensor.exists()  # alive with no local mapping on either side
        adopted = consumer.adopt(tensor)
        np.testing.assert_array_equal(adopted, array)
        consumer.release(tensor)
        assert not tensor.exists()  # the adopter unlinks
        producer.close()
        consumer.close()

    def test_sweep_collects_orphans(self, rng):
        arena = ShmArena()
        orphan = arena.publish(rng.standard_normal(64))  # nobody adopts
        assert orphan.exists()
        assert arena.sweep() == 1
        assert not orphan.exists()
        assert leaked_segments(arena.prefix) == []
        arena.close()

    def test_close_unlinks_everything(self, rng):
        arena = ShmArena()
        tensors = [arena.share(rng.standard_normal(16)) for _ in range(3)]
        arena.close()
        assert all(not t.exists() for t in tensors)
        assert leaked_segments(arena.prefix) == []


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------


class TestPoolLifecycle:
    def test_reuse_across_studies_matches_fresh_pools(self, tiny_dataset):
        master, workers = make_study(tiny_dataset)
        sequential = report_fingerprint(run_study(master, workers))

        with TrialPool(processes=2) as pool:
            master, workers = make_study(tiny_dataset)
            first = run_study_parallel(master, workers, pool=pool)
            master, workers = make_study(tiny_dataset)
            second = run_study_parallel(master, workers, pool=pool)

        master, workers = make_study(tiny_dataset)
        fresh = run_study_parallel(master, workers, processes=2)

        assert report_fingerprint(first) == sequential
        assert report_fingerprint(second) == sequential
        assert report_fingerprint(fresh) == sequential

    def test_shutdown_is_idempotent(self, tiny_dataset):
        pool = TrialPool(processes=1)
        master, workers = make_study(tiny_dataset, max_trials=2)
        run_study_parallel(master, workers, pool=pool)
        pool.shutdown()
        pool.shutdown()
        assert not pool.running

    def test_invalid_backend_rejected(self, tiny_dataset):
        master, workers = make_study(tiny_dataset, max_trials=2)
        with pytest.raises(ConfigurationError):
            run_study_parallel(master, workers, processes=1, backend="threads")

    def test_executor_requires_real_trainer(self):
        with pytest.raises(ConfigurationError):
            PoolTrialExecutor(object(), HyperConf())


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_injected_crash_resubmits_without_duplicate_epochs(self, tiny_dataset):
        """A seeded ``tune.pool.trial`` fault kills a trial mid-flight in
        the worker; the pool re-issues it and discards the replayed
        epochs, so the report still matches the sequential run exactly."""
        master, workers = make_study(tiny_dataset)
        sequential = report_fingerprint(run_study(master, workers))

        plan = FaultPlan(
            [FaultRule("tune.pool.trial", FaultKind.EXCEPTION,
                       after=1, max_faults=1)],
            seed=0,
        )
        master, workers = make_study(tiny_dataset)
        with chaos.active(plan):
            report = run_study_parallel(master, workers, processes=2)

        assert report_fingerprint(report) == sequential
        errors = telemetry.get_registry().counter(
            "repro_tune_pool_trial_errors_total",
            "Worker-side trial failures, by outcome.",
        )
        assert errors.value(outcome="resubmitted") >= 1
        assert errors.value(outcome="raised") == 0

    def test_dead_worker_replaced_and_trial_reissued(self, tiny_dataset):
        """Hard-killing a pool process must not lose the study: the pool
        reaps the corpse, spawns a replacement, and the queued/claimed
        work lands on it."""
        master, workers = make_study(tiny_dataset)
        sequential = report_fingerprint(run_study(master, workers))

        master, workers = make_study(tiny_dataset)
        with TrialPool(processes=1) as pool:
            victim = next(iter(pool._procs.values()))
            victim.kill()
            victim.join(timeout=10.0)
            report = run_study_parallel(master, workers, pool=pool)
            assert pool.worker_restarts >= 1
        assert report_fingerprint(report) == sequential
        restarts = telemetry.get_registry().counter(
            "repro_tune_pool_worker_restarts_total",
            "Pool workers found dead and replaced.",
        )
        assert restarts.value() >= 1

    def test_second_crash_of_same_trial_keeps_cumulative_skip(self, tiny_dataset):
        """Two crashes of the *same* trial: the replay skip count must
        cover every epoch the session has consumed since submission,
        not just those since the previous crash — including a crash
        that lands while an earlier replay is still being skipped —
        or duplicate epochs silently corrupt the study."""
        master, workers = make_study(tiny_dataset, max_epochs=5)
        sequential = report_fingerprint(run_study(master, workers))

        # fires 1-2 pass, fires 3-4 fault: the first crash interrupts
        # trial 1 mid-stream, the second kills its replay immediately.
        plan = FaultPlan(
            [FaultRule("tune.pool.trial", FaultKind.EXCEPTION,
                       after=2, max_faults=2)],
            seed=0,
        )
        master, workers = make_study(tiny_dataset, max_epochs=5)
        with chaos.active(plan), TrialPool(processes=1, epoch_batch=1) as pool:
            report = run_study_parallel(master, workers, pool=pool)

        assert report_fingerprint(report) == sequential
        errors = telemetry.get_registry().counter(
            "repro_tune_pool_trial_errors_total",
            "Worker-side trial failures, by outcome.",
        )
        assert errors.value(outcome="resubmitted") >= 2
        assert errors.value(outcome="raised") == 0

    def test_crash_on_warm_started_trial_recovers(self, tiny_dataset):
        """A crashed warm-started trial is re-dispatched with the same
        init-state handles; materialising them in the first worker must
        not unlink the parent-owned segments, or the replacement run
        dies on attach and the whole study aborts."""
        from repro.core.tune.trial import Trial

        conf = HyperConf(max_trials=1, max_epochs_per_trial=3, delta=0.005)

        def backend():
            return RealTrainer(
                tiny_dataset, build_mlp, batch_size=16,
                use_augmentation=False, seed=11,
            )

        params = {"lr": 0.05, "momentum": 0.5}
        trial_module._trial_ids = itertools.count(1)
        probe = backend().start(Trial(params=params), None)
        probe.run_epoch()
        init_state = probe.state_dict()
        # big enough to travel as shm handles, the case under test
        assert any(a.nbytes >= 4096 for a in init_state.values())

        trial_module._trial_ids = itertools.count(1)
        reference = backend().start(Trial(params=params), init_state)
        expected = [reference.run_epoch() for _ in range(3)]

        plan = FaultPlan(
            [FaultRule("tune.pool.trial", FaultKind.EXCEPTION,
                       after=1, max_faults=1)],
            seed=0,
        )
        trial_module._trial_ids = itertools.count(1)
        pool = TrialPool(processes=1)
        prefix = pool.arena.prefix
        with chaos.active(plan), pool:
            executor = pool.executor(backend(), conf)
            session = executor.start(Trial(params=params), init_state)
            observed = [session.run_epoch() for _ in range(3)]
            executor.finish_study()
        assert observed == expected
        assert leaked_segments(prefix) == []

    def test_exhausted_retries_surface_the_failure(self, tiny_dataset):
        plan = FaultPlan(
            [FaultRule("tune.pool.trial", FaultKind.EXCEPTION)], seed=0
        )
        master, workers = make_study(tiny_dataset, max_trials=1)
        with chaos.active(plan):
            with pytest.raises(RuntimeError, match="failed in worker"):
                run_study_parallel(master, workers, processes=1)


# ----------------------------------------------------------------------
# shared-memory hygiene
# ----------------------------------------------------------------------


class TestShmHygiene:
    def test_clean_shutdown_leaves_no_segments(self, tiny_dataset):
        pool = TrialPool(processes=2)
        prefix = pool.arena.prefix
        master, workers = make_study(tiny_dataset)
        with pool:
            run_study_parallel(master, workers, pool=pool)
            assert leaked_segments(prefix)  # dataset lives in shm mid-study
        assert leaked_segments(prefix) == []

    def test_crashy_study_leaves_no_segments(self, tiny_dataset):
        plan = FaultPlan(
            [FaultRule("tune.pool.trial", FaultKind.EXCEPTION,
                       after=1, max_faults=1)],
            seed=0,
        )
        pool = TrialPool(processes=2)
        prefix = pool.arena.prefix
        master, workers = make_study(tiny_dataset)
        with pool, chaos.active(plan):
            run_study_parallel(master, workers, pool=pool)
        assert leaked_segments(prefix) == []

    def test_shutdown_sweeps_dead_worker_segments(self, tiny_dataset):
        """A segment published by a worker that died before the parent
        adopted it is collected by the shutdown sweep."""
        from multiprocessing import shared_memory

        pool = TrialPool(processes=1)
        pool.start()
        stray_name = f"{pool.arena.prefix}-dead-0"
        stray = shared_memory.SharedMemory(create=True, name=stray_name, size=64)
        stray.close()
        assert leaked_segments(pool.arena.prefix)
        pool.shutdown()
        assert leaked_segments(pool.arena.prefix) == []

"""The headline chaos acceptance tests: seeded end-to-end scenarios.

One scenario run injects exceptions, drops and latency across tuning,
the parameter server, serving and the gateway; the systems must recover
(right answers, no lost work) AND the recovery trace — the fault log
plus every retry/circuit/recovery counter — must be bit-identical
across two runs with the same seed.
"""

import json

import pytest

from repro.chaos.scenarios import (
    TRACE_METRIC_PREFIXES,
    build_default_plan,
    run_chaos_scenario,
)
from repro.cli import main

pytestmark = pytest.mark.chaos

# the scenario is ~2s of work; compute each seed's outcome once
_SEED0_RUNS = {}


def scenario(seed=0, run=0):
    key = (seed, run)
    if key not in _SEED0_RUNS:
        _SEED0_RUNS[key] = run_chaos_scenario(seed=seed)
    return _SEED0_RUNS[key]


class TestScenarioCoverage:
    def test_injects_three_fault_kinds_across_three_subsystems(self):
        out = scenario()
        assert out["faults_injected"] >= 3
        assert set(out["kinds_hit"]) == {"exception", "drop", "latency"}
        subsystems = {point.split(".")[0] for point in out["points_hit"]}
        assert len(subsystems) >= 3
        assert {"tune", "paramserver", "serve"} <= subsystems

    def test_tune_phase_recovers_and_completes(self):
        tune = scenario()["results"]["tune"]
        assert tune["trials"] >= 16
        assert tune["best_performance"] > 0.5
        assert tune["recoveries"] > 0
        assert tune["reissued"] > 0

    def test_serve_phase_conserves_requests(self):
        serve = scenario()["results"]["serve"]
        assert serve["requeued"] > 0
        assert serve["dropped"] == 0
        assert serve["served"] == serve["arrived"]
        assert serve["slo_fraction"] >= 0.95

    def test_facade_degrades_and_heals(self):
        facade = scenario()["results"]["facade"]
        # mid-outage queries see 5xx from the gateway (breaker open /
        # replicas dead), then the ensemble heals after the recovery
        # window and queries succeed again
        assert 503 in facade["statuses"] or 504 in facade["statuses"]
        assert facade["statuses"][0] == 200
        assert facade["statuses"][-1] == 200
        assert facade["live_after_recovery"] >= facade["live_during_outage"]
        assert facade["breaker_state"] == "closed"

    def test_trace_covers_retries_circuits_and_recoveries(self):
        counters = scenario()["trace"]["counters"]
        prefixes_seen = {
            prefix
            for prefix in TRACE_METRIC_PREFIXES
            for name in counters
            if name.startswith(prefix)
        }
        assert "repro_chaos_" in prefixes_seen
        assert "repro_retry_" in prefixes_seen
        assert "repro_circuit_" in prefixes_seen


class TestScenarioDeterminism:
    def test_same_seed_traces_are_identical(self):
        first, second = scenario(0, run=0), scenario(0, run=1)
        assert first["trace"]["faults"] == second["trace"]["faults"]
        assert first["trace"]["counters"] == second["trace"]["counters"]
        assert first["results"] == second["results"]

    def test_different_seed_traces_differ(self):
        assert scenario(0)["trace"] != scenario(7)["trace"]

    def test_trace_is_json_serialisable(self):
        out = scenario()
        assert json.loads(json.dumps(out["trace"])) == out["trace"]


class TestDefaultPlan:
    def test_plan_covers_required_points_and_kinds(self):
        plan = build_default_plan(seed=0, flaky_model="resnet-mini")
        points = {rule.point for rule in plan.rules}
        assert {"tune.trial", "paramserver.push", "serve.dispatch",
                "serve.model.resnet-mini", "gateway.dispatch"} <= points
        kinds = {rule.kind.value for rule in plan.rules}
        assert kinds == {"exception", "drop", "latency"}


class TestCliSmoke:
    def test_chaos_command_runs(self, capsys):
        assert main(["chaos", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "tune:" in out and "serve:" in out and "facade:" in out

    def test_chaos_command_verify_passes(self, capsys):
        assert main(["chaos", "--seed", "0", "--verify"]) == 0
        assert "identical across two same-seed runs" in capsys.readouterr().out

    def test_chaos_command_json_output(self, capsys):
        assert main(["chaos", "--seed", "0", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["seed"] == 0
        assert out["faults_injected"] >= 3
        assert set(out["results"]) == {"tune", "serve", "facade"}

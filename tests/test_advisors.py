"""Tests for the trial advisors: random, grid, GP/Bayesian."""

import numpy as np
import pytest

from repro.core.tune import (
    BayesianAdvisor,
    GridSearchAdvisor,
    HyperSpace,
    RandomSearchAdvisor,
    Trial,
    TrialResult,
)
from repro.core.tune.advisors.gp import GaussianProcess, expected_improvement
from repro.exceptions import ConfigurationError


def space_1d() -> HyperSpace:
    space = HyperSpace()
    space.add_range_knob("x", "float", 0.0, 1.0)
    return space


def result(params, performance, worker="w") -> TrialResult:
    return TrialResult(trial=Trial(params=params), performance=performance,
                       epochs=1, worker=worker)


class TestBaseBookkeeping:
    def test_best_tracking(self):
        advisor = RandomSearchAdvisor(space_1d())
        advisor.collect(result({"x": 0.1}, 0.5, "w1"))
        advisor.collect(result({"x": 0.2}, 0.8, "w2"))
        advisor.collect(result({"x": 0.3}, 0.6, "w1"))
        assert advisor.best_performance == 0.8
        assert advisor.is_best("w2")
        assert not advisor.is_best("w1")
        assert advisor.best_trial().performance == 0.8

    def test_empty_best(self):
        advisor = RandomSearchAdvisor(space_1d())
        assert advisor.best_trial() is None
        assert advisor.best_performance == 0.0


class TestRandomSearch:
    def test_proposals_in_domain(self):
        advisor = RandomSearchAdvisor(space_1d(), rng=np.random.default_rng(0))
        for _ in range(50):
            trial = advisor.next("w")
            assert 0.0 <= trial["x"] < 1.0

    def test_max_proposals(self):
        advisor = RandomSearchAdvisor(space_1d(), max_proposals=3)
        assert all(advisor.next("w") is not None for _ in range(3))
        assert advisor.next("w") is None

    def test_deterministic_with_seeded_rng(self):
        a = RandomSearchAdvisor(space_1d(), rng=np.random.default_rng(5))
        b = RandomSearchAdvisor(space_1d(), rng=np.random.default_rng(5))
        assert a.next("w") == b.next("w")


class TestGridSearch:
    def test_exhausts_grid(self):
        space = HyperSpace()
        space.add_categorical_knob("a", "str", ["x", "y"])
        space.add_categorical_knob("b", "str", ["1", "2", "3"])
        advisor = GridSearchAdvisor(space)
        assert advisor.grid_size == 6
        proposals = [advisor.next("w") for _ in range(6)]
        assert advisor.next("w") is None
        assert len({tuple(sorted(p.items())) for p in proposals}) == 6


class TestGaussianProcess:
    def test_interpolates_observations(self):
        x = np.array([[0.0], [0.5], [1.0]])
        y = np.array([0.0, 1.0, 0.0])
        gp = GaussianProcess(noise_var=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess().fit(np.array([[0.5]]), np.array([1.0]))
        _, std_near = gp.predict(np.array([[0.5]]))
        _, std_far = gp.predict(np.array([[0.0]]))
        assert std_far[0] > std_near[0]

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().predict(np.array([[0.0]]))

    def test_mismatched_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(2))

    def test_expected_improvement_prefers_high_mean(self):
        mean = np.array([0.5, 0.9])
        std = np.array([0.1, 0.1])
        ei = expected_improvement(mean, std, best=0.6)
        assert ei[1] > ei[0]

    def test_expected_improvement_prefers_uncertainty(self):
        mean = np.array([0.5, 0.5])
        std = np.array([0.01, 0.5])
        ei = expected_improvement(mean, std, best=0.6)
        assert ei[1] > ei[0]


class TestBayesianAdvisor:
    def _run(self, advisor, objective, iterations=30):
        for _ in range(iterations):
            params = advisor.next("w")
            advisor.collect(result(params, objective(params["x"])))
        return advisor

    def test_locates_smooth_optimum(self):
        def objective(x):
            return -((x - 0.73) ** 2)

        bayes = self._run(
            BayesianAdvisor(space_1d(), rng=np.random.default_rng(0), warmup=5),
            objective,
        )
        best_x = bayes.best_trial().trial.params["x"]
        assert abs(best_x - 0.73) < 0.05
        assert bayes.best_performance > -1e-3

    def test_beats_random_on_average_in_3d(self):
        """In higher dimensions random search lags BO clearly."""
        space = HyperSpace()
        for name in ("x", "y", "z"):
            space.add_range_knob(name, "float", 0.0, 1.0)

        def objective(params):
            return -sum((params[k] - 0.6) ** 2 for k in ("x", "y", "z"))

        bayes_scores, random_scores = [], []
        for seed in range(3):
            bayes = BayesianAdvisor(space, rng=np.random.default_rng(seed), warmup=6)
            random = RandomSearchAdvisor(space, rng=np.random.default_rng(seed))
            for advisor, scores in ((bayes, bayes_scores), (random, random_scores)):
                for _ in range(25):
                    params = advisor.next("w")
                    advisor.collect(result(params, objective(params)))
                scores.append(advisor.best_performance)
        assert np.mean(bayes_scores) > np.mean(random_scores)

    def test_warmup_proposals_are_random(self):
        advisor = BayesianAdvisor(space_1d(), rng=np.random.default_rng(0), warmup=4)
        # no observations: the first proposals must not crash the GP
        assert all(advisor.next("w") is not None for _ in range(4))

    def test_max_proposals(self):
        advisor = BayesianAdvisor(space_1d(), max_proposals=2)
        advisor.next("w")
        advisor.next("w")
        assert advisor.next("w") is None


class TestConstantLiar:
    def test_concurrent_proposals_spread_out(self):
        """With pending trials, the liar pushes new proposals away."""
        space = space_1d()
        advisor = BayesianAdvisor(space, rng=np.random.default_rng(0), warmup=4,
                                  constant_liar=True)
        # bootstrap the posterior
        for x in (0.1, 0.4, 0.6, 0.9):
            advisor.collect(result({"x": x}, -((x - 0.7) ** 2)))
        first = advisor.next("w1")["x"]
        second = advisor.next("w2")["x"]
        third = advisor.next("w3")["x"]
        values = [first, second, third]
        spread = max(values) - min(values)
        assert spread > 0.01  # not three near-identical points

    def test_without_liar_pending_is_ignored(self):
        advisor = BayesianAdvisor(space_1d(), rng=np.random.default_rng(0),
                                  warmup=2, constant_liar=False)
        advisor.collect(result({"x": 0.2}, 0.1))
        advisor.collect(result({"x": 0.8}, 0.5))
        a = advisor.next("w1")["x"]
        b = advisor.next("w2")["x"]
        # pure EI re-proposes (nearly) the same argmax given the same pool rng?
        # the candidate pools differ per call, so just check both are valid.
        assert 0.0 <= a < 1.0 and 0.0 <= b < 1.0

    def test_pending_retired_on_collect(self):
        advisor = BayesianAdvisor(space_1d(), rng=np.random.default_rng(0), warmup=2)
        advisor.collect(result({"x": 0.2}, 0.1))
        advisor.collect(result({"x": 0.8}, 0.5))
        proposal = advisor.next("w1")
        assert len(advisor._pending) == 1
        advisor.collect(result(proposal, 0.3))
        assert len(advisor._pending) == 0

"""Cross-module integration tests.

These exercise the full stack: cluster-hosted tuning with failure
injection, the unified train-then-deploy flow over the gateway, and the
Section 8 food-logging case study end to end.
"""

import numpy as np
import pytest

import repro as rafiki
from repro.api.sdk import connect
from repro.cluster import ClusterManager, Node
from repro.cluster.node import Resources
from repro.core.system import Rafiki
from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    section71_space,
)
from repro.core.tune.distributed import run_cluster_study
from repro.data import make_image_classification
from repro.paramserver import ParameterServer
from repro.sqlext import Column, Database, make_inference_udf


def small_cluster(nodes=3):
    manager = ClusterManager()
    for i in range(nodes):
        manager.add_node(Node(f"n{i}", capacity=Resources(cpus=8, gpus=3, memory_gb=64)))
    return manager


class TestClusterStudy:
    def _run(self, num_workers, failure_plan=None, max_trials=20, seed=0):
        manager = small_cluster()
        ps = ParameterServer()
        conf = HyperConf(max_trials=max_trials, max_epochs_per_trial=20)
        advisor = RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed))
        master = StudyMaster("cs", conf, advisor, ps)
        report = run_cluster_study(
            manager, master, SurrogateTrainer(seed=seed), ps, conf,
            num_workers=num_workers, failure_plan=failure_plan,
        )
        return manager, report

    def test_completes_on_cluster(self):
        manager, report = self._run(num_workers=3)
        assert len(report.results) >= 20
        assert report.wall_time > 0

    def test_more_workers_finish_faster(self):
        _, slow = self._run(num_workers=1)
        _, fast = self._run(num_workers=4)
        assert fast.wall_time < slow.wall_time
        # near-linear: 4 workers should be at least 2.5x faster
        assert slow.wall_time / fast.wall_time > 2.5

    def test_survives_node_failure(self):
        """A node dies mid-study; replacements finish the trial budget."""
        manager, report = self._run(
            num_workers=3, failure_plan=[(200.0, "n0", None)], max_trials=15
        )
        assert len(report.results) >= 15
        assert manager.recoveries > 0

    def test_costudy_on_cluster_checkpoints_master(self):
        manager = small_cluster()
        ps = ParameterServer()
        conf = HyperConf(max_trials=10, max_epochs_per_trial=20)
        advisor = RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(1))
        master = CoStudyMaster("co", conf, advisor, ps, rng=np.random.default_rng(2))
        run_cluster_study(manager, master, SurrogateTrainer(seed=1), ps, conf,
                          num_workers=2)
        assert manager.checkpoints.has("co")
        restored = manager.checkpoints.restore("co")
        assert restored["num_finished"] == master.num_finished


class TestFoodLoggingCaseStudy:
    """The Section 8 scenario, end to end, with real NumPy models."""

    @pytest.fixture(scope="class")
    def deployment(self):
        system = Rafiki(seed=9)
        gateway = connect(system)
        dataset = make_image_classification(
            name="food", num_classes=3, image_shape=(3, 8, 8),
            train_per_class=20, val_per_class=8, test_per_class=10,
            difficulty=0.3, seed=9,
        )
        name = rafiki.import_images(dataset)
        hyper = rafiki.HyperConf(max_trials=3, max_epochs_per_trial=5)
        job_id = rafiki.Train(
            name="food-train", data=name, task="ImageClassification",
            input_shape=(3, 8, 8), output_shape=(3,), hyper=hyper,
        ).run()
        models = rafiki.get_models(job_id)
        infer_id = rafiki.Inference(models).run()
        return system, gateway, dataset, infer_id

    def test_sql_udf_predicate_pushdown(self, deployment):
        system, gateway, dataset, infer_id = deployment
        db = Database()
        db.create_table(
            "foodlog",
            [Column("user_id", "integer"), Column("age", "integer", not_null=True),
             Column("image_path", "text", not_null=True)],
            primary_key=("user_id",),
        )
        images = {}
        for i in range(10):
            images[f"img{i}.npy"] = dataset.test_x[i]
            db.insert("foodlog", user_id=i, age=20 + 5 * i, image_path=f"img{i}.npy")
        labels = ("noodle", "rice", "salad")
        db.udfs.register("food_name", make_inference_udf(gateway, infer_id, images, labels))
        result = db.execute(
            "SELECT food_name(image_path) AS name, count(*) FROM foodlog "
            "WHERE age > 52 GROUP BY name"
        )
        # rows with age > 52: users 7, 8, 9 -> exactly 3 inference calls
        assert result.udf_calls == 3
        assert sum(count for _, count in result.rows) == 3
        assert all(label in labels for label, _ in result.rows)

    def test_retraining_does_not_change_sql(self, deployment):
        """Re-deploying a model only swaps the job id behind the UDF."""
        system, gateway, dataset, _ = deployment
        job_id = rafiki.Train(
            name="food-train-2", data="food", task="ImageClassification",
            hyper=rafiki.HyperConf(max_trials=2, max_epochs_per_trial=3),
        ).run()
        new_infer = rafiki.Inference(rafiki.get_models(job_id)).run()
        db = Database()
        db.create_table("t", [Column("p", "text")])
        db.insert("t", p="x.npy")
        db.udfs.register(
            "food_name",
            make_inference_udf(gateway, new_infer, {"x.npy": dataset.test_x[0]},
                               ("noodle", "rice", "salad")),
        )
        sql = "SELECT food_name(p) AS name, count(*) FROM t GROUP BY name"
        result = db.execute(sql)  # identical SQL, new deployment
        assert len(result.rows) == 1

    def test_mobile_app_style_query(self, deployment):
        """RESTful query path with a JSON image payload (Figure 2)."""
        system, gateway, dataset, infer_id = deployment
        response = gateway.handle(
            "POST", f"/query/{infer_id}", {"img": dataset.test_x[1].tolist()}
        )
        assert response.ok
        assert response.body["label"] in (0, 1, 2)

    def test_deployed_ensemble_beats_chance(self, deployment):
        system, gateway, dataset, infer_id = deployment
        result = system.query(infer_id, dataset.test_x)
        predictions = np.array(result["label"])
        accuracy = float(np.mean(predictions == dataset.test_y))
        assert accuracy > 0.5  # 3 classes, chance = 0.33


class TestUnifiedArchitectureProperties:
    def test_instant_deployment_after_training(self):
        """The parameter server bridges training and inference with no
        export step: get_models -> Inference uses the same keys."""
        system = Rafiki(seed=4)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=10, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=4,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        )
        cache_hits_before = system.param_server.cache.hits
        specs = system.get_models(job_id)
        system.create_inference_job(specs)
        # deployment read parameters straight from the (hot) cache
        assert system.param_server.cache.hits > cache_hits_before

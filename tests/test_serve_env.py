"""Tests for the serving environment, controllers and metrics."""

import numpy as np
import pytest

from repro.core.serve import (
    DEFAULT_BATCH_SIZES,
    EnsembleScorer,
    GreedyAsyncController,
    GreedySingleController,
    GreedySyncController,
    RLController,
    ServingEnv,
    ServingMetrics,
    SineArrival,
    batch_reward,
    count_overdue,
    mean_exceeding_time,
)
from repro.core.serve.metrics import DispatchRecord
from repro.exceptions import ConfigurationError
from repro.zoo import get_profile

TAU = 0.56
NAMES = ("inception_v3", "inception_v4", "inception_resnet_v2")


@pytest.fixture(scope="module")
def scorer():
    return EnsembleScorer(NAMES)


def single_env(controller_kind="greedy", target=200.0, seed=0, **env_kwargs):
    profile = get_profile("inception_v3")
    arrival = SineArrival(target, period=200.0, rng=np.random.default_rng(seed))
    if controller_kind == "greedy":
        controller = GreedySingleController(profile, DEFAULT_BATCH_SIZES, TAU)
    else:
        controller = RLController([profile], DEFAULT_BATCH_SIZES, TAU, seed=seed)
    return ServingEnv([profile], controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                      **env_kwargs)


class TestRewardHelpers:
    def test_count_overdue(self):
        assert count_overdue(np.array([0.1, 0.6, 0.7]), tau=0.5) == 2

    def test_batch_reward_equation7(self):
        assert batch_reward(0.8, served=10, overdue=2, beta=1.0) == pytest.approx(6.4)
        assert batch_reward(0.8, served=10, overdue=2, beta=0.0) == pytest.approx(8.0)

    def test_mean_exceeding_time(self):
        latencies = np.array([0.4, 0.7, 1.0])
        assert mean_exceeding_time(latencies, tau=0.5) == pytest.approx((0.2 + 0.5) / 3)
        assert mean_exceeding_time(np.array([]), 0.5) == 0.0


class TestConservation:
    def test_all_arrivals_eventually_served(self):
        env = single_env("greedy", target=200.0)
        metrics = env.run(horizon=60.0)
        assert metrics.total_arrived > 0
        assert metrics.total_served == metrics.total_arrived - len(env.queue)
        # after the drain slack, nearly everything is served
        assert len(env.queue) < 16

    def test_dropped_requests_counted(self):
        env = single_env("greedy", target=500.0, queue_capacity=100)
        metrics = env.run(horizon=30.0)
        assert metrics.dropped > 0
        assert metrics.total_served + metrics.dropped + len(env.queue) == (
            metrics.total_arrived + metrics.dropped
        )


class TestSingleModelServing:
    def test_greedy_under_capacity_meets_slo(self):
        # inception_v3 serves ~270 req/s at b=64; 150 req/s is easy
        env = single_env("greedy", target=150.0)
        metrics = env.run(horizon=100.0)
        assert metrics.overdue_fraction() < 0.1

    def test_over_capacity_creates_overdue(self):
        env = single_env("greedy", target=400.0)
        metrics = env.run(horizon=100.0)
        assert metrics.overdue_fraction() > 0.2

    def test_latency_accounting(self):
        env = single_env("greedy", target=100.0)
        metrics = env.run(horizon=50.0)
        for record in metrics.dispatches:
            assert record.served > 0
            assert 0 <= record.overdue <= record.served
            assert record.batch_size in DEFAULT_BATCH_SIZES

    def test_rl_controller_runs_and_learns(self):
        env = single_env("rl", target=150.0)
        metrics = env.run(horizon=150.0)
        controller = env.controller
        assert controller.learner.updates > 0
        assert metrics.total_served > 0


class TestMultiModelServing:
    def _multi_env(self, kind, target, scorer, seed=0, **kwargs):
        profiles = [get_profile(n) for n in NAMES]
        arrival = SineArrival(target, period=200.0, rng=np.random.default_rng(seed))
        if kind == "sync":
            controller = GreedySyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
        elif kind == "async":
            controller = GreedyAsyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
        else:
            controller = RLController(profiles, DEFAULT_BATCH_SIZES, TAU, seed=seed)
        return ServingEnv(profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                          scorer=scorer, **kwargs)

    def test_sync_controller_always_full_ensemble(self, scorer):
        env = self._multi_env("sync", 100.0, scorer)
        metrics = env.run(horizon=60.0)
        assert all(len(d.subset) == 3 for d in metrics.dispatches)
        assert metrics.mean_accuracy() == pytest.approx(scorer.full_ensemble, abs=1e-6)

    def test_async_controller_single_models(self, scorer):
        env = self._multi_env("async", 300.0, scorer)
        metrics = env.run(horizon=60.0)
        assert all(len(d.subset) == 1 for d in metrics.dispatches)
        models_used = {d.subset[0] for d in metrics.dispatches}
        assert len(models_used) == 3  # round-robin touches every model

    def test_multi_model_requires_scorer(self):
        profiles = [get_profile(n) for n in NAMES]
        arrival = SineArrival(100.0, period=200.0)
        controller = GreedySyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
        with pytest.raises(ConfigurationError, match="EnsembleScorer"):
            ServingEnv(profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES)

    def test_rl_dispatches_have_valid_subsets(self, scorer):
        env = self._multi_env("rl", 120.0, scorer)
        metrics = env.run(horizon=80.0)
        for record in metrics.dispatches:
            assert 1 <= len(record.subset) <= 3
            assert record.accuracy == pytest.approx(scorer.accuracy(record.subset))

    def test_reward_shaping_validated(self, scorer):
        profiles = [get_profile(n) for n in NAMES]
        arrival = SineArrival(100.0, period=200.0)
        controller = GreedySyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
        with pytest.raises(ConfigurationError, match="reward_shaping"):
            ServingEnv(profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                       scorer=scorer, reward_shaping="nonsense")


class TestMetrics:
    def _record(self, time, served=10, overdue=2, subset=(0,), accuracy=0.8):
        return DispatchRecord(time=time, served=served, overdue=overdue,
                              batch_size=16, subset=subset, accuracy=accuracy,
                              reward=0.0, exceeding_time_sum=0.5)

    def test_aggregates(self):
        metrics = ServingMetrics()
        metrics.record_arrivals(0.0, 30)
        metrics.record_dispatch(self._record(1.0))
        metrics.record_dispatch(self._record(2.0, served=20, overdue=0, accuracy=0.9))
        assert metrics.total_arrived == 30
        assert metrics.total_served == 30
        assert metrics.total_overdue == 2
        assert metrics.overdue_fraction() == pytest.approx(2 / 30)
        expected_acc = (10 * 0.8 + 20 * 0.9) / 30
        assert metrics.mean_accuracy() == pytest.approx(expected_acc)

    def test_since_filter(self):
        metrics = ServingMetrics()
        metrics.record_dispatch(self._record(1.0, accuracy=0.5))
        metrics.record_dispatch(self._record(10.0, accuracy=0.9))
        assert metrics.mean_accuracy(since=5.0) == pytest.approx(0.9)

    def test_timeline_buckets(self):
        metrics = ServingMetrics()
        metrics.record_arrivals(0.5, 10)
        metrics.record_arrivals(1.5, 20)
        metrics.record_dispatch(self._record(0.7, served=10, subset=(0, 1)))
        rows = metrics.timeline(bucket=1.0, start=0.0, end=2.0)
        assert len(rows) == 2
        assert rows[0].arrival_rate == pytest.approx(10.0)
        assert rows[0].serve_rate == pytest.approx(10.0)
        assert rows[0].mean_models == pytest.approx(2.0)
        assert rows[1].arrival_rate == pytest.approx(20.0)
        assert rows[1].serve_rate == 0.0

    def test_empty_timeline(self):
        rows = ServingMetrics().timeline(bucket=1.0, start=0.0, end=3.0)
        assert len(rows) == 3
        assert all(r.accuracy == 0.0 for r in rows)

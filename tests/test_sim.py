"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim import Signal, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run_all()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, order.append, tag)
        sim.run_all()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run_all()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run(until=3.0)
        assert fired == []
        assert sim.now == 3.0
        sim.run(until=6.0)
        assert fired == [1]

    def test_run_until_advances_clock_past_last_event(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=10.0) == 10.0

    def test_max_events_budget(self):
        sim = Simulator()
        count = []
        for _ in range(5):
            sim.schedule(1.0, count.append, 1)
        sim.run(max_events=3)
        assert len(count) == 3

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def chain(depth):
            times.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run_all()
        assert times == [0.0, 1.0, 2.0, 3.0]


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.5
            trace.append(sim.now)
            yield 1.5
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run_all()
        assert trace == [0.0, 2.5, 4.0]

    def test_process_waits_on_signal(self):
        sim = Simulator()
        signal = Signal("go")
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        sim.spawn(waiter())
        sim.schedule(3.0, signal.fire, "payload")
        sim.run_all()
        assert got == [(3.0, "payload")]

    def test_signal_wakes_all_waiters(self):
        sim = Simulator()
        signal = Signal()
        woken = []

        def waiter(tag):
            yield signal
            woken.append(tag)

        for tag in ("a", "b"):
            sim.spawn(waiter(tag))
        sim.schedule(1.0, signal.fire)
        sim.run_all()
        assert sorted(woken) == ["a", "b"]

    def test_signal_fire_returns_waiter_count(self):
        sim = Simulator()
        signal = Signal()
        sim.spawn(iter(x for x in [signal]))  # one waiter
        sim.run(until=0.0)
        assert signal.fire() == 1
        assert signal.fire() == 0

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(ConfigurationError, match="delay"):
            sim.run_all()

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def ticker(name, step):
            for _ in range(3):
                yield step
                trace.append((sim.now, name))

        sim.spawn(ticker("fast", 1.0))
        sim.spawn(ticker("slow", 2.0))
        sim.run_all()
        # At the t=2.0 tie, "slow"'s resume event was scheduled first
        # (at t=0) so FIFO tie-breaking runs it before "fast"'s.
        assert trace == [
            (1.0, "fast"),
            (2.0, "slow"),
            (2.0, "fast"),
            (3.0, "fast"),
            (4.0, "slow"),
            (6.0, "slow"),
        ]

"""Training-loop tests: networks actually learn."""

import numpy as np

from repro.tensor import SGD, Network, SoftmaxCrossEntropy, evaluate, train_epoch
from repro.zoo.builders import build_mlp, build_resnet_mini, build_snoek_convnet


class TestTrainEpoch:
    def test_loss_decreases_on_separable_data(self, rng):
        net = build_mlp((4,), 2, rng, hidden=(16,))
        x = np.vstack([rng.normal(-1, 0.3, size=(40, 4)), rng.normal(1, 0.3, size=(40, 4))])
        y = np.array([0] * 40 + [1] * 40)
        loss = SoftmaxCrossEntropy()
        opt = SGD(lr=0.1, momentum=0.9)
        first = train_epoch(net, loss, opt, x, y, batch_size=16, rng=rng)
        for _ in range(15):
            last = train_epoch(net, loss, opt, x, y, batch_size=16, rng=rng)
        assert last < first
        assert evaluate(net, x, y) > 0.95

    def test_convnet_learns_synthetic_images(self, rng, tiny_dataset):
        net = build_snoek_convnet(
            tiny_dataset.image_shape, tiny_dataset.num_classes, rng,
            width=4, dropout=0.0, init_std=0.2,
        )
        loss = SoftmaxCrossEntropy()
        opt = SGD(lr=0.05, momentum=0.9)
        for _ in range(8):
            train_epoch(
                net, loss, opt, tiny_dataset.train_x, tiny_dataset.train_y,
                batch_size=16, rng=rng,
            )
        assert evaluate(net, tiny_dataset.val_x, tiny_dataset.val_y) > 0.6

    def test_batchnorm_convnet_trains(self, rng, tiny_dataset):
        net = build_resnet_mini(
            tiny_dataset.image_shape, tiny_dataset.num_classes, rng, width=4
        )
        loss = SoftmaxCrossEntropy()
        opt = SGD(lr=0.05, momentum=0.9)
        first = train_epoch(
            net, loss, opt, tiny_dataset.train_x, tiny_dataset.train_y,
            batch_size=16, rng=rng,
        )
        for _ in range(6):
            last = train_epoch(
                net, loss, opt, tiny_dataset.train_x, tiny_dataset.train_y,
                batch_size=16, rng=rng,
            )
        assert last < first

    def test_augment_hook_called(self, rng):
        net = build_mlp((2, 4, 4), 2, rng, hidden=(8,))
        calls = []

        def augment(batch, batch_rng):
            calls.append(batch.shape[0])
            return batch

        x = rng.normal(size=(10, 2, 4, 4))
        y = rng.integers(0, 2, size=10)
        train_epoch(net, SoftmaxCrossEntropy(), SGD(lr=0.01), x, y,
                    batch_size=4, rng=rng, augment=augment)
        assert sum(calls) == 10

    def test_evaluate_on_known_labels(self, rng):
        net = build_mlp((4,), 2, rng, hidden=(4,))
        x = rng.normal(size=(10, 4))
        predicted = net.predict_labels(x)
        assert evaluate(net, x, predicted) == 1.0

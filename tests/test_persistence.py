"""Tests for study-report persistence."""

import numpy as np
import pytest

from repro.core.tune import (
    HyperConf,
    RandomSearchAdvisor,
    CoStudyMaster,
    SurrogateTrainer,
    load_report,
    make_workers,
    report_from_dict,
    report_to_dict,
    run_study,
    save_report,
    section71_space,
)
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer


@pytest.fixture(scope="module")
def report():
    conf = HyperConf(max_trials=8, max_epochs_per_trial=10)
    ps = ParameterServer()
    master = CoStudyMaster(
        "persist", conf, RandomSearchAdvisor(section71_space(),
                                             rng=np.random.default_rng(1)), ps,
        rng=np.random.default_rng(2),
    )
    workers = make_workers(master, SurrogateTrainer(seed=1), ps, conf, 2)
    return run_study(master, workers)


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.study_name == report.study_name
        assert rebuilt.total_epochs == report.total_epochs
        assert rebuilt.wall_time == report.wall_time
        assert len(rebuilt.results) == len(report.results)
        for a, b in zip(rebuilt.results, report.results):
            assert a.performance == b.performance
            assert a.trial.params == b.trial.params
            assert a.trial.init_kind == b.trial.init_kind
        assert rebuilt.best_performance == report.best_performance
        assert rebuilt.best_so_far_curve() == report.best_so_far_curve()

    def test_file_roundtrip(self, report, tmp_path):
        path = tmp_path / "nested" / "report.json"
        save_report(report, str(path))
        rebuilt = load_report(str(path))
        assert rebuilt.best_performance == report.best_performance
        assert len(rebuilt.history) == len(report.history)

    def test_json_is_plain_text(self, report, tmp_path):
        import json

        path = tmp_path / "report.json"
        save_report(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["study_name"] == "persist"

    def test_unknown_version_rejected(self, report):
        payload = report_to_dict(report)
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            report_from_dict(payload)

"""Tests for the successive-halving extension."""

import numpy as np
import pytest

from repro.core.tune import (
    HalvingMaster,
    SuccessiveHalvingAdvisor,
    SurrogateTrainer,
    halving_conf,
    make_workers,
    run_study,
    section71_space,
)
from repro.core.tune.trial import InitKind
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer


def run_halving(initial_trials=8, initial_epochs=2, eta=2, max_rungs=3,
                num_workers=3, seed=0):
    advisor = SuccessiveHalvingAdvisor(
        section71_space(), initial_trials=initial_trials,
        initial_epochs=initial_epochs, eta=eta, max_rungs=max_rungs,
        rng=np.random.default_rng(seed), checkpoint_prefix="sh",
    )
    conf = halving_conf(advisor)
    ps = ParameterServer()
    master = HalvingMaster("sh", conf, advisor, ps)
    workers = make_workers(master, SurrogateTrainer(seed=seed), ps, conf, num_workers)
    report = run_study(master, workers)
    return advisor, report, ps


class TestAdvisor:
    def test_rung_budgets_grow_by_eta(self):
        advisor = SuccessiveHalvingAdvisor(section71_space(), initial_trials=4,
                                           initial_epochs=3, eta=2)
        assert advisor._rung_budget(0) == 3
        assert advisor._rung_budget(1) == 6
        assert advisor._rung_budget(2) == 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SuccessiveHalvingAdvisor(section71_space(), initial_trials=1, eta=2)
        with pytest.raises(ConfigurationError):
            SuccessiveHalvingAdvisor(section71_space(), eta=1)


class TestHalvingStudy:
    def test_trial_counts_match_the_schedule(self):
        advisor, report, _ = run_halving(initial_trials=8, eta=2, max_rungs=3)
        # 8 + 4 + 2 = 14 trials in total
        assert len(report.results) == 14

    def test_budgets_are_exact_per_rung(self):
        advisor, report, _ = run_halving(initial_trials=8, initial_epochs=2,
                                         eta=2, max_rungs=3)
        epochs = sorted(r.epochs for r in report.results)
        assert epochs.count(2) == 8
        assert epochs.count(4) == 4
        assert epochs.count(8) == 2

    def test_survivors_warm_start_from_their_own_checkpoints(self):
        advisor, report, ps = run_halving()
        continuations = [
            r for r in report.results if r.trial.init_kind is InitKind.WARM_START
        ]
        assert continuations
        for result in continuations:
            assert result.trial.init_key.startswith("sh/trial/")
            assert ps.has(result.trial.init_key)

    def test_later_rungs_score_higher(self):
        """Halving spends its budget on the best configurations."""
        advisor, report, _ = run_halving(initial_trials=16, max_rungs=3, seed=2)
        rung0 = [r.performance for r in report.results if r.epochs == 2]
        final = [r.performance for r in report.results if r.epochs == 8]
        assert np.mean(final) > np.mean(rung0)
        assert max(final) == pytest.approx(report.best_performance, abs=1e-9)

    def test_single_worker_also_completes(self):
        _, report, _ = run_halving(num_workers=1)
        assert len(report.results) == 14

    def test_more_workers_than_rung_width(self):
        """Workers park at the rung barrier and resume afterwards."""
        _, report, _ = run_halving(initial_trials=4, max_rungs=3, num_workers=6)
        assert len(report.results) == 4 + 2 + 1

"""Tests for the Study / CoStudy masters and the worker protocol."""

import numpy as np
import pytest

from repro.cluster.message import Message, MessageType
from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    InitKind,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    make_workers,
    run_study,
    section71_space,
)
from repro.paramserver import ParameterServer


def build_study(kind="study", max_trials=10, num_workers=2, seed=0, **conf_kwargs):
    space = section71_space()
    conf = HyperConf(max_trials=max_trials, max_epochs_per_trial=20, **conf_kwargs)
    ps = ParameterServer()
    advisor = RandomSearchAdvisor(space, rng=np.random.default_rng(seed))
    backend = SurrogateTrainer(seed=seed)
    if kind == "study":
        master = StudyMaster("s", conf, advisor, ps)
    else:
        master = CoStudyMaster("s", conf, advisor, ps, rng=np.random.default_rng(seed))
    workers = make_workers(master, backend, ps, conf, num_workers)
    return master, workers, ps


class TestStudy:
    def test_runs_to_completion(self):
        master, workers, _ = build_study(max_trials=10)
        report = run_study(master, workers)
        assert master.done
        assert len(report.results) >= 10
        assert all(worker.terminated for worker in workers)

    def test_best_params_stored_in_parameter_server(self):
        master, workers, ps = build_study(max_trials=8)
        report = run_study(master, workers)
        assert ps.has("s/best")
        stored_perf = ps.get_entry("s/best").performance
        assert stored_perf == pytest.approx(report.best_performance, abs=0.05)

    def test_history_monotone_best(self):
        master, workers, _ = build_study(max_trials=12)
        report = run_study(master, workers)
        bests = [entry.best_so_far for entry in report.history]
        assert bests == sorted(bests)

    def test_total_epochs_accumulate(self):
        master, workers, _ = build_study(max_trials=6)
        report = run_study(master, workers)
        assert report.total_epochs == sum(r.epochs for r in report.results)
        assert report.history[-1].total_epochs == report.total_epochs

    def test_wall_time_positive_and_scales(self):
        m1, w1, _ = build_study(max_trials=10, num_workers=1)
        r1 = run_study(m1, w1)
        m4, w4, _ = build_study(max_trials=10, num_workers=4)
        r4 = run_study(m4, w4)
        assert r1.wall_time > 0
        # 4 workers finish the same trial budget much faster
        assert r4.wall_time < r1.wall_time

    def test_trials_are_randomly_initialised(self):
        master, workers, _ = build_study(max_trials=6)
        report = run_study(master, workers)
        assert all(r.trial.init_kind is InitKind.RANDOM for r in report.results)

    def test_max_total_epochs_stops_early(self):
        master, workers, _ = build_study(max_trials=500, max_total_epochs=60)
        report = run_study(master, workers)
        assert report.total_epochs >= 60
        assert len(report.results) < 500

    def test_unknown_message_ignored(self):
        master, _, _ = build_study()
        master.mailbox.send(Message(MessageType.PUT, "w"))
        assert master.step() == []


class TestCoStudy:
    def test_warm_starts_dominate_after_alpha_decay(self):
        master, workers, _ = build_study(
            "costudy", max_trials=40, alpha0=0.5, alpha_decay=0.7, alpha_min=0.05
        )
        run_study(master, workers)
        assert master.warm_inits > master.random_inits

    def test_first_trials_random_before_checkpoint_exists(self):
        master, workers, _ = build_study(
            "costudy", max_trials=5, alpha0=0.0, alpha_min=0.0
        )
        # alpha0=0 forces warm starts, but without a checkpoint the
        # master must still fall back to random initialisation.
        report = run_study(master, workers)
        assert report.results[0].trial.init_kind is InitKind.RANDOM

    def test_checkpoint_ratchets_upward(self):
        master, workers, ps = build_study("costudy", max_trials=30, delta=0.005)
        run_study(master, workers)
        assert ps.has("s/best")
        versions = ps.versions("s/best")
        assert versions >= 2  # re-checkpointed as performance improved
        performances = [
            ps.get_entry("s/best", v).performance for v in range(1, versions + 1)
        ]
        assert performances == sorted(performances)

    def test_costudy_uses_fewer_epochs_than_study(self):
        """Warm starting converges faster (Figure 8c's x-axis)."""
        study_master, study_workers, _ = build_study("study", max_trials=30)
        study_report = run_study(study_master, study_workers)
        co_master, co_workers, _ = build_study("costudy", max_trials=30)
        co_report = run_study(co_master, co_workers)
        assert co_report.total_epochs < study_report.total_epochs

    def test_costudy_mean_performance_higher(self):
        """Figure 8b: CoStudy's trials are denser in the top region."""
        _, study_workers, _ = (None, None, None)
        study_master, study_workers, _ = build_study("study", max_trials=40, seed=3)
        study_report = run_study(study_master, study_workers)
        co_master, co_workers, _ = build_study("costudy", max_trials=40, seed=3)
        co_report = run_study(co_master, co_workers)
        study_mean = np.mean([r.performance for r in study_report.results])
        co_mean = np.mean([r.performance for r in co_report.results])
        assert co_mean > study_mean

    def test_master_state_checkpoint_roundtrip(self):
        master, workers, _ = build_study("costudy", max_trials=10)
        run_study(master, workers)
        state = master.checkpoint_state()
        fresh_master, _, _ = build_study("costudy", max_trials=10)
        fresh_master.restore_state(state)
        assert fresh_master.num_finished == master.num_finished
        assert fresh_master.best_p == master.best_p

    def test_master_side_early_stopping_sends_stop(self):
        """CoStudy masters stop plateaued workers (Algorithm 2 line 11)."""
        master, workers, _ = build_study(
            "costudy", max_trials=6, early_stop_patience=2
        )
        report = run_study(master, workers)
        # with centralised stopping, trials end well before the 20-epoch cap
        assert any(r.epochs < 20 for r in report.results)


class TestRealTrainerKnobs:
    def test_lr_decay_knob_builds_schedule(self, tiny_dataset):
        from repro.core.tune import RealTrainer, Trial
        from repro.tensor.optimizers import ExponentialDecaySchedule
        from repro.zoo.builders import build_vgg_mini

        backend = RealTrainer(tiny_dataset, build_vgg_mini, batch_size=16,
                              use_augmentation=False)
        session = backend.start(
            Trial(params={"lr": 0.1, "lr_decay": 0.99, "momentum": 0.9,
                          "weight_decay": 1e-4}),
            None,
        )
        assert isinstance(session.optimizer.schedule, ExponentialDecaySchedule)
        assert session.optimizer.schedule.decay == 0.99

    def test_plain_lr_stays_constant(self, tiny_dataset):
        from repro.core.tune import RealTrainer, Trial
        from repro.tensor.optimizers import ConstantSchedule
        from repro.zoo.builders import build_vgg_mini

        backend = RealTrainer(tiny_dataset, build_vgg_mini, batch_size=16,
                              use_augmentation=False)
        session = backend.start(Trial(params={"lr": 0.05}), None)
        assert isinstance(session.optimizer.schedule, ConstantSchedule)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.trials == 60
        assert args.advisor == "random"
        assert not args.collaborative

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet_v1" in out
        assert "nasnet_large" in out

    def test_ensemble(self, capsys):
        assert main(["ensemble", "--examples", "4000"]) == 0
        out = capsys.readouterr().out
        assert "inception_resnet_v2" in out
        assert out.count("\n") >= 16  # 15 subsets + header

    def test_tune_study(self, capsys):
        assert main(["tune", "--trials", "6", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Study with random search" in out
        assert "best accuracy" in out

    def test_tune_costudy_bayesian(self, capsys):
        assert main([
            "tune", "--trials", "6", "--advisor", "bayesian", "--collaborative",
        ]) == 0
        assert "CoStudy with bayesian" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--classes", "2", "--trials", "2"]) == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_sql(self, capsys):
        assert main(["sql"]) == 0
        out = capsys.readouterr().out
        assert "GROUP BY" in out
        assert "UDF calls" in out

    def test_telemetry_snapshot_covers_every_subsystem(self, capsys):
        import json

        assert main(["telemetry"]) == 0
        snap = json.loads(capsys.readouterr().out)
        names = " ".join(
            list(snap["counters"]) + list(snap["gauges"]) + list(snap["histograms"])
        )
        for prefix in ("repro_tune_", "repro_serve_", "repro_paramserver_",
                       "repro_cluster_", "repro_gateway_"):
            assert prefix in names, f"snapshot missing {prefix} metrics"

    def test_telemetry_prometheus_format(self, capsys):
        assert main(["telemetry", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_gateway_requests_total counter" in out
        assert 'le="+Inf"' in out

    def test_tune_with_telemetry_flag(self, capsys):
        assert main(["tune", "--trials", "4", "--workers", "2", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "best accuracy" in out
        assert "repro_tune_trials_started_total" in out

"""Golden tests for the fast im2col/col2im paths.

The production implementations (``sliding_window_view`` gather, flat
``np.bincount`` scatter-add) are checked element-for-element against a
deliberately naive triple-loop reference, across asymmetric kernels,
strides > 1, zero padding and odd image shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.im2col import (
    COL2IM_BINCOUNT_MAX_SLAB,
    col2im,
    col2im_auto,
    col2im_bincount,
    conv_output_size,
    im2col,
)


def naive_im2col(x, kernel_h, kernel_w, stride, pad):
    """Reference gather: loops only, laid out like the fast path
    (rows ordered (c, kh, kw); columns position-major, image-minor)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    cols = np.empty((c * kernel_h * kernel_w, out_h * out_w * n), dtype=x.dtype)
    for ci in range(c):
        for ki in range(kernel_h):
            for kj in range(kernel_w):
                row = (ci * kernel_h + ki) * kernel_w + kj
                for oh in range(out_h):
                    for ow in range(out_w):
                        for ni in range(n):
                            col = (oh * out_w + ow) * n + ni
                            cols[row, col] = padded[
                                ni, ci, oh * stride + ki, ow * stride + kj
                            ]
    return cols


def naive_col2im(cols, x_shape, kernel_h, kernel_w, stride, pad):
    """Reference scatter-add: the exact adjoint of :func:`naive_im2col`."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ci in range(c):
        for ki in range(kernel_h):
            for kj in range(kernel_w):
                row = (ci * kernel_h + ki) * kernel_w + kj
                for oh in range(out_h):
                    for ow in range(out_w):
                        for ni in range(n):
                            col = (oh * out_w + ow) * n + ni
                            padded[ni, ci, oh * stride + ki, ow * stride + kj] += cols[
                                row, col
                            ]
    return padded[:, :, pad : h + pad, pad : w + pad]


# (n, c, h, w, kh, kw, stride, pad) — asymmetric kernels, stride > 1,
# pad = 0 and odd shapes are all represented.
CONFIGS = [
    (2, 3, 5, 5, 3, 3, 1, 1),
    (1, 2, 7, 5, 3, 2, 1, 0),  # asymmetric kernel, odd/uneven image
    (2, 1, 9, 9, 2, 4, 1, 2),  # asymmetric kernel, fat padding
    (3, 2, 8, 8, 3, 3, 2, 1),  # stride 2
    (1, 3, 11, 7, 5, 3, 2, 0),  # stride 2, pad 0, odd shape
    (2, 2, 6, 6, 2, 2, 2, 0),  # exact tiling (overlap-free)
    (1, 1, 5, 5, 1, 1, 1, 0),  # pointwise
    (2, 2, 4, 6, 4, 6, 1, 0),  # kernel == image
    (1, 2, 10, 10, 3, 3, 3, 1),  # stride 3
]


@pytest.mark.parametrize("n,c,h,w,kh,kw,stride,pad", CONFIGS)
class TestAgainstNaiveReference:
    def test_im2col_matches(self, rng, n, c, h, w, kh, kw, stride, pad):
        x = rng.standard_normal((n, c, h, w)).astype(np.float32)
        np.testing.assert_array_equal(
            im2col(x, kh, kw, stride, pad), naive_im2col(x, kh, kw, stride, pad)
        )

    @pytest.mark.parametrize("scatter", [col2im, col2im_bincount, col2im_auto])
    def test_col2im_matches(self, rng, scatter, n, c, h, w, kh, kw, stride, pad):
        out_h = conv_output_size(h, kh, stride, pad)
        out_w = conv_output_size(w, kw, stride, pad)
        cols = rng.standard_normal((c * kh * kw, out_h * out_w * n)).astype(np.float32)
        np.testing.assert_allclose(
            scatter(cols, (n, c, h, w), kh, kw, stride, pad),
            naive_col2im(cols, (n, c, h, w), kh, kw, stride, pad),
            rtol=1e-6,
            atol=1e-6,
        )

    def test_roundtrip_multiplicity(self, rng, n, c, h, w, kh, kw, stride, pad):
        """col2im(im2col(x)) == multiplicity * x, where the per-pixel
        multiplicity is how many receptive fields cover that pixel
        (col2im(im2col(ones)))."""
        x = rng.standard_normal((n, c, h, w))
        ones = np.ones_like(x)
        multiplicity = col2im(
            im2col(ones, kh, kw, stride, pad), ones.shape, kh, kw, stride, pad
        )
        roundtrip = col2im(im2col(x, kh, kw, stride, pad), x.shape, kh, kw, stride, pad)
        np.testing.assert_allclose(roundtrip, multiplicity * x, rtol=1e-10)


class TestOverlapFree:
    @pytest.mark.parametrize(
        "n,c,h,w,kh,kw",
        [(2, 2, 6, 6, 2, 2), (1, 3, 9, 6, 3, 3), (2, 1, 8, 4, 4, 4)],
    )
    def test_roundtrip_is_identity(self, rng, n, c, h, w, kh, kw):
        """stride == kernel (square) and exact tiling: every pixel is
        gathered exactly once, so the roundtrip reproduces x."""
        x = rng.standard_normal((n, c, h, w))
        cols = im2col(x, kh, kw, kh, 0)
        np.testing.assert_array_equal(col2im(cols, x.shape, kh, kw, kh, 0), x)

    def test_preserves_dtype(self, rng):
        x = rng.standard_normal((2, 2, 6, 6)).astype(np.float32)
        cols = im2col(x, 2, 2, 2, 0)
        assert cols.dtype == np.float32
        assert col2im(cols, x.shape, 2, 2, 2, 0).dtype == np.float32


class TestAutoDispatch:
    """col2im_auto must agree with both variants on either side of the
    dispatch threshold — the choice is a pure perf decision."""

    # (n, c, h, w, kh, kw, stride, pad) pinned to each side of
    # COL2IM_BINCOUNT_MAX_SLAB on n*c*out_h*out_w.
    SMALL = (2, 3, 5, 5, 3, 3, 1, 1)  # 2*3*5*5 = 150 <= threshold
    LARGE = (8, 8, 16, 16, 3, 3, 1, 1)  # 8*8*16*16 = 16384 > threshold

    @pytest.mark.parametrize("config", [SMALL, LARGE])
    def test_matches_both_variants(self, rng, config):
        n, c, h, w, kh, kw, stride, pad = config
        out_h = conv_output_size(h, kh, stride, pad)
        out_w = conv_output_size(w, kw, stride, pad)
        cols = rng.standard_normal((c * kh * kw, out_h * out_w * n)).astype(np.float32)
        auto = col2im_auto(cols, (n, c, h, w), kh, kw, stride, pad)
        for variant in (col2im, col2im_bincount):
            np.testing.assert_allclose(
                auto,
                variant(cols, (n, c, h, w), kh, kw, stride, pad),
                rtol=1e-6,
                atol=1e-6,
            )

    @pytest.mark.parametrize("config", [SMALL, LARGE])
    def test_picks_expected_variant(self, rng, config, monkeypatch):
        import repro.tensor.im2col as mod

        n, c, h, w, kh, kw, stride, pad = config
        out_h = conv_output_size(h, kh, stride, pad)
        out_w = conv_output_size(w, kw, stride, pad)
        slab = n * c * out_h * out_w
        expect_bincount = slab <= COL2IM_BINCOUNT_MAX_SLAB
        calls = []
        real_slab, real_bincount = mod.col2im, mod.col2im_bincount
        monkeypatch.setattr(
            mod, "col2im", lambda *a, **k: calls.append("slab") or real_slab(*a, **k)
        )
        monkeypatch.setattr(
            mod,
            "col2im_bincount",
            lambda *a, **k: calls.append("bincount") or real_bincount(*a, **k),
        )
        cols = rng.standard_normal((c * kh * kw, out_h * out_w * n)).astype(np.float32)
        col2im_auto(cols, (n, c, h, w), kh, kw, stride, pad)
        assert calls == (["bincount"] if expect_bincount else ["slab"])

"""Tests for controller decision logic, including RL's gated dispatch."""

import numpy as np
import pytest

from repro.cluster import CheckpointStore
from repro.core.serve import (
    DEFAULT_BATCH_SIZES,
    Dispatch,
    EnsembleScorer,
    GreedySyncController,
    RLController,
    RequestQueue,
    ServingEnv,
    SineArrival,
    Wait,
)
from repro.zoo import get_profile

TAU = 0.56
PROFILE = get_profile("inception_v3")


class _FakeEnv:
    """A minimal env view for driving controllers directly."""

    def __init__(self, arrivals, now, busy_until=None, num_models=1):
        self.queue = RequestQueue()
        for t in arrivals:
            self.queue.push(t)
        self.now = now
        self.busy_until = busy_until if busy_until is not None else [0.0] * num_models

    def model_idle(self, index):
        return self.busy_until[index] <= self.now + 1e-12


class TestRLImmediateDispatch:
    def _controller(self):
        return RLController([PROFILE], DEFAULT_BATCH_SIZES, TAU, seed=0)

    def test_dispatches_immediately_with_queue_and_idle_model(self):
        controller = self._controller()
        env = _FakeEnv(arrivals=[0.0] * 4, now=0.01)
        decision = controller.decide(env)
        assert isinstance(decision, Dispatch)
        assert decision.take == min(decision.batch_size, 4)
        assert decision.batch_size in DEFAULT_BATCH_SIZES

    def test_take_never_exceeds_queue(self):
        controller = self._controller()
        for length in (1, 5, 40, 200):
            env = _FakeEnv(arrivals=[0.0] * length, now=0.01)
            decision = controller.decide(env)
            controller.notify_reward(0.0)
            assert isinstance(decision, Dispatch)
            assert decision.take <= length

    def test_busy_model_waits_without_sampling(self):
        controller = self._controller()
        env = _FakeEnv(arrivals=[0.0] * 100, now=0.0, busy_until=[5.0])
        decision = controller.decide(env)
        assert isinstance(decision, Wait)
        assert controller._last_token is None

    def test_empty_queue_waits(self):
        controller = self._controller()
        env = _FakeEnv(arrivals=[], now=0.0)
        assert isinstance(controller.decide(env), Wait)

    def test_reward_routing_is_per_dispatch(self):
        from repro.exceptions import ConfigurationError

        controller = self._controller()
        env = _FakeEnv(arrivals=[0.0] * 8, now=0.01)
        decision = controller.decide(env)
        assert isinstance(decision, Dispatch)
        controller.notify_reward(0.5)
        with pytest.raises(ConfigurationError):
            controller.notify_reward(0.5)  # no dispatched action open

    def test_reward_pairs_with_dispatched_action(self):
        """Every dispatch is followed by exactly one reward."""
        profiles = [PROFILE]
        arrival = SineArrival(150.0, period=100.0, rng=np.random.default_rng(0))
        controller = RLController(profiles, DEFAULT_BATCH_SIZES, TAU, seed=0)
        env = ServingEnv(profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES)
        metrics = env.run(horizon=50.0)
        # the learner saw one (state, action, reward) per dispatch
        total_transitions = (
            controller.learner.decisions
        )
        assert total_transitions >= len(metrics.dispatches)


class TestSyncControllerEdge:
    def test_waits_when_any_model_busy(self):
        profiles = [get_profile(n) for n in ("inception_v3", "inception_v4")]
        controller = GreedySyncController(profiles, DEFAULT_BATCH_SIZES, TAU)
        env = _FakeEnv(arrivals=[0.0] * 100, now=0.0, busy_until=[0.0, 3.0],
                       num_models=2)
        assert isinstance(controller.decide(env), Wait)


class TestServingMasterRecovery:
    """Section 6.3: the inference master's RL state is checkpointed."""

    def test_actor_critic_state_survives_restart(self):
        profiles = [get_profile(n) for n in
                    ("inception_v3", "inception_v4", "inception_resnet_v2")]
        scorer = EnsembleScorer(tuple(p.name for p in profiles))
        arrival = SineArrival(120.0, period=100.0, rng=np.random.default_rng(1))
        controller = RLController(profiles, DEFAULT_BATCH_SIZES, TAU, seed=1)
        env = ServingEnv(profiles, controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                         scorer=scorer)
        env.run(horizon=60.0)

        store = CheckpointStore()
        store.save("serve-master", controller.learner.state_dict())

        # "restart": a fresh controller restored from the checkpoint
        replacement = RLController(profiles, DEFAULT_BATCH_SIZES, TAU, seed=99)
        replacement.learner.load_state_dict(store.restore("serve-master"))
        state = np.zeros(controller.state_builder.dim)
        np.testing.assert_allclose(
            controller.learner.masked_probs(state, None),
            replacement.learner.masked_probs(state, None),
        )


class TestAIMDController:
    """Clipper-style adaptive batching (Section 2.3's related work)."""

    def _run(self, target_rate, horizon=120.0, seed=0):
        from repro.core.serve import AIMDController, ServingEnv, SineArrival

        arrival = SineArrival(target_rate, period=100.0,
                              rng=np.random.default_rng(seed))
        controller = AIMDController(PROFILE, TAU, max_batch=64)
        env = ServingEnv([PROFILE], controller, arrival, TAU, DEFAULT_BATCH_SIZES)
        metrics = env.run(horizon)
        return controller, metrics

    def test_batch_grows_under_light_load(self):
        controller, metrics = self._run(target_rate=100.0)
        # plenty of headroom: additive increase pushes toward the cap
        assert controller.batch_size > 16
        assert metrics.overdue_fraction() < 0.05

    def test_batch_bounded_by_cap(self):
        controller, _ = self._run(target_rate=250.0)
        assert 1 <= controller.batch_size <= 64

    def test_misses_shrink_the_batch(self):
        from repro.core.serve import AIMDController

        controller = AIMDController(PROFILE, TAU, max_batch=64)
        controller.batch_size = 32
        controller._last_dispatch = (32, 0.0)
        # a no-miss reward grows the batch additively
        full_reward = PROFILE.top1_accuracy * 32 / 64
        controller.notify_reward(full_reward)
        assert controller.batch_size == 34
        # a lossy reward halves it
        controller._last_dispatch = (34, 0.0)
        controller.notify_reward(full_reward * 0.5)
        assert controller.batch_size == 17

    def test_serves_entire_workload(self):
        _, metrics = self._run(target_rate=150.0)
        assert metrics.total_served == metrics.total_arrived

"""Tests for the request queue and the sine arrival process."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.serve import RequestQueue, SineArrival, solve_sine_coefficients
from repro.exceptions import QueueOverflowError


class TestRequestQueue:
    def test_fifo_pop(self):
        queue = RequestQueue()
        queue.push(1.0)
        queue.push(2.0)
        queue.push(3.0)
        np.testing.assert_allclose(queue.pop_oldest(2), [1.0, 2.0])
        assert len(queue) == 1

    def test_pop_more_than_available(self):
        queue = RequestQueue()
        queue.push(1.0, count=3)
        assert queue.pop_oldest(10).shape == (3,)

    def test_capacity_drops(self):
        queue = RequestQueue(capacity=5)
        accepted = queue.push(0.0, count=8)
        assert accepted == 5
        assert queue.total_dropped == 3
        assert len(queue) == 5

    def test_oldest_wait(self):
        queue = RequestQueue()
        queue.push(10.0)
        assert queue.oldest_wait(now=12.5) == pytest.approx(2.5)

    def test_empty_oldest_raises(self):
        with pytest.raises(QueueOverflowError):
            RequestQueue().oldest_arrival()

    def test_waiting_times_pad_and_truncate(self):
        queue = RequestQueue()
        for t in (1.0, 2.0, 3.0):
            queue.push(t)
        padded = queue.waiting_times(now=4.0, length=5)
        np.testing.assert_allclose(padded, [3.0, 2.0, 1.0, 0.0, 0.0])
        truncated = queue.waiting_times(now=4.0, length=2)
        np.testing.assert_allclose(truncated, [3.0, 2.0])

    def test_counters(self):
        queue = RequestQueue()
        queue.push(0.0, count=4)
        queue.pop_oldest(3)
        assert queue.total_enqueued == 4
        assert queue.total_dequeued == 3


class TestSineCoefficients:
    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_equations_hold(self, target):
        """Eq 8: r(T/4 +/- 0.1T) = target; Eq 9: peak = 1.1 target."""
        gamma, intercept = solve_sine_coefficients(target)
        assert gamma + intercept == pytest.approx(1.1 * target, rel=1e-9)
        band = gamma * math.cos(0.2 * math.pi) + intercept
        assert band == pytest.approx(target, rel=1e-9)

    def test_rate_never_negative(self):
        arrival = SineArrival(100.0, period=500.0)
        times = np.linspace(0, 1000, 500)
        assert all(arrival.rate(t) >= 0 for t in times)

    def test_above_target_for_20_percent_of_cycle(self):
        arrival = SineArrival(100.0, period=500.0)
        times = np.linspace(0, 500, 100_000, endpoint=False)
        above = np.mean([arrival.rate(t) > 100.0 for t in times])
        assert above == pytest.approx(0.2, abs=0.005)

    def test_peak_and_trough(self):
        arrival = SineArrival(200.0, period=100.0)
        assert arrival.peak_rate() == pytest.approx(220.0)
        assert arrival.trough_rate() >= 0.0


class TestSineCounts:
    def test_mean_count_tracks_rate(self):
        arrival = SineArrival(100.0, period=500.0, noise_std=0.0,
                              rng=np.random.default_rng(0))
        total = sum(arrival.count(t * 0.1, 0.1) for t in range(5000))  # one cycle
        expected = arrival.intercept * 500.0  # sine integrates to zero
        assert total == pytest.approx(expected, rel=0.02)

    def test_carry_preserves_fractions(self):
        arrival = SineArrival(1.0, period=100.0, noise_std=0.0)
        # rate ~ around 0.6/s; over 100 x 0.1s spans we should not lose
        # the fractional arrivals to rounding
        total = sum(arrival.count(t * 0.1, 0.1) for t in range(1000))
        assert total > 30

    def test_noise_changes_realisation_not_mean(self):
        quiet = SineArrival(100.0, 500.0, noise_std=0.0, rng=np.random.default_rng(1))
        noisy = SineArrival(100.0, 500.0, noise_std=0.1, rng=np.random.default_rng(1))
        quiet_total = sum(quiet.count(t * 0.1, 0.1) for t in range(5000))
        noisy_total = sum(noisy.count(t * 0.1, 0.1) for t in range(5000))
        assert noisy_total != quiet_total
        assert noisy_total == pytest.approx(quiet_total, rel=0.05)

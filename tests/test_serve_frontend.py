"""The admission-controlled serving front end and its load harness.

Covers the sans-io core at hand-picked instants (admission edge cases,
batcher integration, dispatch faults), the deterministic load harness
(bit-identical same-seed traces, open and closed loop), the asyncio
shell, the gateway's 429 backpressure contract, the scaling advisor's
hysteresis, and a chaos-marked replica-death-mid-load scenario.
"""

import asyncio

import pytest

from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.core.serve import (
    AsyncServeFrontend,
    FrontendConfig,
    LoadGenConfig,
    ReplicaPool,
    ScalingAdvisor,
    ServeFrontend,
    TokenBucket,
    capacity_qps,
    run_load,
)
from repro.exceptions import ConfigurationError, RequestShedError


def lat(b):
    """A simple affine c(b) latency model for the tests."""
    return 0.05 + 0.001 * b


def config(**overrides):
    defaults = dict(latency=lat, tau=0.5, batch_sizes=(4, 8), max_queue=64)
    defaults.update(overrides)
    return FrontendConfig(**defaults)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(0.5)  # one token at 2/s
        # after the hinted wait the take succeeds
        assert bucket.try_take(wait) == 0.0

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        # a long idle period must not bank more than the burst
        assert bucket.available(100.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmission:
    def test_queue_full_sheds_with_retry_hint(self, manual_clock):
        frontend = ServeFrontend(config(max_queue=3))
        for i in range(3):
            frontend.offer(f"c{i}", None, manual_clock.now())
        with pytest.raises(RequestShedError) as err:
            frontend.offer("c3", None, manual_clock.now())
        assert err.value.reason == "queue_full"
        assert err.value.retry_after > 0.0
        assert frontend.outcomes["queue_full"] == 1
        assert frontend.admitted == 3

    def test_deadline_shed_uses_capacity_hook(self):
        # one live replica, 10s head-of-line delay: no admitted request
        # could possibly meet tau, so admission refuses up front.
        frontend = ServeFrontend(config(), capacity=lambda now: (1, 10.0))
        with pytest.raises(RequestShedError) as err:
            frontend.offer("c", None, 0.0)
        assert err.value.reason == "deadline"
        # the hint is the estimated delay beyond the tau budget
        assert err.value.retry_after >= 10.0 - 0.5

    def test_deadline_slack_widens_admission(self):
        head = 0.6  # just past tau=0.5 with the batch drain added
        strict = ServeFrontend(config(), capacity=lambda now: (1, head))
        with pytest.raises(RequestShedError):
            strict.offer("c", None, 0.0)
        loose = ServeFrontend(
            config(deadline_slack=2.0), capacity=lambda now: (1, head)
        )
        assert loose.offer("c", None, 0.0).seq == 1

    def test_rate_limit_is_per_client(self, manual_clock):
        frontend = ServeFrontend(config(rate_limit=2.0, burst=2.0))
        now = manual_clock.now()
        frontend.offer("a", None, now)
        frontend.offer("a", None, now)
        with pytest.raises(RequestShedError) as err:
            frontend.offer("a", None, now)
        assert err.value.reason == "rate_limit"
        assert err.value.retry_after == pytest.approx(0.5)
        # a different client has its own bucket
        assert frontend.offer("b", None, now).seq == 3
        # and client a recovers once its hinted wait elapses
        manual_clock.advance(err.value.retry_after)
        assert frontend.offer("a", None, manual_clock.now()).seq == 4

    def test_admission_telemetry(self):
        frontend = ServeFrontend(config(max_queue=1))
        frontend.offer("a", None, 0.0)
        with pytest.raises(RequestShedError):
            frontend.offer("b", None, 0.0)
        registry = telemetry.get_registry()
        requests = registry.counter(
            "repro_serve_frontend_requests_total", ""
        )
        assert requests.value(outcome="admitted", tenant="default") == 1
        assert requests.value(outcome="shed", tenant="default") == 1
        shed = registry.counter("repro_serve_frontend_shed_total", "")
        assert shed.value(reason="queue_full", tenant="default") == 1
        depth = registry.gauge("repro_serve_frontend_queue_depth", "")
        assert depth.value() == 1


class TestDispatch:
    def test_full_batch_dispatches_immediately(self):
        frontend = ServeFrontend(config())
        for i in range(8):
            frontend.offer("c", None, 0.0)
        plans = frontend.poll(0.0)
        assert len(plans) == 1
        assert plans[0].batch_size == 8
        assert plans[0].take == 8
        assert len(frontend.pending) == 0

    def test_partial_batch_waits_for_deadline_pressure(self):
        frontend = ServeFrontend(config())
        for i in range(5):
            frontend.offer("c", None, 0.0)
        assert frontend.poll(0.0) == []
        # the batcher's trigger: arrival + tau - c(4) - backoff
        wake = frontend.next_wake(0.0)
        assert wake == pytest.approx(0.5 - lat(4) - 0.05)
        plans = frontend.poll(wake)
        assert len(plans) == 1
        assert plans[0].batch_size == 4 and plans[0].take == 4
        # the leftover request waits for the tau-overrun grace rule
        assert len(frontend.pending) == 1
        assert frontend.next_wake(wake) == pytest.approx(0.5)
        leftover = frontend.poll(0.5)
        assert len(leftover) == 1
        assert leftover[0].take == 1
        assert leftover[0].batch_size == 4  # padded to min(B)

    def test_complete_accounts_latency_and_slo(self):
        frontend = ServeFrontend(config())
        for i in range(8):
            frontend.offer("c", None, 0.0)
        (plan,) = frontend.poll(0.0)
        frontend.complete(plan, 0.6)  # past tau=0.5: all 8 overdue
        assert frontend.served == 8
        assert frontend.latency_quantile(0.5) == pytest.approx(0.6)
        registry = telemetry.get_registry()
        assert registry.counter(
            "repro_serve_frontend_overdue_total", ""
        ).value() == 8
        assert registry.gauge(
            "repro_serve_frontend_latency_p95_seconds", ""
        ).value() == pytest.approx(0.6)


class TestDispatchFaults:
    def test_accept_fault_sheds_with_reason_fault(self):
        plan = FaultPlan(
            [FaultRule("frontend.accept", FaultKind.EXCEPTION, max_faults=1)],
            seed=0,
        )
        frontend = ServeFrontend(config())
        with chaos.active(plan):
            with pytest.raises(RequestShedError) as err:
                frontend.offer("c", None, 0.0)
            assert err.value.reason == "fault"
            # the rule is exhausted; the next offer is admitted
            assert frontend.offer("c", None, 0.0).seq == 1

    def test_dispatch_fault_requeues_and_retries(self):
        plan = FaultPlan(
            [FaultRule("frontend.dispatch", FaultKind.EXCEPTION, max_faults=1)],
            seed=0,
        )
        frontend = ServeFrontend(config())
        for i in range(8):
            frontend.offer("c", None, 0.0)
        with chaos.active(plan):
            assert frontend.poll(0.0) == []  # fault: batch re-queued
            assert len(frontend.pending) == 8
            retry_at = frontend.next_wake(0.0)
            assert retry_at == pytest.approx(
                frontend.config.dispatch_retry.base_delay
            )
            assert frontend.poll(retry_at / 2) == []  # backoff holds
            (recovered,) = frontend.poll(retry_at)
            assert recovered.take == 8
        assert telemetry.get_registry().counter(
            "repro_serve_frontend_dispatch_retries_total", ""
        ).value() == 1

    def test_poisoned_batch_shed_after_max_attempts(self):
        attempts = FrontendConfig(
            latency=lat, tau=0.5, batch_sizes=(4, 8), max_queue=64
        ).dispatch_retry.max_attempts
        plan = FaultPlan(
            [FaultRule("frontend.dispatch", FaultKind.EXCEPTION)], seed=0
        )
        frontend = ServeFrontend(config())
        for i in range(8):
            frontend.offer("c", None, 0.0)
        with chaos.active(plan):
            now = 0.0
            for _ in range(attempts):
                frontend.poll(now)
                now = frontend.next_wake(now) or now
        # the batch was shed rather than wedging the queue forever
        assert frontend.outcomes.get("dispatch_failed") == 8
        assert len(frontend.pending) == 0


class TestLoadDeterminism:
    def run(self, mode, seed, **load_kwargs):
        frontend = ServeFrontend(config(tau=0.2, batch_sizes=(4, 8, 16)))
        pool = ReplicaPool(lat, replicas=2)
        defaults = dict(mode=mode, duration=4.0, seed=seed)
        defaults.update(load_kwargs)
        return run_load(frontend, pool, LoadGenConfig(**defaults))

    def test_open_loop_same_seed_bit_identical(self):
        kwargs = dict(target_rate=300.0, period=4.0)
        first = self.run("open", 7, **kwargs)
        second = self.run("open", 7, **kwargs)
        assert first.records  # the run actually offered load
        assert first.fingerprint() == second.fingerprint()
        assert first.summary() == second.summary()

    def test_open_loop_seed_changes_trace(self):
        kwargs = dict(target_rate=300.0, period=4.0)
        assert (
            self.run("open", 7, **kwargs).fingerprint()
            != self.run("open", 8, **kwargs).fingerprint()
        )

    def test_closed_loop_same_seed_bit_identical(self):
        kwargs = dict(clients=12, think_time=0.01)
        first = self.run("closed", 3, **kwargs)
        second = self.run("closed", 3, **kwargs)
        assert first.records
        assert first.fingerprint() == second.fingerprint()

    def test_closed_loop_self_limits(self):
        trace = self.run("closed", 3, clients=12, think_time=0.01)
        summary = trace.summary()
        assert summary["shed_rate"] == 0.0
        # offered load cannot exceed clients / (service + think)
        assert summary["offered_qps"] <= 12 / 0.01

    def test_every_offered_request_gets_one_terminal_record(self):
        trace = self.run("open", 7, target_rate=300.0, period=4.0)
        summary = trace.summary()
        assert summary["offered"] == summary["served"] + summary["shed"]

    def test_overload_sheds_and_bounds_the_tail(self):
        capacity = capacity_qps(lat, 16, 2)
        trace = self.run(
            "open", 5, target_rate=3.0 * capacity, period=4.0
        )
        summary = trace.summary()
        assert summary["shed"] > 0
        assert summary["p99_s"] <= 2.0 * 0.2  # shedding caps the tail

    def test_capacity_qps(self):
        assert capacity_qps(lat, 16, 2) == pytest.approx(2 * 16 / lat(16))
        with pytest.raises(ConfigurationError):
            capacity_qps(lambda b: 0.0, 16)


@pytest.mark.chaos
class TestChaosLoad:
    def run_with_kill(self, seed):
        frontend = ServeFrontend(config(tau=0.2, batch_sizes=(4, 8, 16)))
        pool = ReplicaPool(lat, replicas=2)
        capacity = capacity_qps(lat, 16, 2)
        load = LoadGenConfig(
            mode="open", target_rate=0.8 * capacity, period=6.0,
            duration=6.0, seed=seed,
        )
        trace = run_load(
            frontend, pool, load, events=[(2.0, lambda: pool.kill(0))]
        )
        return trace, pool

    def test_replica_death_mid_load_sheds_boundedly(self):
        trace, pool = self.run_with_kill(seed=9)
        summary = trace.summary()
        assert pool.live() == 1
        assert summary["served"] > 0
        # the survivor cannot carry the peak alone: admission sheds —
        # but boundedly, and the tail of what is served stays capped.
        assert 0 < summary["shed_rate"] < 0.6
        assert summary["p99_s"] <= 2.0 * 0.2
        assert summary["offered"] == summary["served"] + summary["shed"]

    def test_replica_death_scenario_is_deterministic(self):
        first, _ = self.run_with_kill(seed=9)
        second, _ = self.run_with_kill(seed=9)
        assert first.fingerprint() == second.fingerprint()


class TestAsyncShell:
    def test_concurrent_submissions_batch_and_backpressure(self):
        batches = []

        def executor(payloads, batch_size):
            batches.append((len(payloads), batch_size))
            return [p * 2 for p in payloads]

        async def scenario():
            cfg = FrontendConfig(
                latency=lambda b: 0.001, tau=0.05,
                batch_sizes=(1, 2, 4), max_queue=8,
            )
            served, shed = [], []

            async def one(frontend, i):
                try:
                    served.append((i, await frontend.submit(i)))
                except RequestShedError as exc:
                    assert exc.retry_after >= 0.0
                    shed.append(i)

            async with AsyncServeFrontend(cfg, executor) as frontend:
                await asyncio.gather(*(one(frontend, i) for i in range(16)))
            return served, shed

        served, shed = asyncio.run(scenario())
        assert len(served) + len(shed) == 16
        assert len(served) >= 8  # at least a queue's worth got through
        for i, result in served:
            assert result == i * 2
        assert batches  # work actually went through the batcher

    def test_executor_error_fails_the_future(self):
        def executor(payloads, batch_size):
            raise RuntimeError("backend exploded")

        async def scenario():
            cfg = FrontendConfig(
                latency=lambda b: 0.001, tau=0.05, batch_sizes=(1,),
            )
            async with AsyncServeFrontend(cfg, executor) as frontend:
                # the backend's own failure propagates to the caller
                # (it is not a backpressure signal)
                with pytest.raises(RuntimeError, match="backend exploded"):
                    await frontend.submit(1)

        asyncio.run(scenario())
        assert telemetry.get_registry().counter(
            "repro_serve_frontend_executor_errors_total", ""
        ).value() == 1


class TestGatewayBackpressure:
    def test_shed_maps_to_429_with_retry_hint(self):
        from repro.api.gateway import Gateway

        response = Gateway._error_response(RequestShedError("queue_full", 0.25))
        assert response.status == 429
        assert response.body["reason"] == "queue_full"
        assert response.body["retry_after"] == pytest.approx(0.25)

    def test_queue_overflow_maps_to_429(self):
        from repro.api.gateway import Gateway
        from repro.exceptions import QueueOverflowError

        response = Gateway._error_response(QueueOverflowError("queue full"))
        assert response.status == 429
        assert response.body["retry_after"] > 0.0

    def test_handle_async_routes_through_attached_frontend(self):
        from repro.api.gateway import Gateway
        from repro.core.system import Rafiki
        from repro.core.tune import HyperConf
        from repro.data import make_image_classification

        system = Rafiki(seed=5)
        dataset = make_image_classification(
            name="food", num_classes=3, image_shape=(3, 8, 8),
            train_per_class=12, val_per_class=6, test_per_class=6,
            difficulty=0.3, seed=11,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        )
        infer_id = system.create_inference_job(system.get_models(job_id))
        gateway = Gateway(system)

        from repro.api import make_query_executor

        cfg = FrontendConfig(
            latency=lambda b: 0.001, tau=0.2,
            batch_sizes=(1, 2, 4), max_queue=4,
        )
        frontend = AsyncServeFrontend(
            cfg, make_query_executor(system, infer_id)
        )
        gateway.attach_frontend(infer_id, frontend)

        async def scenario():
            async with frontend:
                return await asyncio.gather(*(
                    gateway.handle_async(
                        "POST", f"/query/{infer_id}",
                        {"img": dataset.test_x[i % len(dataset.test_x)].tolist()},
                        client_id=f"c{i}",
                    )
                    for i in range(12)
                ))

        responses = asyncio.run(scenario())
        by_status = {}
        for response in responses:
            by_status.setdefault(response.status, []).append(response)
        assert set(by_status) <= {200, 429}
        assert by_status.get(200), "no query was served"
        for ok in by_status.get(200, []):
            assert "label" in ok.body
        for throttled in by_status.get(429, []):
            assert throttled.body["retry_after"] >= 0.0
            assert throttled.body["reason"]
        gateway.detach_frontend(infer_id)

    def test_handle_async_rejects_missing_img(self):
        from repro.api.gateway import Gateway
        from repro.core.system import Rafiki

        gateway = Gateway(Rafiki(seed=5))
        cfg = FrontendConfig(latency=lambda b: 0.001, tau=0.2, batch_sizes=(1,))
        frontend = AsyncServeFrontend(cfg, lambda payloads, b: payloads)
        gateway.attach_frontend("job", frontend)

        async def scenario():
            async with frontend:
                return await gateway.handle_async("POST", "/query/job", {})

        assert asyncio.run(scenario()).status == 400

    def test_handle_async_delegates_other_routes(self):
        from repro.api.gateway import Gateway
        from repro.core.system import Rafiki

        gateway = Gateway(Rafiki(seed=5))
        response = asyncio.run(gateway.handle_async("GET", "/datasets"))
        assert response.ok


class TestScalingAdvisor:
    def gauges(self):
        registry = telemetry.get_registry()
        return (
            registry.gauge("repro_serve_frontend_queue_depth", ""),
            registry.gauge("repro_serve_frontend_latency_p95_seconds", ""),
        )

    def test_watermarks_and_cooldown(self):
        depth, p95 = self.gauges()
        advisor = ScalingAdvisor(cooldown=5.0)
        depth.set(300.0)
        assert advisor.evaluate(0.0) == 1
        assert advisor.evaluate(2.0) == 0  # cooldown suppresses
        assert advisor.evaluate(6.0) == 1
        depth.set(0.0)
        p95.set(0.0)
        assert advisor.evaluate(7.0) == 0  # still cooling down
        assert advisor.evaluate(12.0) == -1
        hint = telemetry.get_registry().gauge(
            "repro_serve_frontend_scale_hint", ""
        )
        assert hint.value() == -1

    def test_hold_band_between_watermarks(self):
        depth, p95 = self.gauges()
        advisor = ScalingAdvisor()
        depth.set(100.0)  # between low (16) and high (256)
        p95.set(0.3)  # between low (0.2) and high (0.5)
        assert advisor.evaluate(0.0) == 0

    def test_watermark_validation(self):
        with pytest.raises(ConfigurationError):
            ScalingAdvisor(high_depth=10.0, low_depth=20.0)
        with pytest.raises(ConfigurationError):
            ScalingAdvisor(high_p95=0.1, low_p95=0.2)

    def test_autoscaled_load_grows_the_pool(self):
        frontend = ServeFrontend(config(tau=0.2, batch_sizes=(4, 8, 16)))
        pool = ReplicaPool(lat, replicas=1)
        capacity = capacity_qps(lat, 16, 1)
        load = LoadGenConfig(
            mode="open", target_rate=2.5 * capacity, period=6.0,
            duration=6.0, seed=2,
        )
        advisor = ScalingAdvisor(
            high_depth=8.0, low_depth=1.0, high_p95=0.15, low_p95=0.01,
            cooldown=0.5,
        )
        trace = run_load(
            frontend, pool, load,
            autoscaler=advisor, scale_bounds=(1, 8),
            autoscale_interval=0.5,
        )
        assert pool.size > 1  # overload triggered scale-out hints
        assert trace.summary()["served"] > 0

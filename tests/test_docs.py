"""Documentation hygiene: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro.sim",
    "repro.tensor",
    "repro.data",
    "repro.data.blockstore",
    "repro.data.fs",
    "repro.paramserver",
    "repro.cluster",
    "repro.zoo",
    "repro.core.tune",
    "repro.core.serve",
    "repro.core.serve.frontend",
    "repro.core.serve.loadgen",
    "repro.api",
    "repro.sqlext",
    "repro.sqlext.plan",
    "repro.sqlext.optimizer",
    "repro.sqlext.exec",
    "repro.telemetry",
    "repro.chaos",
    "repro.tenancy",
    "repro.utils",
]


def _walk_modules():
    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(mod.name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__ for module in _walk_modules() if not module.__doc__
        ]
        assert undocumented == []

    def test_every_exported_class_and_function_documented(self):
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{package_name}.{name}")
        assert undocumented == []

    def test_public_methods_of_key_classes_documented(self):
        from repro.core.serve import ActorCritic, ServeFrontend, ServingEnv
        from repro.core.system import Rafiki
        from repro.core.tune import HyperSpace, StudyMaster, TuneWorker
        from repro.paramserver import ParameterServer

        undocumented = []
        for cls in (Rafiki, HyperSpace, StudyMaster, TuneWorker,
                    ParameterServer, ServingEnv, ActorCritic, ServeFrontend):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert undocumented == []

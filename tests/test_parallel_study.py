"""Determinism and protocol tests for multi-core trial execution.

``run_study_parallel`` must produce the *same* study report as
``run_study`` for a fixed seed — only real wall-clock may differ.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

import repro.core.tune.trial as trial_module

from repro.core.tune import (
    CoStudyMaster,
    HyperConf,
    ParallelTrialExecutor,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    Trial,
    make_workers,
    run_study,
    run_study_parallel,
)
from repro.core.tune.hyperspace import HyperSpace
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer
from repro.zoo.builders import build_mlp


def tiny_space() -> HyperSpace:
    space = HyperSpace()
    space.add_range_knob("lr", "float", 0.01, 0.2, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.9)
    return space


def make_study(tiny_dataset, collaborative: bool, seed: int = 3):
    # trial_id feeds each session's derived rng; rewind the global
    # counter so both runs under comparison hand out identical ids.
    trial_module._trial_ids = itertools.count(1)
    conf = HyperConf(
        max_trials=4, max_epochs_per_trial=2, early_stop_patience=2, delta=0.005
    )
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(tiny_space(), rng=np.random.default_rng(seed))
    if collaborative:
        master = CoStudyMaster(
            "par", conf, advisor, param_server, rng=np.random.default_rng(seed + 7)
        )
    else:
        master = StudyMaster("par", conf, advisor, param_server)
    backend = RealTrainer(
        tiny_dataset, build_mlp, batch_size=16, use_augmentation=False, seed=11
    )
    workers = make_workers(master, backend, param_server, conf, num_workers=2)
    return master, workers


def report_fingerprint(report):
    return [
        (e.index, round(e.performance, 10), e.epochs, e.total_epochs,
         round(e.best_so_far, 10), e.time, e.init_kind)
        for e in report.history
    ]


class TestRunStudyParallel:
    @pytest.mark.parametrize("exec_backend", ["legacy", "pool"])
    @pytest.mark.parametrize("collaborative", [False, True])
    def test_matches_sequential_report(self, tiny_dataset, collaborative, exec_backend):
        master_a, workers_a = make_study(tiny_dataset, collaborative)
        sequential = run_study(master_a, workers_a)

        master_b, workers_b = make_study(tiny_dataset, collaborative)
        parallel = run_study_parallel(
            master_b, workers_b, processes=2, backend=exec_backend
        )

        assert parallel.best_performance == sequential.best_performance
        assert parallel.total_epochs == sequential.total_epochs
        assert parallel.wall_time == sequential.wall_time
        assert report_fingerprint(parallel) == report_fingerprint(sequential)

    def test_backends_restored_after_run(self, tiny_dataset):
        master, workers = make_study(tiny_dataset, collaborative=False)
        original = [w.backend for w in workers]
        run_study_parallel(master, workers, processes=1)
        assert [w.backend for w in workers] == original

    @pytest.mark.parametrize("exec_backend", ["legacy", "pool"])
    def test_best_state_matches_sequential(self, tiny_dataset, exec_backend):
        """The kPut'd winner parameters agree with the sequential run."""
        master_a, workers_a = make_study(tiny_dataset, collaborative=False)
        run_study(master_a, workers_a)
        state_a = master_a.param_server.get(master_a.best_key)

        master_b, workers_b = make_study(tiny_dataset, collaborative=False)
        run_study_parallel(
            master_b, workers_b, processes=2, backend=exec_backend
        )
        state_b = master_b.param_server.get(master_b.best_key)

        assert sorted(state_a) == sorted(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])

    def test_requires_workers(self):
        with pytest.raises(ConfigurationError):
            run_study_parallel(None, [])


class TestParallelTrialExecutor:
    def test_session_protocol(self, tiny_dataset):
        conf = HyperConf(max_trials=1, max_epochs_per_trial=2)
        trainer = RealTrainer(
            tiny_dataset, build_mlp, batch_size=16, use_augmentation=False, seed=5
        )
        with ParallelTrialExecutor(trainer, conf, processes=1) as executor:
            trial = Trial(params={"lr": 0.05})
            session = executor.start(trial, None)
            first = session.run_epoch()
            second = session.run_epoch()
            assert session.epochs == 2
            assert session.best_performance == max(first, second)
            state = session.state_dict()
            assert state  # non-empty parameter dict

        # Matches the in-process session epoch for epoch.
        reference = trainer.start(Trial(params={"lr": 0.05}, trial_id=trial.trial_id), None)
        assert reference.run_epoch() == first
        assert reference.run_epoch() == second

    def test_epoch_cost_delegates(self, tiny_dataset):
        conf = HyperConf(max_trials=1)
        trainer = RealTrainer(
            tiny_dataset, build_mlp, seconds_per_epoch=12.5, use_augmentation=False
        )
        executor = ParallelTrialExecutor(trainer, conf, processes=1)
        assert executor.epoch_cost(Trial(params={})) == 12.5
        executor.shutdown()  # never started: must be a no-op

    def test_rejects_non_real_trainer(self):
        with pytest.raises(ConfigurationError):
            ParallelTrialExecutor(object(), HyperConf(max_trials=1))

"""Property tests over randomly assembled networks.

Builds random (but valid) layer stacks and checks the engine's
structural invariants: declared output shapes match actual outputs,
backward returns input-shaped finite gradients, and every parameter
receives a finite gradient.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)


def build_random_net(rng: np.random.Generator, conv_blocks: int, hidden: int,
                     with_bn: bool, activation: str) -> Network:
    acts = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}
    layers = []
    for i in range(conv_blocks):
        layers.append(Conv2D(2 + i, 3, name=f"c{i}"))
        if with_bn:
            layers.append(BatchNorm(name=f"bn{i}"))
        layers.append(acts[activation](name=f"a{i}"))
        layers.append(MaxPool2D(2, name=f"p{i}"))
    layers.append(Flatten(name="flat"))
    layers.append(Dense(hidden, name="fc1"))
    layers.append(acts[activation](name="afc"))
    layers.append(Dense(3, name="out"))
    return Network(layers).build((2, 8, 8), rng)


@st.composite
def net_specs(draw):
    return (
        draw(st.integers(0, 2)),  # conv blocks (8x8 halves at most twice)
        draw(st.integers(2, 16)),  # hidden units
        draw(st.booleans()),  # batch norm
        draw(st.sampled_from(["relu", "tanh", "sigmoid"])),
        draw(st.integers(0, 10_000)),  # seed
    )


class TestRandomArchitectures:
    @settings(max_examples=20, deadline=None)
    @given(net_specs())
    def test_forward_matches_declared_shape(self, spec):
        blocks, hidden, with_bn, activation, seed = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, blocks, hidden, with_bn, activation)
        x = rng.normal(size=(4, 2, 8, 8))
        out = net.forward(x)
        assert out.shape == (4, *net.output_shape)
        assert np.all(np.isfinite(out))

    @settings(max_examples=15, deadline=None)
    @given(net_specs())
    def test_backward_shapes_and_finiteness(self, spec):
        blocks, hidden, with_bn, activation, seed = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, blocks, hidden, with_bn, activation)
        x = rng.normal(size=(5, 2, 8, 8))
        y = rng.integers(0, 3, size=5)
        loss = SoftmaxCrossEntropy()
        net.zero_grads()
        loss.forward(net.forward(x, training=True), y)
        grad_x = net.backward(loss.backward())
        assert grad_x.shape == x.shape
        assert np.all(np.isfinite(grad_x))
        for name, grad in net.grads.items():
            assert grad.shape == net.params[name].shape, name
            assert np.all(np.isfinite(grad)), name

    @settings(max_examples=10, deadline=None)
    @given(net_specs())
    def test_state_dict_roundtrip_preserves_outputs(self, spec):
        blocks, hidden, with_bn, activation, seed = spec
        rng = np.random.default_rng(seed)
        a = build_random_net(rng, blocks, hidden, with_bn, activation)
        b = build_random_net(np.random.default_rng(seed + 1), blocks, hidden,
                             with_bn, activation)
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(3, 2, 8, 8))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    @settings(max_examples=10, deadline=None)
    @given(net_specs())
    def test_zero_grads_resets_everything(self, spec):
        blocks, hidden, with_bn, activation, seed = spec
        rng = np.random.default_rng(seed)
        net = build_random_net(rng, blocks, hidden, with_bn, activation)
        x = rng.normal(size=(3, 2, 8, 8))
        y = rng.integers(0, 3, size=3)
        loss = SoftmaxCrossEntropy()
        loss.forward(net.forward(x, training=True), y)
        net.backward(loss.backward())
        net.zero_grads()
        for grad in net.grads.values():
            assert np.all(grad == 0.0)

"""Chaos tests for the cluster/tuning layer: crashes, failures, recovery.

The determinism story under test: trial sessions are pure functions of
(trial, init state), so a trial restarted after a crash — or re-issued
to a replacement worker after a node failure — reproduces its healthy
epochs bit-for-bit, and the study converges to the same best trial a
fault-free run finds.
"""

import numpy as np
import pytest

from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.chaos.scenarios import _reset_id_counters
from repro.cluster import ClusterManager, FailureInjector, Node
from repro.cluster.manager import JobKind, JobState
from repro.cluster.node import Resources
from repro.core.tune import (
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    section71_space,
)
from repro.core.tune.distributed import run_cluster_study
from repro.core.tune.trial import TrialStatus
from repro.paramserver import ParameterServer
from repro.sim import Simulator
from repro.utils.retry import RetryPolicy

pytestmark = pytest.mark.chaos


def make_cluster(nodes=3, gpus=3):
    manager = ClusterManager()
    for i in range(nodes):
        manager.add_node(
            Node(f"n{i}", capacity=Resources(cpus=8, gpus=gpus, memory_gb=64))
        )
    return manager


def counter_total(name):
    return sum(telemetry.get_registry().counter(name).snapshot().values())


def run_study(plan=None, failure_plan=None, seed=0, max_trials=12,
              trial_attempts=3):
    """One cluster study under an optional fault plan / failure plan.

    Rewinds the process-global id counters first so trial seeds (derived
    from trial ids) match across runs within one test process.
    """
    _reset_id_counters()
    telemetry.set_registry(telemetry.MetricsRegistry())
    chaos.set_plan(plan)
    try:
        manager = make_cluster()
        ps = ParameterServer()
        conf = HyperConf(max_trials=max_trials, max_epochs_per_trial=20)
        master = StudyMaster(
            "cx", conf,
            RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed)),
            ps,
        )
        report = run_cluster_study(
            manager, master, SurrogateTrainer(seed=seed), ps, conf,
            num_workers=3, failure_plan=failure_plan,
            trial_retry=RetryPolicy(max_attempts=trial_attempts, jitter=0.0,
                                    seed=seed),
        )
        crashes = counter_total("repro_tune_trial_crashes_total")
        reissued = counter_total("repro_tune_trials_reissued_total")
        return manager, report, crashes, reissued
    finally:
        chaos.set_plan(None)


def result_map(report):
    return {
        r.trial.trial_id: (round(r.performance, 12), r.epochs)
        for r in report.results
    }


class TestTrialCrashRecovery:
    def test_retried_trials_reproduce_fault_free_results(self):
        _, healthy, crashes, _ = run_study()
        assert crashes == 0
        plan = FaultPlan(
            [FaultRule("tune.trial", FaultKind.EXCEPTION, probability=0.04,
                       max_faults=5)],
            seed=0,
        )
        _, crashed, crashes, _ = run_study(plan=plan)
        assert crashes > 0
        # Every healthy trial reappears with an identical result: the
        # restarted session replays the lost epochs deterministically.
        # (Crash delays can let the master finish a few *extra* trials,
        # so the faulted run is a superset, never a divergence.)
        assert result_map(healthy).items() <= result_map(crashed).items()
        assert crashed.best_performance >= healthy.best_performance

    def test_exhausted_retries_fail_the_trial_not_the_study(self):
        plan = FaultPlan([FaultRule("tune.trial", FaultKind.EXCEPTION)], seed=0)
        _, report, crashes, _ = run_study(plan=plan, max_trials=4,
                                          trial_attempts=2)
        statuses = {r.trial.status for r in report.results}
        assert statuses == {TrialStatus.FAILED}
        assert report.best_performance == 0.0
        # every issued trial crashed exactly max_attempts times: one
        # retry, then failed (concurrency can let the master issue a few
        # more than max_trials before it observes enough finishes)
        finished = len(report.results)
        assert finished >= 4
        assert crashes == finished * 2
        registry = telemetry.get_registry()
        counter = registry.counter("repro_tune_trial_crashes_total")
        assert counter.value(outcome="failed") == finished
        assert counter.value(outcome="retried") == finished

    def test_crash_runs_are_reproducible_per_seed(self):
        def trace():
            plan = FaultPlan(
                [FaultRule("tune.trial", FaultKind.EXCEPTION, probability=0.04,
                           max_faults=5)],
                seed=3,
            )
            _, report, crashes, _ = run_study(plan=plan, seed=3)
            return result_map(report), crashes, report.wall_time

        assert trace() == trace()


class TestNodeFailureRecovery:
    def test_reissued_trials_match_healthy_run(self):
        _, healthy, _, _ = run_study()
        manager, faulted, _, reissued = run_study(
            failure_plan=[(150.0, "n0", 900.0)]
        )
        assert manager.recoveries > 0
        assert reissued > 0
        # In-flight trials were re-run from checkpoint by replacement
        # workers, so the advisor saw the healthy trial sequence and the
        # study lands on the same results (and the same best trial).
        assert result_map(faulted) == result_map(healthy)
        assert faulted.best.trial.trial_id == healthy.best.trial.trial_id
        assert faulted.wall_time >= healthy.wall_time

    def test_same_seed_failure_runs_are_bit_identical(self):
        def trace():
            manager, report, crashes, reissued = run_study(
                failure_plan=[(150.0, "n0", 900.0), (400.0, "n1", None)]
            )
            return (result_map(report), report.wall_time, crashes, reissued,
                    manager.recoveries)

        assert trace() == trace()

    def test_combined_node_failure_and_trial_crashes(self):
        plan = FaultPlan(
            [FaultRule("tune.trial", FaultKind.EXCEPTION, probability=0.03,
                       max_faults=4)],
            seed=1,
        )
        manager, report, crashes, _ = run_study(
            plan=plan, failure_plan=[(200.0, "n0", 600.0)]
        )
        assert manager.recoveries > 0
        assert len(report.results) >= 12
        assert report.best_performance > 0


class TestDegradedJobs:
    def make_tight_cluster(self):
        """Two nodes where a failed worker cannot be re-placed."""
        manager = ClusterManager()
        manager.add_node(Node("a", capacity=Resources(cpus=4, gpus=2, memory_gb=32)))
        manager.add_node(Node("b", capacity=Resources(cpus=4, gpus=2, memory_gb=32)))
        job = manager.submit_job(JobKind.TRAIN, name="tight", num_workers=3)
        return manager, job

    def test_no_capacity_degrades_and_queues(self):
        manager, job = self.make_tight_cluster()
        spilled = next(
            node for node in ("a", "b")
            if any(c.node_name == node for c in job.containers)
            and not all(c.node_name == node for c in job.containers)
        )
        manager.fail_node(spilled)
        assert job.state is JobState.DEGRADED
        gauge = telemetry.get_registry().gauge("repro_cluster_pending_restarts")
        assert sum(gauge.snapshot().values()) > 0

    def test_recover_node_drains_queue_and_reruns_job(self):
        manager, job = self.make_tight_cluster()
        by_node = {}
        for container in job.containers:
            by_node.setdefault(container.node_name, []).append(container)
        (busier, _), (quieter, _) = sorted(
            by_node.items(), key=lambda kv: -len(kv[1])
        )
        manager.fail_node(quieter)
        assert job.state is JobState.DEGRADED
        started = manager.recover_node(quieter)
        assert started
        assert job.state is JobState.RUNNING
        assert all(c.running for c in job.containers)
        gauge = telemetry.get_registry().gauge("repro_cluster_pending_restarts")
        assert sum(gauge.snapshot().values()) == 0

    def test_recovery_hooks_fire_once_per_replacement(self):
        manager = make_cluster(nodes=3)
        job = manager.submit_job(JobKind.TRAIN, name="hooks", num_workers=2)
        seen = []
        manager.on_recovery(lambda c: seen.append(c.container_id))
        lost_node = job.containers[0].node_name
        replacements = manager.fail_node(lost_node)
        assert replacements
        assert sorted(seen) == sorted(c.container_id for c in replacements)
        assert len(seen) == len(set(seen))
        for replacement in replacements:
            assert replacement.predecessor is not None
            assert replacement.restarts == 1


class TestHeartbeatFailureDetection:
    def test_stale_nodes_are_failed(self, manual_clock):
        manager = make_cluster(nodes=3)
        job = manager.submit_job(JobKind.TRAIN, name="hb", num_workers=2)
        manual_clock.advance(20.0)
        manager.heartbeat("n1")
        manager.heartbeat("n2")
        failed = manager.detect_failures(timeout=10.0)
        assert failed == ["n0"]
        assert not manager.nodes["n0"].alive
        # the silent node's containers were restarted elsewhere
        assert all(c.running for c in job.containers)
        assert all(c.node_name != "n0" for c in job.containers)

    def test_fresh_heartbeats_keep_nodes_alive(self, manual_clock):
        manager = make_cluster(nodes=2)
        manual_clock.advance(5.0)
        for name in ("n0", "n1"):
            manager.heartbeat(name)
        manual_clock.advance(5.0)
        assert manager.detect_failures(timeout=10.0) == []
        assert len(manager.alive_nodes()) == 2

    def test_dead_nodes_are_not_failed_twice(self, manual_clock):
        manager = make_cluster(nodes=2)
        manager.fail_node("n0")
        failures_before = counter_total("repro_cluster_node_failures_total")
        manual_clock.advance(100.0)
        manager.heartbeat("n1")
        assert manager.detect_failures(timeout=10.0) == []
        assert counter_total("repro_cluster_node_failures_total") == failures_before

    def test_recovered_node_heartbeat_resets(self, manual_clock):
        manager = make_cluster(nodes=2)
        manager.fail_node("n0")
        manual_clock.advance(50.0)
        manager.recover_node("n0")
        manager.heartbeat("n1")
        assert manager.detect_failures(timeout=10.0) == []


class TestFailureInjectorEdgeCases:
    def test_empty_cluster_schedules_nothing(self):
        injector = FailureInjector(ClusterManager())
        sim = Simulator()
        assert injector.random_failures(sim, horizon=100.0,
                                        rate_per_second=0.5) == 0
        sim.run()
        assert injector.injected == []

    def test_zero_rate_schedules_nothing(self):
        injector = FailureInjector(make_cluster())
        assert injector.random_failures(Simulator(), horizon=100.0,
                                        rate_per_second=0.0) == 0

    def test_all_dead_cluster_stops_scheduling(self):
        manager = make_cluster(nodes=2)
        manager.fail_node("n0")
        manager.fail_node("n1")
        injector = FailureInjector(manager)
        assert injector.random_failures(Simulator(), horizon=1000.0,
                                        rate_per_second=0.9) == 0

    def test_scheduled_failure_races_a_prior_death(self):
        manager = make_cluster(nodes=2)
        sim = Simulator()
        injector = FailureInjector(manager, rng=np.random.default_rng(0))
        scheduled = injector.random_failures(sim, horizon=5.0,
                                             rate_per_second=0.9,
                                             mean_downtime=1000.0)
        assert scheduled > 0
        # every node the schedule targets dies before the sim starts, so
        # _fail_if_alive finds them dead and injects nothing further
        manager.fail_node("n0")
        manager.fail_node("n1")
        sim.run()
        assert injector.injected == []

    def test_random_failures_are_seeded(self):
        def schedule(seed):
            manager = make_cluster(nodes=3)
            sim = Simulator()
            injector = FailureInjector(manager,
                                       rng=np.random.default_rng(seed))
            injector.random_failures(sim, horizon=50.0, rate_per_second=0.2)
            sim.run()
            return list(injector.injected)

        assert schedule(4) == schedule(4)

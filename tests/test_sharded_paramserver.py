"""Tests for the sharded, replicated parameter-server data plane."""

import json

import numpy as np
import pytest

from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.cluster import ClusterManager, Node
from repro.cluster.node import Resources
from repro.exceptions import (
    ConfigurationError,
    ParameterNotFoundError,
    ParameterServerError,
)
from repro.paramserver import ParameterServer, ShardedParameterServer


def state(value: float, shape=(4, 4)) -> dict:
    return {"layer/W": np.full(shape, value), "layer/b": np.full(shape[0], value)}


def seeded_states(seed: int, n: int) -> list[dict]:
    rng = np.random.default_rng(seed)
    return [
        {"w": rng.standard_normal((8, 8)), "b": rng.standard_normal(8)}
        for _ in range(n)
    ]


@pytest.fixture()
def cluster():
    manager = ClusterManager()
    for i in range(3):
        manager.add_node(
            Node(f"n{i}", capacity=Resources(cpus=16, gpus=2, memory_gb=64))
        )
    return manager


class TestRingAndReplication:
    def test_replicas_clamped_to_shards(self):
        sps = ShardedParameterServer(shards=2, replicas=5)
        assert sps.replicas == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedParameterServer(shards=0)
        with pytest.raises(ConfigurationError):
            ShardedParameterServer(shards=2, replicas=0)

    def test_every_key_lands_on_replicas_distinct_shards(self):
        sps = ShardedParameterServer(shards=4, replicas=2)
        for i in range(30):
            sps.put(f"k{i}", state(float(i)))
        for i in range(30):
            holders = sps._directory[f"k{i}"]
            assert len(holders) == 2
            assert len(set(holders)) == 2

    def test_keys_spread_across_shards(self):
        sps = ShardedParameterServer(shards=4, replicas=1)
        for i in range(64):
            sps.put(f"k{i}", state(float(i)))
        loads = [len([k for k, h in sps._directory.items() if s.name in h])
                 for s in sps.shards]
        assert all(load > 0 for load in loads)

    def test_preference_order_is_stable(self):
        a = ShardedParameterServer(shards=4, replicas=2)
        b = ShardedParameterServer(shards=4, replicas=2)
        for key in ("alpha", "beta", "gamma"):
            assert [s.name for s in a._preference(key)] == [
                s.name for s in b._preference(key)
            ]

    def test_versions_consistent_across_replicas(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        for _ in range(3):
            sps.put("k", state(1.0))
        assert sps.versions("k") == 3
        for name in sps._directory["k"]:
            assert sps._by_name[name].server.versions("k") == 3


class TestEquivalenceWithSingleServer:
    def test_same_seed_bit_identical_gets(self):
        """shards=3 answers bit-for-bit what the single server answers."""
        plain = ParameterServer()
        sharded = ShardedParameterServer(shards=3, replicas=2)
        states = seeded_states(42, 12)
        for i, s in enumerate(states):
            plain.put(f"k{i}", s, performance=float(i), model="m", dataset="d")
            sharded.put(f"k{i}", s, performance=float(i), model="m", dataset="d")
        for i in range(12):
            a, b = plain.get(f"k{i}"), sharded.get(f"k{i}")
            assert sorted(a) == sorted(b)
            for name in a:
                assert a[name].tobytes() == b[name].tobytes()
            ea, eb = plain.get_entry(f"k{i}"), sharded.get_entry(f"k{i}")
            assert (ea.version, ea.performance) == (eb.version, eb.performance)

    def test_find_pretrained_matches_single_server(self):
        plain = ParameterServer()
        sharded = ShardedParameterServer(shards=3, replicas=2)
        for ps in (plain, sharded):
            ps.put("a", state(1.0), model="r", dataset="c1", performance=0.9)
            ps.put("b", state(2.0), model="r", dataset="c2", performance=0.95,
                   public=False)
            ps.put("c", state(3.0), model="r", dataset="c3", performance=0.8)
        ea = plain.find_pretrained("r", exclude_dataset="c1")
        eb = sharded.find_pretrained("r", exclude_dataset="c1")
        assert ea.dataset == eb.dataset == "c3"

    def test_keys_and_has_match(self):
        plain = ParameterServer()
        sharded = ShardedParameterServer(shards=3, replicas=2)
        for ps in (plain, sharded):
            for key in ("z", "a", "m"):
                ps.put(key, state(1.0))
        assert sharded.keys() == plain.keys()
        assert sharded.has("a") and not sharded.has("q")


class TestShardDeathAndRecovery:
    def test_kill_loses_nothing_with_replication(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        states = seeded_states(7, 15)
        for i, s in enumerate(states):
            sps.put(f"k{i}", s)
        before = {f"k{i}": sps.get(f"k{i}") for i in range(15)}
        sps.kill_shard("ps-0")
        audit = sps.audit()
        assert audit["keys_lost"] == 0
        assert not audit["under_replicated"] and not audit["divergent"]
        for key, value in before.items():
            after = sps.get(key)
            for name in value:
                assert value[name].tobytes() == after[name].tobytes()

    def test_kill_without_replication_loses_keys(self):
        sps = ShardedParameterServer(shards=3, replicas=1)
        for i in range(12):
            sps.put(f"k{i}", state(float(i)))
        held = [k for k, h in sps._directory.items() if "ps-1" in h]
        assert held  # 12 keys over 3 shards: each holds some
        sps.kill_shard("ps-1")
        assert sps.keys_lost == len(held)
        for key in held:
            assert not sps.has(key)
            with pytest.raises(ParameterNotFoundError):
                sps.get(key)

    def test_revive_resyncs_ring_range(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        for i in range(12):
            sps.put(f"k{i}", state(float(i)))
        sps.kill_shard("ps-2")
        sps.revive_shard("ps-2")
        audit = sps.audit()
        assert not audit["under_replicated"] and not audit["divergent"]
        # the revived shard holds (full histories of) its ring range again
        assert any("ps-2" in h for h in sps._directory.values())

    def test_all_shards_dead_raises(self):
        sps = ShardedParameterServer(shards=2, replicas=2)
        sps.put("k", state(1.0))
        sps.kill_shard("ps-0")
        sps.kill_shard("ps-1")
        with pytest.raises((ParameterServerError, ParameterNotFoundError)):
            sps.get("k")
        with pytest.raises(ParameterServerError):
            sps.put("j", state(2.0))

    def test_repair_heals_degraded_writes(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.put("k", state(1.0))
        victim = sps._directory["k"][0]
        plan = FaultPlan(
            [FaultRule(f"paramserver.shard.{victim}.push", FaultKind.EXCEPTION)],
            seed=3,
        )
        previous = chaos.set_plan(plan)
        try:
            sps.put("k", state(2.0))
        finally:
            chaos.set_plan(previous)
        assert sps.audit()["under_replicated"] == ["k"]
        assert sps.repair() >= 1
        audit = sps.audit()
        assert not audit["under_replicated"] and not audit["divergent"]
        # the healed replica serves the latest version
        assert sps._by_name[victim].server.get_entry("k").version == 2


class TestFailoverAndBreakers:
    def test_read_fails_over_to_replica(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.put("k", state(5.0))
        primary = next(
            s.name for s in sps._preference("k") if s.name in sps._directory["k"]
        )
        plan = FaultPlan(
            [FaultRule(f"paramserver.shard.{primary}.pull", FaultKind.EXCEPTION)],
            seed=1,
        )
        previous = chaos.set_plan(plan)
        try:
            np.testing.assert_allclose(sps.get("k")["layer/W"], 5.0)
        finally:
            chaos.set_plan(previous)
        failovers = telemetry.get_registry().counter(
            "repro_paramserver_failovers_total", "x"
        )
        assert failovers.value(shard=primary, op="pull") >= 1

    def test_breaker_opens_and_skips_failing_shard(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.put("k", state(1.0))
        primary = next(
            s.name for s in sps._preference("k") if s.name in sps._directory["k"]
        )
        plan = FaultPlan(
            [FaultRule(f"paramserver.shard.{primary}.pull", FaultKind.EXCEPTION)],
            seed=1,
        )
        previous = chaos.set_plan(plan)
        try:
            for _ in range(4):
                sps.get("k")
        finally:
            chaos.set_plan(previous)
        assert sps._by_name[primary].breaker.state == "open"
        # with the breaker open the faulty shard is not even attempted
        errors = telemetry.get_registry().counter(
            "repro_paramserver_shard_requests_total", "x"
        )
        before = errors.value(shard=primary, op="pull", outcome="error")
        sps.get("k")
        assert errors.value(shard=primary, op="pull", outcome="error") == before

    def test_put_survives_one_failing_replica(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.put("k", state(1.0))
        victim = sps._directory["k"][0]
        plan = FaultPlan(
            [FaultRule(f"paramserver.shard.{victim}.push", FaultKind.EXCEPTION)],
            seed=2,
        )
        previous = chaos.set_plan(plan)
        try:
            entry = sps.put("k", state(2.0))
        finally:
            chaos.set_plan(previous)
        assert entry.version == 2
        np.testing.assert_allclose(sps.get("k")["layer/W"], 2.0)


class TestClusterIntegration:
    def test_shards_placed_on_distinct_nodes(self, cluster):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.register_with_cluster(cluster)
        nodes = {
            cluster.containers[s.container_id].node_name for s in sps.shards
        }
        assert len(nodes) == 3

    def test_node_failure_rereplicates_and_recovers(self, cluster):
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.register_with_cluster(cluster)
        for i in range(12):
            sps.put(f"k{i}", state(float(i)))
        victim = sps.shards[0]
        node = cluster.containers[victim.container_id].node_name
        cluster.fail_node(node)
        audit = sps.audit()
        assert audit["keys_lost"] == 0
        assert not audit["under_replicated"] and not audit["divergent"]
        assert victim.alive and victim.deaths == 1
        for i in range(12):
            np.testing.assert_allclose(sps.get(f"k{i}")["layer/W"], float(i))

    def test_detect_failures_notices_dead_shard(self, cluster, manual_clock):
        clock = manual_clock
        sps = ShardedParameterServer(shards=3, replicas=2)
        sps.register_with_cluster(cluster)
        sps.put("k", state(1.0))
        victim_node = cluster.containers[sps.shards[1].container_id].node_name
        for node in cluster.nodes.values():
            cluster.heartbeat(node.name)
        clock.advance(120.0)
        for node in cluster.nodes.values():
            if node.name != victim_node:
                cluster.heartbeat(node.name)
        failed = cluster.detect_failures(timeout=60.0)
        assert victim_node in failed
        audit = sps.audit()
        assert audit["keys_lost"] == 0 and not audit["divergent"]

    def test_double_registration_rejected(self, cluster):
        sps = ShardedParameterServer(shards=2, replicas=2)
        sps.register_with_cluster(cluster)
        with pytest.raises(ConfigurationError):
            sps.register_with_cluster(cluster)


class TestTelemetry:
    def test_per_shard_push_labels(self):
        sps = ShardedParameterServer(shards=2, replicas=1)
        for i in range(8):
            sps.put(f"k{i}", state(float(i)))
        pushes = telemetry.get_registry().counter(
            "repro_paramserver_push_total", "x"
        )
        total = sum(pushes.value(shard=s.name) for s in sps.shards)
        assert total == 8

    def test_live_shards_gauge_tracks_kills(self):
        sps = ShardedParameterServer(shards=3, replicas=2)
        gauge = telemetry.get_registry().gauge("repro_paramserver_shards_live", "x")
        assert gauge.value() == 3
        sps.kill_shard("ps-0")
        assert gauge.value() == 2
        sps.revive_shard("ps-0")
        assert gauge.value() == 3


@pytest.mark.chaos
class TestShardKillScenario:
    def test_shard_kill_mid_study_loses_nothing(self):
        from repro.chaos.scenarios import run_shard_kill_scenario

        result = run_shard_kill_scenario(seed=0)
        assert result["victim"]["deaths"] >= 1
        audit = result["audit"]
        assert audit["keys_lost"] == 0
        assert not audit["under_replicated"] and not audit["divergent"]
        assert audit["rereplications"] > 0
        assert result["stale"] == []
        assert result["results"]["trials"] >= 16

    def test_same_seed_traces_bit_identical(self):
        from repro.chaos.scenarios import run_shard_kill_scenario

        first = run_shard_kill_scenario(seed=0)
        second = run_shard_kill_scenario(seed=0)
        assert json.dumps(first["trace"], sort_keys=True) == json.dumps(
            second["trace"], sort_keys=True
        )

    def test_different_seed_traces_differ(self):
        from repro.chaos.scenarios import run_shard_kill_scenario

        first = run_shard_kill_scenario(seed=0)
        other = run_shard_kill_scenario(seed=3)
        assert json.dumps(first["trace"], sort_keys=True) != json.dumps(
            other["trace"], sort_keys=True
        )

"""Tests for the parameter server and LRU cache.

``TestParameterServer`` runs every behavioural test twice — once
against the single :class:`ParameterServer` and once against a
``ShardedParameterServer(shards=1, replicas=1)`` — asserting the
sharded coordinator is a drop-in replacement.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.exceptions import ParameterNotFoundError
from repro.paramserver import LRUCache, ParameterServer, ShardedParameterServer


def state(value: float, shape=(4, 4)) -> dict:
    return {"layer/W": np.full(shape, value), "layer/b": np.full(shape[0], value)}


def make_ps(kind: str, **kwargs):
    if kind == "plain":
        return ParameterServer(**kwargs)
    return ShardedParameterServer(shards=1, replicas=1, **kwargs)


@pytest.fixture(params=["plain", "sharded"])
def ps(request):
    return make_ps(request.param)


class TestLRUCache:
    def _cache(self, capacity=100, name=None):
        return LRUCache(capacity, size_of=lambda v: len(v), name=name)

    def test_hit_and_miss(self):
        cache = self._cache()
        cache.put("a", b"12345")
        assert cache.get("a") == b"12345"
        assert cache.get("b") is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_lru_order(self):
        cache = self._cache(capacity=10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")  # a is now most-recent
        cache.put("c", b"12345")  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_oversized_value_not_cached(self):
        cache = self._cache(capacity=3)
        cache.put("big", b"12345")
        assert "big" not in cache

    def test_overwrite_updates_budget(self):
        cache = self._cache(capacity=10)
        cache.put("a", b"12345")
        cache.put("a", b"12")
        assert cache.used_bytes == 2

    def test_invalidate(self):
        cache = self._cache()
        cache.put("a", b"123")
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.used_bytes == 0

    # -- gauge freshness regressions ----------------------------------
    # invalidate(), clear() and the oversized-overwrite path all change
    # used_bytes; each must republish the byte gauge or monitoring
    # reports phantom memory.

    def _used_gauge(self):
        return telemetry.get_registry().gauge(
            "repro_cache_used_bytes", "Bytes held by a named cache."
        )

    def test_invalidate_republishes_gauge(self):
        cache = self._cache(name="t")
        cache.put("a", b"12345")
        assert self._used_gauge().value(cache="t") == 5
        cache.invalidate("a")
        assert self._used_gauge().value(cache="t") == 0

    def test_clear_republishes_gauge(self):
        cache = self._cache(name="t")
        cache.put("a", b"12345")
        cache.put("b", b"123")
        cache.clear()
        assert len(cache) == 0
        assert self._used_gauge().value(cache="t") == 0

    def test_oversized_overwrite_republishes_gauge(self):
        cache = self._cache(capacity=10, name="t")
        cache.put("a", b"12345")
        # Overwriting with a value too big to cache frees a's 5 bytes.
        cache.put("a", b"x" * 50)
        assert "a" not in cache
        assert cache.used_bytes == 0
        assert self._used_gauge().value(cache="t") == 0


class TestParameterServer:
    def test_put_get_roundtrip(self, ps):
        ps.put("m/best", state(1.0))
        fetched = ps.get("m/best")
        np.testing.assert_allclose(fetched["layer/W"], 1.0)

    def test_get_returns_copy(self, ps):
        ps.put("k", state(1.0))
        fetched = ps.get("k")
        fetched["layer/W"][...] = 99.0
        np.testing.assert_allclose(ps.get("k")["layer/W"], 1.0)

    def test_versioning(self, ps):
        ps.put("k", state(1.0))
        ps.put("k", state(2.0))
        assert ps.versions("k") == 2
        np.testing.assert_allclose(ps.get("k")["layer/W"], 2.0)  # latest
        np.testing.assert_allclose(ps.get("k", version=1)["layer/W"], 1.0)

    def test_missing_key_raises(self, ps):
        with pytest.raises(ParameterNotFoundError):
            ps.get("nope")
        ps.put("k", state(1.0))
        with pytest.raises(ParameterNotFoundError):
            ps.get("k", version=7)

    def test_delete(self, ps):
        ps.put("k", state(1.0))
        ps.delete("k")
        assert not ps.has("k")
        with pytest.raises(ParameterNotFoundError):
            ps.delete("k")

    @pytest.mark.parametrize("kind", ["plain", "sharded"])
    def test_cold_read_after_cache_eviction(self, kind):
        """Evicted parameters are reloaded from the backing store."""
        ps = make_ps(kind, cache_bytes=200)  # fits barely one state
        ps.put("a", state(1.0))
        ps.put("b", state(2.0))  # evicts a from the cache
        np.testing.assert_allclose(ps.get("a")["layer/W"], 1.0)

    def test_cache_hits_on_hot_key(self, ps):
        ps.put("hot", state(1.0))
        before = ps.cache.hits
        for _ in range(5):
            ps.get("hot")
        assert ps.cache.hits == before + 5

    def test_put_if_better(self, ps):
        assert ps.put_if_better("k", state(1.0), performance=0.5)
        assert not ps.put_if_better("k", state(2.0), performance=0.4)
        assert ps.put_if_better("k", state(3.0), performance=0.6)
        np.testing.assert_allclose(ps.get("k")["layer/W"], 3.0)
        assert ps.get_entry("k").performance == 0.6

    def test_put_if_better_nan_never_displaces_real(self, ps):
        """Regression: a crashed trial's NaN used to overwrite the best.

        ``NaN <= x`` is False for every x, so before the explicit guard
        the overwrite rule treated a NaN candidate as an improvement.
        """
        assert ps.put_if_better("k", state(1.0), performance=0.5)
        assert not ps.put_if_better("k", state(2.0), performance=float("nan"))
        assert ps.get_entry("k").performance == 0.5
        np.testing.assert_allclose(ps.get("k")["layer/W"], 1.0)
        # NaN may still seed an empty key, and a real measurement (even
        # a poor one) then displaces it.
        assert ps.put_if_better("j", state(1.0), performance=float("nan"))
        assert ps.put_if_better("j", state(2.0), performance=0.1)
        assert ps.get_entry("j").performance == 0.1

    def test_fetch_shape_pool(self, ps):
        ps.put("k", {"a": np.zeros((2, 3)), "b": np.ones((2, 3)), "c": np.zeros(5)})
        pool = ps.fetch_shape_pool("k")
        assert len(pool[(2, 3)]) == 2
        assert len(pool[(5,)]) == 1

    def test_find_pretrained_prefers_public_other_dataset(self, ps):
        ps.put("a", state(1.0), model="resnet", dataset="cifar", performance=0.9,
               public=True)
        ps.put("b", state(2.0), model="resnet", dataset="imagenet", performance=0.95,
               public=False)
        ps.put("c", state(3.0), model="resnet", dataset="food", performance=0.8,
               public=True)
        best = ps.find_pretrained("resnet", exclude_dataset="cifar")
        assert best is not None
        assert best.dataset == "food"  # the private 0.95 entry is skipped

    def test_find_pretrained_none(self, ps):
        assert ps.find_pretrained("x") is None

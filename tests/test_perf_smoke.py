"""Performance smoke tests (``-m perf_smoke``; run in the default suite too).

Each check spends ~a second driving an engine hot path and asserts a
*very* generous ceiling — an order of magnitude above what the fast
paths deliver on any reasonable machine. They exist to catch gross
regressions (an accidentally quadratic loop, a dropped cache, a silent
float64 upcast), not to measure: real numbers come from
``benchmarks/bench_perf_engine.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.tensor import Conv2D, default_dtype
from repro.tensor.im2col import _patch_indices, col2im, im2col

pytestmark = pytest.mark.perf_smoke


def best_of(fn, repeats: int = 3) -> float:
    """Smallest wall-clock over ``repeats`` runs (noise-resistant)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_conv_forward_backward_under_ceiling(rng):
    """20 forward+backward passes of a CIFAR-ish conv layer in < 2 s.

    The fast path does this in well under 0.2 s; the old per-call
    index-building np.add.at path took around 1 s on a slow box.
    """
    conv = Conv2D(16, kernel_size=3, name="smoke_conv")
    conv.build((8, 16, 16), rng)
    x = rng.standard_normal((32, 8, 16, 16)).astype(default_dtype())

    def step():
        out = conv.forward(x, training=True)
        conv.backward(np.ones_like(out))

    step()  # warm the index caches before timing
    elapsed = best_of(lambda: [step() for _ in range(20)])
    assert elapsed < 2.0, f"20 conv fwd+bwd passes took {elapsed:.2f}s (ceiling 2s)"


def test_im2col_col2im_roundtrip_under_ceiling(rng):
    """50 im2col/col2im roundtrips on a 64-image batch in < 2 s."""
    x = rng.standard_normal((64, 3, 16, 16)).astype(default_dtype())

    def roundtrip():
        cols = im2col(x, 3, 3, 1, 1)
        col2im(cols, x.shape, 3, 3, 1, 1)

    roundtrip()
    elapsed = best_of(lambda: [roundtrip() for _ in range(50)])
    assert elapsed < 2.0, f"50 roundtrips took {elapsed:.2f}s (ceiling 2s)"


def test_patch_index_cache_hits():
    """Repeated same-geometry calls must come from the LRU cache."""
    _patch_indices.cache_clear()
    for _ in range(5):
        _patch_indices(3, 16, 16, 3, 3, 1, 1)
    info = _patch_indices.cache_info()
    assert info.misses == 1
    assert info.hits == 4

"""Tests for the Rafiki facade, gateway, and SDK."""

import numpy as np
import pytest

import repro as rafiki
from repro.api.gateway import Gateway
from repro.api.sdk import connect
from repro.core.system import Rafiki
from repro.core.tune import HyperConf, SurrogateTrainer
from repro.data import make_image_classification
from repro.exceptions import ConfigurationError, GatewayError, JobNotFoundError


@pytest.fixture()
def system():
    return Rafiki(seed=5)


@pytest.fixture()
def dataset():
    return make_image_classification(
        name="food", num_classes=3, image_shape=(3, 8, 8),
        train_per_class=12, val_per_class=6, test_per_class=6,
        difficulty=0.3, seed=11,
    )


def quick_hyper():
    return HyperConf(max_trials=2, max_epochs_per_trial=3, early_stop_patience=3)


def surrogate_factory(entry, data):
    return SurrogateTrainer(seed=1)


class TestFacadeTraining:
    def test_train_job_lifecycle(self, system, dataset):
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(),
            backend_factory=surrogate_factory,
        )
        info = system.get_train_job(job_id)
        assert info.status == "completed"
        assert len(info.model_names) == 2
        assert info.best_performance > 0

    def test_get_models_returns_param_keys(self, system, dataset):
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(),
            backend_factory=surrogate_factory,
        )
        specs = system.get_models(job_id)
        assert specs
        for spec in specs:
            assert system.param_server.has(spec.param_key)

    def test_input_shape_validated(self, system, dataset):
        system.import_images(dataset)
        with pytest.raises(ConfigurationError, match="input_shape"):
            system.create_train_job(
                "t", "ImageClassification", "food", input_shape=(3, 256, 256),
                hyper=quick_hyper(), backend_factory=surrogate_factory,
            )

    def test_output_shape_validated(self, system, dataset):
        system.import_images(dataset)
        with pytest.raises(ConfigurationError, match="output_shape"):
            system.create_train_job(
                "t", "ImageClassification", "food", output_shape=(120,),
                hyper=quick_hyper(), backend_factory=surrogate_factory,
            )

    def test_unknown_job_raises(self, system):
        with pytest.raises(JobNotFoundError):
            system.get_train_job("ghost")

    def test_cluster_resources_released_after_training(self, system, dataset):
        system.import_images(dataset)
        system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(),
            backend_factory=surrogate_factory,
        )
        assert all(node.allocated.gpus == 0 for node in system.cluster.nodes.values())

    def test_master_state_checkpointed(self, system, dataset):
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(),
            backend_factory=surrogate_factory,
        )
        info = system.get_train_job(job_id)
        study_name = f"{job_id}/{info.model_names[0]}"
        assert system.checkpoints.has(study_name)


class TestFacadeInference:
    def _trained(self, system, dataset):
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(), num_workers=2
        )
        return system.get_models(job_id)

    def test_deploy_and_query_real_models(self, system, dataset):
        specs = self._trained(system, dataset)
        infer_id = system.create_inference_job(specs)
        result = system.query(infer_id, dataset.test_x[0])
        assert 0 <= result["label"] < 3
        assert len(result["votes"]) == len(specs)

    def test_batch_query(self, system, dataset):
        specs = self._trained(system, dataset)
        infer_id = system.create_inference_job(specs)
        result = system.query(infer_id, dataset.test_x[:4])
        assert len(result["label"]) == 4

    def test_stopped_job_rejects_queries(self, system, dataset):
        specs = self._trained(system, dataset)
        infer_id = system.create_inference_job(specs)
        system.stop_inference_job(infer_id)
        with pytest.raises(ConfigurationError, match="not running"):
            system.query(infer_id, dataset.test_x[0])

    def test_empty_model_list_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.create_inference_job([])


class TestGateway:
    def test_unknown_route_404(self, system):
        gateway = Gateway(system)
        response = gateway.handle("GET", "/nope")
        assert response.status == 404

    def test_bad_train_body_400(self, system):
        gateway = Gateway(system)
        response = gateway.handle("POST", "/train", {"name": "x"})
        assert response.status == 400
        assert "task" in response.body["error"]

    def test_unknown_job_404(self, system):
        gateway = Gateway(system)
        response = gateway.handle("GET", "/train/ghost")
        assert response.status == 404

    def test_non_json_body_rejected(self, system):
        gateway = Gateway(system)
        response = gateway.handle("POST", "/train", {"x": object()})
        assert response.status == 400

    def test_missing_body_field_is_400_not_404(self, system):
        """Regression: a handler's KeyError on the request body used to
        fall through to the catch-all and surface as 404 — blaming a
        missing *resource* for what is a malformed *request*."""
        gateway = Gateway(system)
        response = gateway.handle(
            "POST", "/inference", {"models": [{"model_name": "m"}]}
        )
        assert response.status == 400
        assert "param_key" in response.body["error"]

    def test_resource_not_found_still_404(self, system):
        gateway = Gateway(system)
        assert gateway.handle("GET", "/train/ghost").status == 404
        assert gateway.handle("GET", "/inference/ghost").status == 404
        assert gateway.handle("POST", "/inference/ghost/redeploy").status == 404

    def test_numpy_handler_result_serialises(self):
        """Regression: numpy scalars/arrays in a handler result crashed
        ``json.dumps`` and took the whole request down."""
        response = Gateway._serialise(
            {"count": np.int64(3), "score": np.float32(0.5),
             "flag": np.bool_(True), "row": np.arange(3)}
        )
        assert response.status == 200
        assert response.body == {"count": 3, "score": 0.5, "flag": True,
                                 "row": [0, 1, 2]}

    def test_unserialisable_handler_result_is_500(self):
        response = Gateway._serialise({"oops": object()})
        assert response.status == 500
        assert "not serialisable" in response.body["error"]

    def test_redeploy_route(self, system, dataset):
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "food", hyper=quick_hyper(), num_workers=2
        )
        models = system.get_models(job_id)
        infer_id = system.create_inference_job(models)
        gateway = Gateway(system)
        response = gateway.handle("POST", f"/inference/{infer_id}/redeploy")
        assert response.ok
        assert response.body["job_id"] == infer_id
        assert len(response.body["models"]) == len(models)

    def test_dataset_routes(self, system, dataset, tmp_path):
        # write a real folder so the JSON route is exercised end to end
        for label in ("a", "b"):
            folder = tmp_path / label
            folder.mkdir()
            for i in range(4):
                np.save(folder / f"{i}.npy", np.zeros((3, 4, 4)))
        gateway = Gateway(system)
        response = gateway.handle("POST", "/datasets", {"directory": str(tmp_path)})
        assert response.ok
        assert response.body["num_classes"] == 2
        listing = gateway.handle("GET", "/datasets")
        assert response.body["name"] in listing.body["datasets"]


class TestSDK:
    def test_figure2_flow(self, system, dataset):
        connect(system)
        name = rafiki.import_images(dataset)
        hyper = rafiki.HyperConf(max_trials=2, max_epochs_per_trial=3)
        job = rafiki.Train(
            name="train", data=name, task="ImageClassification",
            input_shape=(3, 8, 8), output_shape=(3,), hyper=hyper,
        )
        job_id = job.run()
        models = rafiki.get_models(job_id)
        assert models
        infer_id = rafiki.Inference(models).run()
        result = rafiki.query(job=infer_id, data={"img": dataset.test_x[0]})
        assert "label" in result

    def test_query_without_img_rejected(self, system):
        connect(system)
        with pytest.raises(GatewayError):
            rafiki.query(job="x", data={})

    def test_gateway_error_surfaces(self, system):
        connect(system)
        with pytest.raises(GatewayError, match="HTTP 404"):
            rafiki.get_models("ghost")

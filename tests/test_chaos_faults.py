"""Unit tests for the chaos primitives: plans, retries, breakers."""

import numpy as np
import pytest

from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DroppedResponse,
    InjectedFault,
    RetryExhaustedError,
)
from repro.utils.retry import CircuitBreaker, RetryPolicy

pytestmark = pytest.mark.chaos


class TestFaultRule:
    def test_pattern_matching(self):
        rule = FaultRule("paramserver.*", FaultKind.EXCEPTION)
        assert rule.matches("paramserver.push")
        assert rule.matches("paramserver.pull")
        assert not rule.matches("serve.dispatch")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultRule("p", FaultKind.EXCEPTION, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule("p", FaultKind.LATENCY, latency=-0.1)
        with pytest.raises(ConfigurationError):
            FaultRule("p", FaultKind.DROP, after=-1)
        with pytest.raises(ConfigurationError):
            FaultRule("p", FaultKind.DROP, max_faults=-2)


class TestFaultPlan:
    def test_exception_drop_latency_kinds(self):
        plan = FaultPlan([
            FaultRule("a", FaultKind.EXCEPTION),
            FaultRule("b", FaultKind.DROP),
            FaultRule("c", FaultKind.LATENCY, latency=0.25),
        ])
        with pytest.raises(InjectedFault):
            plan.fire("a")
        with pytest.raises(DroppedResponse):
            plan.fire("b")
        assert plan.fire("c") == 0.25
        assert plan.fire("unmatched") == 0.0
        assert plan.kinds_hit() == ["drop", "exception", "latency"]

    def test_after_skips_early_invocations(self):
        plan = FaultPlan([FaultRule("p", FaultKind.EXCEPTION, after=2)])
        assert plan.fire("p") == 0.0
        assert plan.fire("p") == 0.0
        with pytest.raises(InjectedFault):
            plan.fire("p")

    def test_max_faults_caps_injections(self):
        plan = FaultPlan([FaultRule("p", FaultKind.EXCEPTION, max_faults=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("p")
        assert plan.fire("p") == 0.0
        assert plan.faults_injected() == 2

    def test_probability_sequence_is_seeded(self):
        def decisions(seed):
            plan = FaultPlan(
                [FaultRule("p", FaultKind.EXCEPTION, probability=0.5)], seed=seed
            )
            out = []
            for _ in range(40):
                try:
                    plan.fire("p")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert decisions(3) == decisions(3)
        assert decisions(3) != decisions(4)
        assert any(decisions(3)) and not all(decisions(3))

    def test_trace_records_order_and_invocations(self):
        plan = FaultPlan([FaultRule("p", FaultKind.DROP, after=1)])
        plan.fire("p")
        with pytest.raises(DroppedResponse):
            plan.fire("p")
        (event,) = plan.trace()
        assert event == {
            "index": 0, "point": "p", "kind": "drop",
            "invocation": 2, "latency": 0.0,
        }
        assert plan.invocations("p") == 2

    def test_faults_counted_in_telemetry(self):
        plan = FaultPlan([FaultRule("p", FaultKind.EXCEPTION)])
        with pytest.raises(InjectedFault):
            plan.fire("p")
        counter = telemetry.get_registry().counter("repro_chaos_faults_injected_total")
        assert counter.value(point="p", kind="exception") == 1

    def test_adding_a_rule_preserves_other_streams(self):
        # Per-rule RNG streams are keyed by (seed, rule index), so an
        # appended rule never perturbs earlier rules' decisions.
        base = FaultPlan([FaultRule("p", FaultKind.EXCEPTION, probability=0.5)])
        extended = FaultPlan([
            FaultRule("p", FaultKind.EXCEPTION, probability=0.5),
            FaultRule("q", FaultKind.DROP, probability=0.5),
        ])

        def sample(plan, point, n=30):
            out = []
            for _ in range(n):
                try:
                    plan.fire(point)
                    out.append(False)
                except (InjectedFault, DroppedResponse):
                    out.append(True)
            return out

        assert sample(base, "p") == sample(extended, "p")


class TestPlanInstallation:
    def test_fire_without_plan_is_noop(self):
        assert chaos.get_plan() is None
        assert chaos.fire("anything") == 0.0

    def test_active_installs_and_restores(self):
        plan = FaultPlan([FaultRule("p", FaultKind.EXCEPTION)])
        with chaos.active(plan) as installed:
            assert chaos.get_plan() is installed
            with pytest.raises(InjectedFault):
                chaos.fire("p")
        assert chaos.get_plan() is None

    def test_protected_decorator_feeds_breaker(self):
        breaker = CircuitBreaker(name="dep", failure_threshold=2)
        calls = []

        @chaos.protected("dep.call", breaker=breaker)
        def dependency():
            calls.append(1)
            return "ok"

        plan = FaultPlan([FaultRule("dep.call", FaultKind.EXCEPTION, max_faults=2)])
        with chaos.active(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    dependency()
            with pytest.raises(CircuitOpenError):
                dependency()
        assert not calls  # the fault fired before the body every time


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFault("boom")
            return "done"

        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert policy.call(flaky, name="flaky") == "done"
        assert len(attempts) == 3
        counter = telemetry.get_registry().counter("repro_retry_attempts_total")
        assert counter.value(name="flaky") == 3

    def test_exhaustion_raises_with_context(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0)

        def always_fails():
            raise InjectedFault("nope")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always_fails, name="dep")
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, InjectedFault)
        counter = telemetry.get_registry().counter("repro_retry_exhausted_total")
        assert counter.value(name="dep") == 1

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, retry_on=(InjectedFault,))
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            policy.call(bad)
        assert len(calls) == 1

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(jitter=0.2, seed=5)
        b = RetryPolicy(jitter=0.2, seed=5)
        c = RetryPolicy(jitter=0.2, seed=6)
        assert a.delay(1) == b.delay(1)
        assert a.delay(1) != c.delay(1)
        raw = RetryPolicy(jitter=0.0).delay(1)
        assert 0.8 * raw <= a.delay(1) <= 1.2 * raw

    def test_sleep_callable_receives_delays(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)

        def always_fails():
            raise InjectedFault("x")

        with pytest.raises(RetryExhaustedError):
            policy.call(always_fails, sleep=slept.append)
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_timeout_on_manual_clock(self, manual_clock):
        policy = RetryPolicy(max_attempts=2, timeout=1.0, jitter=0.0)

        def slow():
            manual_clock.advance(2.0)
            return "late"

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(slow, name="slow")
        assert isinstance(excinfo.value.last_error, TimeoutError)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self, manual_clock):
        breaker = CircuitBreaker(name="b", failure_threshold=3, recovery_time=10.0)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.check()
        manual_clock.advance(10.0)
        assert breaker.allow()  # half-open probe admitted
        breaker.record_success()
        assert breaker.closed

    def test_half_open_failure_reopens(self, manual_clock):
        breaker = CircuitBreaker(name="b", failure_threshold=1, recovery_time=5.0)
        breaker.record_failure()
        manual_clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_count == 2

    def test_half_open_probe_budget(self, manual_clock):
        breaker = CircuitBreaker(name="b", failure_threshold=1, recovery_time=1.0,
                                 half_open_probes=1)
        breaker.record_failure()
        manual_clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()  # second concurrent probe rejected

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(name="b", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.closed

    def test_transitions_recorded_in_telemetry(self, manual_clock):
        breaker = CircuitBreaker(name="dep", failure_threshold=1, recovery_time=1.0)
        breaker.record_failure()
        manual_clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        counter = telemetry.get_registry().counter("repro_circuit_transitions_total")
        assert counter.value(name="dep", frm="closed", to="open") == 1
        assert counter.value(name="dep", frm="open", to="half_open") == 1
        assert counter.value(name="dep", frm="half_open", to="closed") == 1
        gauge = telemetry.get_registry().gauge("repro_circuit_open")
        assert gauge.value(name="dep") == 0.0


class TestDeterministicJitterStream:
    def test_delay_does_not_touch_global_rng(self):
        state_before = np.random.get_state()[1].copy()
        RetryPolicy(jitter=0.3, seed=1).delay(4)
        assert np.array_equal(np.random.get_state()[1], state_before)

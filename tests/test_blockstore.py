"""Tests for the chunked, content-addressable, replicated block store.

Covers the chunk layer (:mod:`repro.data.blockstore`), the namenode
layer (:mod:`repro.data.fs`), their cluster integration, and the
seeded store-kill chaos scenario. The round-trip tests are
property-based in the seeded-random-size style: byte streams of every
length class around the chunk boundary (0, partial, exact, multiple,
multiple±1) must survive write/read/overwrite/delete bit-identically
at every replication factor.
"""

import json
import random

import numpy as np
import pytest

from repro.data import BlockStore, DataStore, FileNamespace, chunk_digest, split_chunks
from repro.exceptions import (
    ChunkLostError,
    ConfigurationError,
    NotFoundError,
    StorageError,
)

CHUNK = 256


def _random_bytes(rng: random.Random, length: int) -> bytes:
    return rng.randbytes(length)


def _lengths(rng: random.Random) -> list[int]:
    """Every length class around the chunk boundary, plus random fill."""
    fixed = [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK, 3 * CHUNK - 1,
             4 * CHUNK, 4 * CHUNK + 1]
    return fixed + [rng.randrange(0, 4 * CHUNK + 2) for _ in range(8)]


class TestChunking:
    def test_split_sizes(self):
        chunks = split_chunks(b"x" * 1000, 256)
        assert [len(c) for c in chunks] == [256, 256, 256, 232]

    def test_split_empty_is_no_chunks(self):
        assert split_chunks(b"", 256) == []

    def test_split_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            split_chunks(b"x", 0)

    def test_digest_is_content_address(self):
        assert chunk_digest(b"abc") == chunk_digest(b"abc")
        assert chunk_digest(b"abc") != chunk_digest(b"abd")

    def test_identical_chunks_stored_once(self):
        store = BlockStore(nodes=2, replicas=1, chunk_size=CHUNK)
        store.put(b"A" * CHUNK * 3)
        assert store.audit()["chunks"] == 1
        assert store.dedup_hits == 2

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            BlockStore(nodes=0)
        with pytest.raises(ConfigurationError):
            BlockStore(replicas=0)
        with pytest.raises(ConfigurationError):
            BlockStore(chunk_size=0)

    def test_replicas_clamped_to_nodes(self):
        assert BlockStore(nodes=2, replicas=5).replicas == 2


class TestRoundTripProperties:
    """Seeded random-size round trips at every replication factor."""

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_write_read_bit_identical(self, replicas):
        rng = random.Random(100 + replicas)
        store = BlockStore(nodes=3, replicas=replicas, chunk_size=CHUNK)
        fs = FileNamespace(store)
        blobs = {f"p/{i}": _random_bytes(rng, n)
                 for i, n in enumerate(_lengths(rng))}
        for path, data in blobs.items():
            fs.write(path, data)
        for path, data in blobs.items():
            assert fs.read(path) == data

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_overwrite_then_read_all_versions(self, replicas):
        rng = random.Random(200 + replicas)
        store = BlockStore(nodes=3, replicas=replicas, chunk_size=CHUNK)
        fs = FileNamespace(store)
        history = [_random_bytes(rng, n) for n in _lengths(rng)]
        for data in history:
            fs.write("path", data)
        assert fs.read("path") == history[-1]
        for version, data in enumerate(history, start=1):
            assert fs.read("path", version=version) == data

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_delete_frees_every_chunk(self, replicas):
        rng = random.Random(300 + replicas)
        store = BlockStore(nodes=3, replicas=replicas, chunk_size=CHUNK)
        fs = FileNamespace(store)
        for i, n in enumerate(_lengths(rng)):
            fs.write(f"p/{i}", _random_bytes(rng, n))
        for path in fs.list_paths():
            fs.delete(path)
        audit = store.audit()
        assert audit["chunks"] == 0
        assert audit["unique_bytes"] == 0
        assert all(not node.chunks for node in store.nodes)

    def test_chunk_replica_counts_match_factor(self):
        rng = random.Random(7)
        store = BlockStore(nodes=4, replicas=2, chunk_size=CHUNK)
        fs = FileNamespace(store)
        fs.write("p", _random_bytes(rng, 10 * CHUNK))
        for digest, holders in store._directory.items():
            assert len(holders) == 2, digest
            assert len(set(holders)) == 2

    def test_dedup_ratio_on_near_duplicate_checkpoints(self):
        """Successive near-dup checkpoints collapse to the changed chunks."""
        rng = random.Random(11)
        store = BlockStore(nodes=1, replicas=1, chunk_size=CHUNK)
        fs = FileNamespace(store)
        ckpt = bytearray(_random_bytes(rng, 16 * CHUNK))
        for version in range(10):
            offset = (version * 131) % (len(ckpt) - 8)
            ckpt[offset : offset + 8] = _random_bytes(rng, 8)
            fs.write("ckpt", bytes(ckpt))
        audit = store.audit()
        # 10 versions x 16 chunks logical; each version dirties at most
        # 2 chunks, so >= 16 + 9*2 = 34 would be the worst case and the
        # expected ratio is at least 160/34 > 4.
        assert audit["dedup_ratio"] >= 4.0
        assert audit["chunks"] <= 34

    def test_logical_bytes_accounting(self):
        store = BlockStore(nodes=1, replicas=1, chunk_size=CHUNK)
        fs = FileNamespace(store)
        fs.write("a", b"x" * CHUNK)
        fs.write("b", b"x" * CHUNK)
        audit = store.audit()
        assert audit["unique_bytes"] == CHUNK
        assert audit["logical_bytes"] == 2 * CHUNK
        assert audit["dedup_ratio"] == 2.0


class TestNamespace:
    def test_missing_path_raises(self):
        fs = FileNamespace(BlockStore(nodes=1, replicas=1))
        with pytest.raises(NotFoundError):
            fs.read("ghost")
        with pytest.raises(NotFoundError):
            fs.stat("ghost")
        with pytest.raises(NotFoundError):
            fs.versions("ghost")
        with pytest.raises(NotFoundError):
            fs.delete("ghost")

    def test_missing_version_raises(self):
        fs = FileNamespace(BlockStore(nodes=1, replicas=1))
        fs.write("p", b"one")
        with pytest.raises(NotFoundError):
            fs.read("p", version=2)

    def test_empty_path_rejected(self):
        fs = FileNamespace(BlockStore(nodes=1, replicas=1))
        with pytest.raises(StorageError):
            fs.write("", b"data")

    def test_list_paths_by_prefix(self):
        fs = FileNamespace(BlockStore(nodes=1, replicas=1))
        fs.write("a/1", b"x")
        fs.write("a/2", b"y")
        fs.write("b/1", b"z")
        assert fs.list_paths("a/") == ["a/1", "a/2"]

    def test_manifest_metadata(self):
        fs = FileNamespace(BlockStore(nodes=1, replicas=1, chunk_size=4))
        manifest = fs.write("p", b"abcdefgh", writer="w0")
        assert manifest.version == 1
        assert manifest.length == 8
        assert manifest.chunk_size == 4
        assert len(manifest.digests) == 2
        assert manifest.writer == "w0"

    def test_concurrent_writers_last_writer_wins(self):
        """Interleaved two-phase writes commit whole manifests only."""
        fs = FileNamespace(BlockStore(nodes=1, replicas=1, chunk_size=4))
        first = fs.begin_write("p", b"AAAABBBBCCCC", writer="w1")
        second = fs.begin_write("p", b"XXXXYYYYZZZZ", writer="w2")
        fs.commit(first)
        committed = fs.commit(second)
        # The last committer wins with its *complete* chunk list — no
        # mixture of w1's and w2's chunks.
        assert fs.read("p") == b"XXXXYYYYZZZZ"
        assert committed.digests == tuple(
            chunk_digest(c) for c in split_chunks(b"XXXXYYYYZZZZ", 4)
        )
        # And the loser's version is still fully readable history.
        assert fs.read("p", version=1) == b"AAAABBBBCCCC"
        assert [m.writer for m in fs.versions("p")] == ["w1", "w2"]

    def test_delete_mid_read_raises_not_partial(self):
        """A reader must get NotFound, never a truncated blob."""
        fs = FileNamespace(BlockStore(nodes=1, replicas=1, chunk_size=4))
        fs.write("p", b"AAAABBBBCCCCDDDD")
        reader = fs.read_chunks("p")
        assert next(reader) == b"AAAA"
        fs.delete("p")
        with pytest.raises(NotFoundError, match="mid-read"):
            next(reader)

    def test_overwrite_mid_read_keeps_old_version_readable(self):
        """Version retention means an overwrite does NOT break readers."""
        fs = FileNamespace(BlockStore(nodes=1, replicas=1, chunk_size=4))
        fs.write("p", b"AAAABBBB")
        reader = fs.read_chunks("p")
        assert next(reader) == b"AAAA"
        fs.write("p", b"XXXXYYYY")
        assert next(reader) == b"BBBB"

    def test_shared_store_dedups_across_namespaces(self):
        store = BlockStore(nodes=1, replicas=1, chunk_size=CHUNK)
        one = FileNamespace(store, name="one")
        two = FileNamespace(store, name="two")
        data = b"q" * (4 * CHUNK)
        one.write("a", data)
        two.write("b", data)
        assert store.audit()["chunks"] == 1
        # Namespaces are isolated: deleting in one leaves the other's
        # reference (and the shared bytes) intact.
        one.delete("a")
        assert two.read("b") == data


class TestReplication:
    def _populated(self, replicas=2, nodes=3, paths=6):
        rng = random.Random(42)
        store = BlockStore(nodes=nodes, replicas=replicas, chunk_size=CHUNK)
        fs = FileNamespace(store)
        blobs = {f"p/{i}": _random_bytes(rng, rng.randrange(1, 4 * CHUNK))
                 for i in range(paths)}
        for path, data in blobs.items():
            fs.write(path, data)
        return store, fs, blobs

    def test_node_death_keeps_every_file_readable(self):
        store, fs, blobs = self._populated()
        store.kill_node("dn-1")
        for path, data in blobs.items():
            assert fs.read(path) == data
        audit = store.audit()
        assert audit["lost"] == []
        assert audit["under_replicated"] == []
        assert store.rereplications > 0

    def test_single_replica_death_loses_chunks_until_rejoin(self):
        store, fs, blobs = self._populated(replicas=1)
        victim = store._directory[next(iter(store._directory))][0]
        store.kill_node(victim)
        assert store.audit()["lost"] != []
        with pytest.raises(ChunkLostError):
            for path in blobs:
                fs.read(path)
        # The disk survived: rejoin resurrects every lost chunk.
        store.rejoin_node(victim)
        assert store.audit()["lost"] == []
        for path, data in blobs.items():
            assert fs.read(path) == data

    def test_delete_while_dead_goes_to_trash_and_reconciles(self):
        store, fs, blobs = self._populated()
        victim = "dn-0"
        before = dict(store.node(victim).chunks)
        store.kill_node(victim)
        for path in list(blobs):
            fs.delete(path)
        assert store.audit()["chunks"] == 0
        # The dead node still physically holds its copies.
        assert store.node(victim).chunks == before
        removed = store.rejoin_node(victim)
        assert removed == len(before)
        assert store.node(victim).chunks == {}
        assert store.audit()["trash_pending"] == {}

    def test_rejoin_trims_over_replicated_chunks(self):
        store, fs, blobs = self._populated()
        store.kill_node("dn-2")
        store.repair()
        # Everything is back at R=2 on dn-0/dn-1; dn-2's copies are now
        # surplus and must all be trimmed by the rejoin trash pass.
        held = len(store.node("dn-2").chunks)
        assert held > 0
        removed = store.rejoin_node("dn-2")
        assert removed == held
        audit = store.audit()
        assert audit["lost"] == []
        assert audit["under_replicated"] == []
        for path, data in blobs.items():
            assert fs.read(path) == data

    def test_mid_write_kill_zero_bytes_lost(self):
        """commit() re-stores chunks whose every replica died mid-write."""
        rng = random.Random(5)
        store = BlockStore(nodes=3, replicas=2, chunk_size=CHUNK)
        fs = FileNamespace(store)
        data = _random_bytes(rng, 8 * CHUNK)

        def kill_two(index, digest):
            if index == 3:
                store.kill_node("dn-0")
                store.kill_node("dn-1")

        manifest = fs.write("p", data, on_chunk=kill_two)
        assert fs.read("p") == data
        assert manifest.length == len(data)
        audit = store.audit()
        assert audit["lost"] == []

    def test_repair_restores_factor(self):
        store, fs, blobs = self._populated()
        store.kill_node("dn-0")
        store.rejoin_node("dn-0")
        assert store.repair() == 0
        assert store.audit()["under_replicated"] == []

    def test_ensure_rejects_mismatched_digests(self):
        store = BlockStore(nodes=1, replicas=1, chunk_size=CHUNK)
        digests = store.put(b"x" * CHUNK)
        with pytest.raises(StorageError):
            store.ensure(digests, b"y" * 3 * CHUNK)

    def test_get_unknown_chunk_raises(self):
        store = BlockStore(nodes=1, replicas=1)
        with pytest.raises(ChunkLostError):
            store.get_chunk("0" * 64)

    def test_heartbeat_failure_detection(self, manual_clock):
        store, fs, blobs = self._populated()
        manual_clock.advance(100.0)
        store.heartbeat("dn-0")
        store.heartbeat("dn-1")
        assert store.detect_failures(timeout=50.0) == ["dn-2"]
        assert not store.node("dn-2").alive
        for path, data in blobs.items():
            assert fs.read(path) == data


class TestDataStoreRebase:
    """DataStore blobs ride the BlockStore behind the unchanged API."""

    def test_versions_reachable_after_overwrite(self):
        store = DataStore()
        store.put_blob("model/ckpt", b"version one")
        store.put_blob("model/ckpt", b"version two")
        assert store.get_blob("model/ckpt") == b"version two"
        assert store.get_blob("model/ckpt", version=1) == b"version one"
        manifests = store.versions("model/ckpt")
        assert [m.version for m in manifests] == [1, 2]

    def test_audit_and_repair_exposed(self):
        store = DataStore()
        store.put_blob("a", b"payload")
        audit = store.audit()
        assert audit["lost"] == []
        assert store.repair() == 0

    def test_shared_block_store_dedups_across_stores(self):
        shared = BlockStore(nodes=1, replicas=1, chunk_size=CHUNK)
        one = DataStore("one", block_store=shared)
        two = DataStore("two", block_store=shared)
        data = b"d" * (3 * CHUNK)
        one.put_blob("x", data)
        two.put_blob("y", data)
        assert shared.audit()["chunks"] == 1
        assert two.get_blob("y") == data


class TestClusterIntegration:
    def _cluster(self, nodes=4, cpus=8):
        from repro.cluster import ClusterManager, Node
        from repro.cluster.node import Resources

        manager = ClusterManager()
        for i in range(nodes):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=cpus, gpus=0, memory_gb=64))
            )
        return manager

    def test_registration_spreads_datanodes(self):
        from repro.cluster.container import ContainerRole

        manager = self._cluster()
        store = BlockStore(nodes=3, replicas=2, chunk_size=CHUNK)
        job = store.register_with_cluster(manager)
        hosts = [c.node_name for c in job.containers
                 if c.role is ContainerRole.DATA]
        assert len(set(hosts)) == 3
        with pytest.raises(ConfigurationError):
            store.register_with_cluster(manager)

    def test_node_failure_rereplicates_and_replacement_resyncs(self):
        rng = random.Random(9)
        manager = self._cluster()
        store = BlockStore(nodes=3, replicas=2, chunk_size=CHUNK)
        store.register_with_cluster(manager)
        fs = FileNamespace(store)
        blobs = {f"p/{i}": _random_bytes(rng, rng.randrange(1, 4 * CHUNK))
                 for i in range(6)}
        for path, data in blobs.items():
            fs.write(path, data)
        victim = store.nodes[0]
        host = manager.containers[victim.container_id].node_name
        manager.fail_node(host)
        # Capacity exists elsewhere: the replacement datanode restarts
        # on a different machine with a fresh disk and is re-synced.
        assert victim.alive
        assert victim.node_name != host
        store.repair()
        audit = store.audit()
        assert audit["lost"] == []
        assert audit["under_replicated"] == []
        for path, data in blobs.items():
            assert fs.read(path) == data

    def test_same_host_restart_reconciles_preserved_disk(self):
        rng = random.Random(10)
        # Tight capacity: the replacement can only ever fit back on its
        # original machine, so the disk-preserving path is exercised.
        manager = self._cluster(cpus=2)
        store = BlockStore(nodes=3, replicas=2, chunk_size=CHUNK)
        from repro.cluster.node import Resources

        store.register_with_cluster(
            manager, worker_request=Resources(cpus=2, gpus=0, memory_gb=8)
        )
        fs = FileNamespace(store)
        for i in range(6):
            fs.write(f"p/{i}", _random_bytes(rng, rng.randrange(1, 4 * CHUNK)))
        victim = store.nodes[0]
        host = manager.containers[victim.container_id].node_name
        manager.fail_node(host)
        assert not store.live_nodes() or victim not in store.live_nodes()
        fs.delete("p/0")
        manager.recover_node(host)
        assert victim.alive
        assert victim.node_name == host
        audit = store.audit()
        assert audit["lost"] == []
        assert audit["trash_pending"] == {}


@pytest.mark.chaos
class TestStoreKillScenario:
    def test_store_kill_loses_zero_bytes(self):
        from repro.chaos.scenarios import run_store_kill_scenario

        result = run_store_kill_scenario(seed=0)
        assert result["victims"]["mid_write"]["deaths"] >= 1
        assert result["victims"]["mid_read"]["deaths"] >= 1
        assert result["results"]["mid_write_intact"]
        assert result["results"]["mid_read_intact"]
        assert result["corrupt"] == []
        audit = result["audit"]
        assert audit["lost"] == []
        assert audit["under_replicated"] == []
        assert audit["trash_reconciled"] > 0
        assert audit["rereplications"] > 0

    def test_same_seed_traces_bit_identical(self):
        from repro.chaos.scenarios import run_store_kill_scenario

        first = run_store_kill_scenario(seed=0)
        second = run_store_kill_scenario(seed=0)
        assert json.dumps(first["trace"], sort_keys=True) == json.dumps(
            second["trace"], sort_keys=True
        )

    def test_different_seed_traces_differ(self):
        from repro.chaos.scenarios import run_store_kill_scenario

        first = run_store_kill_scenario(seed=0)
        other = run_store_kill_scenario(seed=3)
        assert json.dumps(first["trace"], sort_keys=True) != json.dumps(
            other["trace"], sort_keys=True
        )


class TestShardedPSOnBlockStore:
    def test_checkpoint_history_dedups_across_replicas_and_versions(self):
        from repro.paramserver import ShardedParameterServer

        sps = ShardedParameterServer(
            shards=3, replicas=2,
            block_store=BlockStore(nodes=1, replicas=1, chunk_size=4096),
        )
        rng = np.random.default_rng(0)
        state = {"w": rng.standard_normal((64, 64)).astype(np.float32)}
        for i in range(10):
            state["w"][i, :4] += 0.01
            sps.put("model/ckpt", {k: v.copy() for k, v in state.items()},
                    performance=float(i))
        audit = sps.block_store.audit()
        assert audit["dedup_ratio"] > 2.0
        got = sps.get("model/ckpt")
        np.testing.assert_array_equal(got["w"], state["w"])

    def test_default_block_store_is_shared_across_shards(self):
        from repro.paramserver import ShardedParameterServer

        sps = ShardedParameterServer(shards=2, replicas=2)
        assert sps.block_store is not None
        rng = np.random.default_rng(1)
        sps.put("k", {"w": rng.standard_normal((32, 32))})
        # Both shard replicas wrote the same pickle: stored once.
        assert sps.block_store.dedup_hits > 0

"""Tests for the RL pieces: action space, state builder, actor-critic."""

import numpy as np
import pytest

from repro.core.serve import ActionSpace, ActorCritic, RequestQueue, StateBuilder
from repro.exceptions import ConfigurationError
from repro.zoo import get_profile

PROFILES = [get_profile(n) for n in ("inception_v3", "inception_v4")]
BATCHES = (16, 32, 64)


class TestActionSpace:
    def test_size_matches_paper_formula(self):
        """|A| = (2^|M| - 1) * |B| (Section 5.2)."""
        space = ActionSpace(3, (16, 32, 48, 64))
        assert len(space) == (2**3 - 1) * 4

    def test_decode_covers_all_subsets(self):
        space = ActionSpace(2, BATCHES)
        subsets = {space.decode(i).subset for i in range(len(space))}
        assert subsets == {(0,), (1,), (0, 1)}

    def test_empty_selection_excluded(self):
        space = ActionSpace(2, BATCHES)
        assert all(space.decode(i).subset for i in range(len(space)))

    def test_valid_mask_restricts_to_idle(self):
        space = ActionSpace(2, BATCHES)
        mask = space.valid_mask([True, False])
        for i in np.flatnonzero(mask):
            assert space.decode(i).subset == (0,)

    def test_selection_vector(self):
        space = ActionSpace(3, BATCHES)
        action = space.decode(len(space) - 1)
        vector = action.selection_vector(3)
        assert vector.dtype == bool
        assert list(np.flatnonzero(vector)) == list(action.subset)

    def test_mask_length_checked(self):
        with pytest.raises(ConfigurationError):
            ActionSpace(2, BATCHES).valid_mask([True])


class TestStateBuilder:
    def test_dim_with_and_without_model_status(self):
        with_status = StateBuilder(PROFILES, BATCHES, tau=0.56, queue_window=8)
        without = StateBuilder(PROFILES, BATCHES, tau=0.56, queue_window=8,
                               include_model_status=False)
        assert with_status.dim == 8 + 1 + 2 * 3 + 2
        assert without.dim == 8 + 1

    def test_state_vector_shape_and_content(self):
        builder = StateBuilder(PROFILES, BATCHES, tau=0.56, queue_window=4)
        queue = RequestQueue()
        queue.push(0.0)
        queue.push(0.2)
        state = builder.build(queue, now=0.56, busy_until=[1.12, 0.0])
        assert state.shape == (builder.dim,)
        assert state[0] == pytest.approx(1.0)  # waited exactly tau
        # model 0 busy for another tau
        assert state[-2] == pytest.approx(1.0)
        assert state[-1] == pytest.approx(0.0)

    def test_waits_clipped(self):
        builder = StateBuilder(PROFILES, BATCHES, tau=0.1, queue_window=2, wait_clip=3.0)
        queue = RequestQueue()
        queue.push(0.0)
        state = builder.build(queue, now=100.0, busy_until=[0.0, 0.0])
        assert state[0] == 3.0


class TestActorCritic:
    def test_bandit_convergence(self):
        rng = np.random.default_rng(0)
        learner = ActorCritic(state_dim=4, num_actions=4, hidden=(16,), lr=5e-3,
                              gamma=0.0, horizon=32, seed=1)
        for _ in range(4000):
            context = int(rng.integers(0, 2))
            state = np.zeros(4)
            state[context] = 1.0
            action = learner.act(state)
            best = 0 if context == 0 else 3
            learner.give_reward(1.0 if action == best else 0.0)
        for context, best in ((0, 0), (1, 3)):
            state = np.zeros(4)
            state[context] = 1.0
            probs = learner.masked_probs(state, None)
            assert probs.argmax() == best
            assert probs[best] > 0.8

    def test_mask_prevents_invalid_actions(self):
        learner = ActorCritic(state_dim=2, num_actions=3, hidden=(8,), seed=0)
        mask = np.array([False, True, False])
        for _ in range(50):
            action = learner.act(np.zeros(2), mask)
            learner.give_reward(0.0)
            assert action == 1

    def test_all_invalid_mask_rejected(self):
        learner = ActorCritic(state_dim=2, num_actions=3, seed=0)
        with pytest.raises(ConfigurationError):
            learner.act(np.zeros(2), np.zeros(3, dtype=bool))

    def test_reward_without_action_rejected(self):
        learner = ActorCritic(state_dim=2, num_actions=3, seed=0)
        with pytest.raises(ConfigurationError):
            learner.give_reward(1.0)

    def test_entropy_coef_anneals(self):
        learner = ActorCritic(state_dim=2, num_actions=2, entropy_coef=0.1,
                              entropy_decay=0.5, entropy_min=0.01, horizon=4, seed=0)
        for _ in range(16):
            learner.act(np.zeros(2))
            learner.give_reward(0.0)
        assert learner.updates == 4
        assert learner.entropy_coef < 0.1

    def test_state_dict_roundtrip(self):
        a = ActorCritic(state_dim=3, num_actions=4, hidden=(8,), seed=1)
        b = ActorCritic(state_dim=3, num_actions=4, hidden=(8,), seed=2)
        b.load_state_dict(a.state_dict())
        state = np.array([0.1, 0.2, 0.3])
        np.testing.assert_allclose(
            a.masked_probs(state, None), b.masked_probs(state, None)
        )

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            ActorCritic(state_dim=2, num_actions=2, gamma=1.0)

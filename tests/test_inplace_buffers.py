"""Buffer-aliasing guarantees of the training hot loop.

The engine promises that parameter, gradient and running-stat arrays
are allocated once at build time and then only ever written *in place*
(``arr[...] = ...``, ``+=``): ``zero_grads``, ``backward`` and
``optimizer.step`` must never rebind a dict entry to a fresh array.
External references — the parameter server's zero-copy views, warm
starts, these tests — rely on that aliasing staying intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import (
    SGD,
    Adam,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
    RMSProp,
    SoftmaxCrossEntropy,
)


def build_net(rng) -> Network:
    net = Network(
        [
            Conv2D(4, kernel_size=3, name="conv"),
            BatchNorm(name="bn"),
            ReLU(name="relu"),
            MaxPool2D(name="pool"),
            Flatten(name="flat"),
            Dropout(name="drop"),
            Dense(3, name="out"),
        ]
    )
    return net.build((2, 8, 8), rng)


def array_ids(mapping: dict[str, np.ndarray]) -> dict[str, int]:
    return {name: id(arr) for name, arr in mapping.items()}


def train_steps(net: Network, optimizer, rng, steps: int = 3) -> None:
    loss = SoftmaxCrossEntropy()
    x = rng.standard_normal((6, 2, 8, 8))
    y = rng.integers(0, 3, size=6)
    for _ in range(steps):
        net.zero_grads()
        logits = net.forward(x, training=True)
        loss.forward(logits, y)
        net.backward(loss.backward())
        optimizer.step(net.params, net.grads)


@pytest.mark.parametrize(
    "make_optimizer",
    [
        lambda: SGD(lr=0.01, momentum=0.9, weight_decay=1e-4),
        lambda: SGD(lr=0.01),
        lambda: RMSProp(lr=0.001, weight_decay=1e-4),
        lambda: Adam(lr=0.001, weight_decay=1e-4),
    ],
    ids=["sgd-momentum", "sgd-plain", "rmsprop", "adam"],
)
def test_training_never_rebinds_arrays(rng, make_optimizer):
    net = build_net(rng)
    param_ids = array_ids(net.params)
    grad_ids = array_ids(net.grads)
    buffer_ids = array_ids(net.buffers)

    train_steps(net, make_optimizer(), rng)

    assert array_ids(net.params) == param_ids
    assert array_ids(net.grads) == grad_ids
    assert array_ids(net.buffers) == buffer_ids


def test_zero_grads_writes_in_place(rng):
    net = build_net(rng)
    optimizer = SGD(lr=0.01)
    train_steps(net, optimizer, rng, steps=1)
    grad_ids = array_ids(net.grads)
    net.zero_grads()
    assert array_ids(net.grads) == grad_ids
    for grad in net.grads.values():
        np.testing.assert_array_equal(grad, 0.0)


def test_batchnorm_running_stats_update_in_place(rng):
    bn = BatchNorm(name="bn")
    bn.build((5,), rng)
    mean, var = bn.buffers["running_mean"], bn.buffers["running_var"]
    before = mean.copy()
    bn.forward(rng.standard_normal((16, 5)), training=True)
    assert bn.buffers["running_mean"] is mean
    assert bn.buffers["running_var"] is var
    assert not np.array_equal(mean, before)  # and they really moved


def test_external_references_track_updates(rng):
    """A live view taken before training observes every update — the
    property the parameter server's zero-copy reads depend on."""
    net = build_net(rng)
    view = net.params["conv/W"]
    before = view.copy()
    train_steps(net, SGD(lr=0.05, momentum=0.9), rng, steps=2)
    assert net.params["conv/W"] is view
    assert not np.array_equal(view, before)

"""Tests for the monitoring dashboard."""

import pytest

from repro.api.gateway import Gateway
from repro.api.monitor import dashboard_data, render_dashboard
from repro.core.system import Rafiki
from repro.core.tune import HyperConf
from repro.data import make_image_classification


@pytest.fixture(scope="module")
def busy_system():
    system = Rafiki(seed=12)
    dataset = make_image_classification(
        name="d", num_classes=2, image_shape=(3, 8, 8),
        train_per_class=8, val_per_class=4, test_per_class=4,
        difficulty=0.3, seed=12,
    )
    system.import_images(dataset)
    job_id = system.create_train_job(
        "food-train", "ImageClassification", "d",
        hyper=HyperConf(max_trials=2, max_epochs_per_trial=2),
    )
    infer_id = system.create_inference_job(system.get_models(job_id))
    system.query(infer_id, dataset.test_x[0])
    system.query(infer_id, dataset.test_x[0])  # second query hits the cache
    return system, job_id, infer_id


class TestDashboardData:
    def test_train_jobs_listed(self, busy_system):
        system, job_id, _ = busy_system
        data = dashboard_data(system)
        jobs = {row["job_id"]: row for row in data["train_jobs"]}
        assert job_id in jobs
        assert jobs[job_id]["status"] == "completed"
        assert jobs[job_id]["best"] > 0

    def test_inference_jobs_listed_with_cache_stats(self, busy_system):
        system, _, infer_id = busy_system
        data = dashboard_data(system)
        jobs = {row["job_id"]: row for row in data["inference_jobs"]}
        assert jobs[infer_id]["queries_served"] == 2
        assert jobs[infer_id]["cache_hit_rate"] == pytest.approx(0.5)

    def test_cluster_utilisation(self, busy_system):
        system, _, _ = busy_system
        data = dashboard_data(system)
        assert len(data["nodes"]) == len(system.cluster.nodes)
        # the inference job still holds GPUs
        assert sum(row["gpus_used"] for row in data["nodes"]) > 0

    def test_parameter_server_summary(self, busy_system):
        system, _, _ = busy_system
        data = dashboard_data(system)
        assert data["parameter_server"]["keys"] >= 1

    def test_empty_system(self):
        data = dashboard_data(Rafiki(seed=0))
        assert data["train_jobs"] == []
        assert data["inference_jobs"] == []


class TestRendering:
    def test_render_contains_sections(self, busy_system):
        system, job_id, infer_id = busy_system
        text = render_dashboard(system)
        assert "training jobs" in text
        assert job_id in text
        assert infer_id in text
        assert "parameter server" in text

    def test_render_empty_system(self):
        text = render_dashboard(Rafiki(seed=0))
        assert "(none)" in text


class TestGatewayRoute:
    def test_dashboard_route(self, busy_system):
        system, job_id, _ = busy_system
        gateway = Gateway(system)
        response = gateway.handle("GET", "/dashboard")
        assert response.ok
        assert any(row["job_id"] == job_id for row in response.body["train_jobs"])

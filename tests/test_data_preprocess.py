"""Tests for preprocessing operators (Table 1 group 1)."""

import numpy as np
import pytest

from repro.data import (
    Compose,
    PadCrop,
    RandomFlip,
    RandomRotation,
    Standardize,
    ZCAWhitening,
    standard_cifar_pipeline,
)
from repro.exceptions import ConfigurationError


class TestStandardize:
    def test_unit_stats_after_fit(self, rng):
        x = rng.normal(5.0, 3.0, size=(100, 3, 8, 8))
        op = Standardize().fit(x)
        out = op(x, rng)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_unfitted_raises(self, rng):
        with pytest.raises(ConfigurationError, match="fitted"):
            Standardize()(np.zeros((1, 3, 4, 4)), rng)

    def test_per_channel(self, rng):
        x = np.zeros((10, 2, 4, 4))
        x[:, 0] = rng.normal(0, 1, size=(10, 4, 4))
        x[:, 1] = rng.normal(100, 10, size=(10, 4, 4))
        op = Standardize().fit(x)
        out = op(x, rng)
        assert abs(out[:, 1].mean()) < 1e-8


class TestPadCrop:
    def test_preserves_shape(self, rng):
        op = PadCrop(pad=4)
        x = rng.normal(size=(5, 3, 32, 32))
        assert op(x, rng).shape == x.shape

    def test_deterministic_centre_crop_is_identity(self, rng):
        op = PadCrop(pad=4, deterministic=True)
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_allclose(op(x, rng), x)

    def test_zero_pad_is_identity(self, rng):
        op = PadCrop(pad=0)
        x = rng.normal(size=(2, 3, 8, 8))
        assert op(x, rng) is x

    def test_crops_come_from_padded_image(self, rng):
        op = PadCrop(pad=2)
        x = np.ones((50, 1, 4, 4))
        out = op(x, rng)
        # every crop either keeps the ones or pulls in zero padding
        assert out.max() == 1.0
        assert out.min() == 0.0  # some crop must include padding


class TestRandomFlip:
    def test_p_zero_identity(self, rng):
        op = RandomFlip(p=0.0)
        x = rng.normal(size=(4, 1, 3, 3))
        assert op(x, rng) is x

    def test_p_one_flips_everything(self, rng):
        op = RandomFlip(p=1.0)
        x = rng.normal(size=(4, 1, 3, 3))
        np.testing.assert_allclose(op(x, rng), x[..., ::-1])

    def test_flip_rate_near_p(self, rng):
        op = RandomFlip(p=0.5)
        x = np.zeros((2000, 1, 1, 2))
        x[..., 0] = 1.0
        out = op(x, rng)
        flipped = (out[..., 1] == 1.0).mean()
        assert 0.45 < flipped < 0.55


class TestRandomRotation:
    def test_preserves_shape(self, rng):
        op = RandomRotation(30.0)
        x = rng.normal(size=(3, 2, 8, 8))
        assert op(x, rng).shape == x.shape

    def test_zero_degrees_identity(self, rng):
        op = RandomRotation(0.0)
        x = rng.normal(size=(2, 1, 4, 4))
        assert op(x, rng) is x

    def test_rejects_bad_domain(self):
        with pytest.raises(ConfigurationError):
            RandomRotation(360.0)


class TestZCA:
    def test_whitened_covariance_is_identity(self, rng):
        x = rng.normal(size=(300, 1, 4, 4))
        x[:, 0, 0, 0] += x[:, 0, 0, 1]  # inject (non-degenerate) correlation
        op = ZCAWhitening(eps=1e-6).fit(x)
        out = op(x, rng).reshape(300, -1)
        cov = out.T @ out / 300
        np.testing.assert_allclose(np.diag(cov), 1.0, atol=0.05)
        off_diag = cov - np.diag(np.diag(cov))
        assert np.abs(off_diag).max() < 0.05

    def test_pca_mode_changes_basis(self, rng):
        x = rng.normal(size=(50, 1, 3, 3))
        zca = ZCAWhitening(zca=True).fit(x)
        pca = ZCAWhitening(zca=False).fit(x)
        assert zca(x, rng).shape == x.shape
        assert pca(x, rng).shape == (50, 9)

    def test_unfitted_raises(self, rng):
        with pytest.raises(ConfigurationError):
            ZCAWhitening()(np.zeros((1, 1, 2, 2)), rng)


class TestCompose:
    def test_order_is_respected(self, rng):
        trace = []

        def op_a(batch, r):
            trace.append("a")
            return batch

        def op_b(batch, r):
            trace.append("b")
            return batch

        Compose([op_a, op_b])(np.zeros((1, 1, 2, 2)), rng)
        assert trace == ["a", "b"]

    def test_standard_cifar_pipeline(self, rng):
        x = rng.normal(2.0, 5.0, size=(20, 3, 16, 16))
        pipeline = standard_cifar_pipeline(x, pad=2)
        out = pipeline(x, rng)
        assert out.shape == x.shape
        # standardisation happened before crop/flip
        assert abs(out.mean()) < 0.5

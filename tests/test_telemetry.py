"""Telemetry layer: registry, tracer, exporters, dashboard round-trip."""

from __future__ import annotations

import importlib
import inspect
import json
import pkgutil

import numpy as np
import pytest

from repro import telemetry
from repro.exceptions import TelemetryError
from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    render_prometheus,
    set_clock,
    set_registry,
    set_tracer,
    snapshot,
    to_json,
)

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Install a fresh registry/tracer so tests never see each other."""
    previous_registry = set_registry(MetricsRegistry())
    previous_tracer = set_tracer(Tracer())
    yield
    set_registry(previous_registry)
    set_tracer(previous_tracer)


@pytest.fixture
def manual_clock():
    clock = ManualClock()
    previous = set_clock(clock)
    yield clock
    set_clock(previous)


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = telemetry.get_registry()
        counter = registry.counter("reqs_total", "Requests.")
        counter.inc(route="/a")
        counter.inc(2, route="/a")
        counter.inc(route="/b")
        assert counter.value(route="/a") == 3
        assert counter.value(route="/b") == 1
        assert counter.value(route="/never") == 0

    def test_counter_rejects_negative(self):
        counter = telemetry.get_registry().counter("c_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = telemetry.get_registry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_get_or_create_returns_same_family(self):
        registry = telemetry.get_registry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_mismatch_raises(self):
        registry = telemetry.get_registry()
        registry.counter("thing")
        with pytest.raises(TelemetryError):
            registry.gauge("thing")

    def test_disabled_registry_records_nothing(self):
        registry = telemetry.get_registry()
        registry.disable()
        registry.counter("c_total").inc()
        registry.gauge("g").set(9)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.enable()
        assert registry.counter("c_total").value() == 0
        assert registry.gauge("g").value() == 0
        assert registry.histogram("h").child_state() == ([0, 0], 0.0, 0)

    def test_reset_drops_all_families(self):
        registry = telemetry.get_registry()
        registry.counter("c_total").inc()
        registry.reset()
        assert registry.metrics() == []


class TestHistogramBuckets:
    BOUNDS = (0.1, 1.0, 10.0)

    def _hist(self):
        return telemetry.get_registry().histogram("h", buckets=self.BOUNDS)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus le-semantics: a bucket with bound b counts values <= b.
        hist = self._hist()
        hist.observe(0.1)
        hist.observe(1.0)
        hist.observe(10.0)
        counts, total, count = hist.child_state()
        assert counts == [1, 1, 1, 0]
        assert total == pytest.approx(11.1)
        assert count == 3

    def test_above_max_bound_goes_to_inf(self):
        hist = self._hist()
        hist.observe(10.000001)
        hist.observe(1e9)
        assert hist.child_state()[0] == [0, 0, 0, 2]

    def test_below_min_bound_goes_to_first_bucket(self):
        hist = self._hist()
        hist.observe(0.0)
        hist.observe(-5.0)
        assert hist.child_state()[0] == [2, 0, 0, 0]

    def test_observe_many_matches_repeated_observe(self):
        values = [0.05, 0.1, 0.5, 1.0, 1.5, 10.0, 11.0, -1.0]
        registry = telemetry.get_registry()
        one = registry.histogram("one", buckets=self.BOUNDS)
        many = registry.histogram("many", buckets=self.BOUNDS)
        for v in values:
            one.observe(v)
        many.observe_many(np.asarray(values))
        assert one.child_state() == many.child_state()

    def test_observe_many_empty_is_noop(self):
        hist = self._hist()
        hist.observe_many([])
        assert hist.child_state() == ([0, 0, 0, 0], 0.0, 0)

    def test_invalid_buckets_rejected(self):
        registry = telemetry.get_registry()
        with pytest.raises(TelemetryError):
            registry.histogram("empty", buckets=())
        with pytest.raises(TelemetryError):
            registry.histogram("unsorted", buckets=(1.0, 0.5))

    def test_bounds_fixed_by_first_creation(self):
        registry = telemetry.get_registry()
        first = registry.histogram("fixed", buckets=(1.0, 2.0))
        again = registry.histogram("fixed", buckets=(9.0,))
        assert again is first
        assert again.buckets == (1.0, 2.0)


class TestTracer:
    def test_nesting_records_parent_and_exact_durations(self, manual_clock):
        tracer = telemetry.get_tracer()
        with tracer.span("outer", study="s") as outer:
            manual_clock.advance(1.0)
            with tracer.span("inner") as inner:
                manual_clock.advance(0.25)
            manual_clock.advance(0.5)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == pytest.approx(0.25)
        assert outer.duration == pytest.approx(1.75)

    def test_export_orders_parents_before_children(self, manual_clock):
        tracer = telemetry.get_tracer()
        with tracer.span("outer"):
            manual_clock.advance(1.0)
            with tracer.span("inner"):
                manual_clock.advance(1.0)
        exported = tracer.export()
        assert [s["name"] for s in exported] == ["outer", "inner"]
        assert json.loads(json.dumps(exported)) == exported

    def test_span_closes_on_exception(self, manual_clock):
        tracer = telemetry.get_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                manual_clock.advance(2.0)
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.duration == pytest.approx(2.0)

    def test_disabled_tracer_records_nothing(self):
        tracer = telemetry.get_tracer()
        tracer.enabled = False
        with tracer.span("ghost") as span:
            span.tag(extra=1)
        assert tracer.spans == []

    def test_overflow_drops_oldest(self, manual_clock):
        tracer = Tracer(clock=manual_clock, max_spans=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                manual_clock.advance(1.0)
        assert [s.name for s in tracer.spans] == ["b", "c"]
        assert tracer.dropped == 1


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("repro_demo_requests_total", "Demo requests.")
    counter.inc(2, route="/a")
    counter.inc(route="/b")
    registry.gauge("repro_demo_depth", "Demo queue depth.").set(3)
    hist = registry.histogram("repro_demo_seconds", "Demo latency.",
                              buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestExporters:
    def test_json_snapshot_golden(self):
        assert snapshot(_golden_registry()) == {
            "counters": {
                "repro_demo_requests_total": {
                    "help": "Demo requests.",
                    "values": {"route=/a": 2.0, "route=/b": 1.0},
                }
            },
            "gauges": {
                "repro_demo_depth": {
                    "help": "Demo queue depth.",
                    "values": {"": 3.0},
                }
            },
            "histograms": {
                "repro_demo_seconds": {
                    "help": "Demo latency.",
                    "bounds": [0.1, 1.0],
                    "series": {
                        "": {"buckets": [1, 1, 1], "sum": 2.55, "count": 3}
                    },
                }
            },
        }

    def test_to_json_is_deterministic_and_parseable(self):
        text = to_json(_golden_registry())
        assert text == to_json(_golden_registry())
        assert json.loads(text) == snapshot(_golden_registry())

    def test_to_json_includes_spans_when_tracer_given(self, manual_clock):
        tracer = Tracer(clock=manual_clock)
        with tracer.span("op"):
            manual_clock.advance(1.0)
        data = json.loads(to_json(MetricsRegistry(), tracer))
        assert data["spans"][0]["name"] == "op"
        assert data["spans"][0]["duration"] == 1.0

    def test_prometheus_exposition_golden(self):
        assert render_prometheus(_golden_registry()) == (
            "# HELP repro_demo_depth Demo queue depth.\n"
            "# TYPE repro_demo_depth gauge\n"
            "repro_demo_depth 3\n"
            "# HELP repro_demo_requests_total Demo requests.\n"
            "# TYPE repro_demo_requests_total counter\n"
            'repro_demo_requests_total{route="/a"} 2\n'
            'repro_demo_requests_total{route="/b"} 1\n'
            "# HELP repro_demo_seconds Demo latency.\n"
            "# TYPE repro_demo_seconds histogram\n"
            'repro_demo_seconds_bucket{le="0.1"} 1\n'
            'repro_demo_seconds_bucket{le="1"} 2\n'
            'repro_demo_seconds_bucket{le="+Inf"} 3\n'
            "repro_demo_seconds_sum 2.55\n"
            "repro_demo_seconds_count 3\n"
        )

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(path='a"b\\c\nd')
        assert r'path="a\"b\\c\nd"' in render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestDashboardIntegration:
    def test_dashboard_data_round_trips_with_telemetry(self):
        from repro.api.monitor import dashboard_data, render_dashboard
        from repro.core.system import Rafiki

        system = Rafiki(nodes=2, gpus_per_node=2, seed=0)
        for node_name in list(system.cluster.nodes):
            system.cluster.heartbeat(node_name)
        data = dashboard_data(system)
        assert json.loads(json.dumps(data)) == data
        flat = data["telemetry"]
        assert flat["counters"]["repro_cluster_heartbeats_total{node=node-a}"] == 1
        assert flat["gauges"]["repro_cluster_nodes_alive"] == 2
        text = render_dashboard(system)
        assert "=== telemetry ===" in text
        assert "repro_cluster_heartbeats_total" in text

    def test_gateway_requests_recorded_per_route(self, manual_clock):
        from repro.api.gateway import Gateway
        from repro.core.system import Rafiki

        gateway = Gateway(Rafiki(nodes=1, gpus_per_node=1, seed=0))

        def timed_handle(*request):
            manual_clock.advance(0.002)
            return gateway.handle(*request)

        assert timed_handle("GET", "/datasets").status == 200
        assert timed_handle("GET", "/train/nope").status == 404
        assert timed_handle("GET", "/no/such/route").status == 404
        registry = telemetry.get_registry()
        counter = registry.counter("repro_gateway_requests_total")
        assert counter.value(method="GET", route="/datasets", status="200", tenant="default") == 1
        assert counter.value(method="GET", route="/train/{job_id}", status="404", tenant="default") == 1
        assert counter.value(method="GET", route="(unmatched)", status="404", tenant="default") == 1
        hist = registry.histogram("repro_gateway_request_seconds")
        assert hist.child_state(route="/datasets")[2] == 1

    def test_serve_clock_injection_is_honoured(self, manual_clock):
        # Satellite fix: profiler timing flows through the telemetry
        # clock, so a manual clock makes measurements deterministic.
        from repro.core.serve.profiler import profile_network
        from repro.zoo.builders import build_mlp

        network = build_mlp((12,), 3, np.random.default_rng(0), hidden=(8,))
        profile = profile_network(network, "mlp", batch_sizes=(1, 2),
                                  iterations=1, clock=manual_clock.now)
        assert profile.overhead_s == 0.0
        assert profile.per_image_s > 0.0
        spans = [s for s in telemetry.get_tracer().spans
                 if s.name == "profile_network"]
        assert spans and spans[-1].tags["model"] == "mlp"


class TestTelemetryDocstrings:
    """Satellite: every public item under repro.telemetry is documented."""

    def _modules(self):
        package = importlib.import_module("repro.telemetry")
        yield package
        for mod in pkgutil.walk_packages(package.__path__, prefix="repro.telemetry."):
            yield importlib.import_module(mod.name)

    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in self._modules() if not m.__doc__]
        assert undocumented == []

    def test_every_public_member_documented(self):
        undocumented = []
        for module in self._modules():
            exported = getattr(module, "__all__", None)
            names = exported if exported is not None else [
                n for n in vars(module) if not n.startswith("_")
            ]
            for name in names:
                obj = getattr(module, name)
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", "").startswith("repro.telemetry"):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{module.__name__}.{name}")
                    if inspect.isclass(obj):
                        for mname, member in inspect.getmembers(obj, inspect.isfunction):
                            if mname.startswith("_"):
                                continue
                            if not inspect.getdoc(member):
                                undocumented.append(f"{obj.__name__}.{mname}")
        assert sorted(set(undocumented)) == []

"""Tests for cluster management: placement, failure recovery, messaging."""

import pytest

from repro.cluster import (
    CheckpointStore,
    ClusterManager,
    FailureInjector,
    Mailbox,
    Message,
    MessageType,
    Node,
)
from repro.cluster.container import ContainerState
from repro.cluster.manager import JobKind, JobState
from repro.cluster.node import Resources
from repro.exceptions import ClusterError, PlacementError
from repro.sim import Simulator


def cluster(num_nodes=3, gpus=3):
    manager = ClusterManager()
    for i in range(num_nodes):
        manager.add_node(Node(f"n{i}", capacity=Resources(cpus=8, gpus=gpus, memory_gb=64)))
    return manager


class TestMailbox:
    def test_fifo_order(self):
        box = Mailbox("m")
        box.send(Message(MessageType.REQUEST, "w1"))
        box.send(Message(MessageType.REPORT, "w2"))
        assert box.receive().type is MessageType.REQUEST
        assert box.receive().type is MessageType.REPORT
        assert box.receive() is None

    def test_peek_does_not_consume(self):
        box = Mailbox("m")
        box.send(Message(MessageType.FINISH, "w"))
        assert box.peek().type is MessageType.FINISH
        assert len(box) == 1


class TestResources:
    def test_fits_within(self):
        small = Resources(1, 1, 4)
        big = Resources(8, 3, 64)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_arithmetic(self):
        total = Resources(2, 1, 8) + Resources(1, 1, 8)
        assert total.gpus == 2
        left = total - Resources(1, 0, 4)
        assert left.cpus == 2


class TestPlacement:
    def test_job_colocated_when_it_fits(self):
        manager = cluster()
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=2)
        nodes = {c.node_name for c in job.containers}
        assert len(nodes) == 1  # master + 2 workers on one node

    def test_job_spills_across_nodes(self):
        manager = cluster(num_nodes=3, gpus=3)
        job = manager.submit_job(JobKind.TRAIN, "big", num_workers=7)
        assert len(job.workers) == 7
        nodes = {c.node_name for c in job.containers}
        assert len(nodes) > 1

    def test_placement_failure_places_nothing(self):
        manager = cluster(num_nodes=1, gpus=2)
        with pytest.raises(PlacementError):
            manager.submit_job(JobKind.TRAIN, "huge", num_workers=5, queue=False)
        # nothing was allocated, and the fail-fast path leaves no record
        assert manager.nodes["n0"].allocated.gpus == 0
        assert manager.jobs == {}

    def test_unplaceable_job_queues_by_default(self):
        manager = cluster(num_nodes=1, gpus=2)
        job = manager.submit_job(JobKind.TRAIN, "huge", num_workers=5)
        assert job.state is JobState.PENDING
        assert job.pending_reason == "capacity"
        assert manager.nodes["n0"].allocated.gpus == 0
        assert manager.pending_jobs() == [job]

    def test_resources_released_on_stop(self):
        manager = cluster()
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=2)
        manager.stop_job(job.job_id)
        assert all(node.allocated.gpus == 0 for node in manager.nodes.values())
        assert job.state is JobState.STOPPED

    def test_duplicate_node_rejected(self):
        manager = cluster(num_nodes=1)
        with pytest.raises(ClusterError):
            manager.add_node(Node("n0"))


class TestFailureRecovery:
    def test_worker_restarted_on_surviving_node(self):
        manager = cluster(num_nodes=2, gpus=3)
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=2)
        failed_node = job.containers[0].node_name
        replacements = manager.fail_node(failed_node)
        assert len(replacements) == 3  # master + 2 workers restarted
        assert all(c.node_name != failed_node for c in replacements)
        assert all(c.state is ContainerState.RUNNING for c in replacements)
        assert job.state is JobState.RUNNING
        assert manager.recoveries == 3

    def test_restart_counter_increments(self):
        manager = cluster(num_nodes=2)
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=1)
        node = job.containers[0].node_name
        manager.fail_node(node)
        assert all(c.restarts == 1 for c in job.containers)

    def test_job_degrades_when_no_capacity_left(self):
        manager = cluster(num_nodes=2, gpus=2)
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=4)  # uses all gpus
        lost_node = job.containers[0].node_name
        manager.fail_node(lost_node)
        # Insufficient capacity degrades the job instead of failing it;
        # the lost containers are queued until a node comes back.
        assert job.state is JobState.DEGRADED
        started = manager.recover_node(lost_node)
        assert started  # queued restarts drained onto the recovered node
        assert job.state is JobState.RUNNING
        assert all(c.running for c in job.containers)

    def test_recovery_hook_invoked(self):
        manager = cluster(num_nodes=2)
        restarted = []
        manager.on_recovery(restarted.append)
        job = manager.submit_job(JobKind.TRAIN, "t", num_workers=1)
        manager.fail_node(job.containers[0].node_name)
        assert len(restarted) == 2

    def test_recover_node_rejoins(self):
        manager = cluster(num_nodes=2)
        manager.fail_node("n0")
        assert len(manager.alive_nodes()) == 1
        manager.recover_node("n0")
        assert len(manager.alive_nodes()) == 2

    def test_unknown_node_raises(self):
        with pytest.raises(ClusterError):
            cluster().fail_node("ghost")


class TestCheckpointStore:
    def test_save_restore_roundtrip(self):
        store = CheckpointStore()
        store.save("master", {"best": 0.9, "num": 3})
        assert store.restore("master") == {"best": 0.9, "num": 3}

    def test_restore_is_deep_copy(self):
        store = CheckpointStore()
        live = {"trials": [1, 2]}
        store.save("m", live)
        live["trials"].append(3)
        assert store.restore("m") == {"trials": [1, 2]}

    def test_versions_and_retention(self):
        store = CheckpointStore(keep_last=2)
        for i in range(5):
            store.save("m", i)
        assert store.versions("m") == 2
        assert store.restore("m") == 4
        assert store.restore("m", version=1) == 3

    def test_missing_owner_raises(self):
        with pytest.raises(ClusterError):
            CheckpointStore().restore("ghost")


class TestFailureInjector:
    def test_scheduled_failure_and_recovery(self):
        manager = cluster(num_nodes=2)
        sim = Simulator()
        injector = FailureInjector(manager)
        injector.schedule_failure(sim, delay=5.0, node_name="n0", recover_after=10.0)
        sim.run(until=6.0)
        assert not manager.nodes["n0"].alive
        sim.run(until=20.0)
        assert manager.nodes["n0"].alive

    def test_random_failures_scheduled(self):
        manager = cluster(num_nodes=3)
        sim = Simulator()
        injector = FailureInjector(manager)
        count = injector.random_failures(sim, horizon=100.0, rate_per_second=0.1)
        assert count > 0
        sim.run_all()
        # all nodes recovered by the end
        assert all(node.alive for node in manager.nodes.values())

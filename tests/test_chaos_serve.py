"""Chaos tests for the serving layer and parameter server.

Covers the graceful-degradation paths: the ensemble drops (and
re-admits) a flapping replica behind its circuit breaker, the batcher
resubmits requests from failed dispatches, parameter-server pushes ride
out injected drops under a retry policy, and the parallel trial
executor resubmits trials whose child process crashed.
"""

import queue
from collections import deque

import numpy as np
import pytest

from repro import chaos, telemetry
from repro.chaos import FaultKind, FaultPlan, FaultRule
from repro.core.serve import (
    DEFAULT_BATCH_SIZES,
    GreedySingleController,
    ServingEnv,
    SineArrival,
)
from repro.core.system import InferenceJobInfo, ModelSpec, Rafiki
from repro.core.tune import HyperConf, ParallelTrialExecutor, RealTrainer
from repro.exceptions import (
    DroppedResponse,
    InjectedFault,
    RetryExhaustedError,
    ServingError,
)
from repro.paramserver import ParameterServer
from repro.utils.retry import CircuitBreaker, RetryPolicy
from repro.zoo import get_profile
from repro.zoo.builders import build_mlp

pytestmark = pytest.mark.chaos

TAU = 0.56


def counter_total(name):
    return sum(telemetry.get_registry().counter(name).snapshot().values())


class _FixedNet:
    """A fake replica that always votes for one label."""

    def __init__(self, label):
        self.label = label

    def predict_labels(self, batch):
        return np.full(batch.shape[0], self.label, dtype=np.int64)


def make_ensemble_job(*, threshold=2, recovery=10.0):
    specs = [
        ModelSpec("flaky", "k0", 0.9, "ImageClassification", "d"),
        ModelSpec("steady", "k1", 0.6, "ImageClassification", "d"),
    ]
    info = InferenceJobInfo(
        job_id="infer-x",
        specs=specs,
        networks=[_FixedNet(0), _FixedNet(1)],
        status="running",
        breakers=[
            CircuitBreaker(name=f"infer-x/{s.model_name}",
                           failure_threshold=threshold,
                           recovery_time=recovery)
            for s in specs
        ],
    )
    return info


class TestReplicaDegradation:
    def test_flapping_replica_dropped_then_readmitted(self, manual_clock):
        system = Rafiki(nodes=1, gpus_per_node=1)
        info = make_ensemble_job(threshold=2, recovery=10.0)
        batch = np.zeros((4, 3, 8, 8))
        plan = FaultPlan(
            [FaultRule("serve.model.flaky", FaultKind.EXCEPTION, max_faults=2)]
        )
        with chaos.active(plan):
            # two failing calls trip the flaky replica's breaker; the
            # steady replica keeps answering alone
            for _ in range(2):
                labels, votes = system._predict(info, batch)
                assert labels.tolist() == [1, 1, 1, 1]
                assert votes.shape == (1, 4)
            assert info.live_replicas() == [1]
            # while open, the flaky replica is not even attempted
            system._predict(info, batch)
            assert plan.invocations("serve.model.flaky") == 2
            # after the recovery window the probe succeeds (the fault
            # budget is spent) and the replica rejoins the vote
            manual_clock.advance(10.0)
            labels, votes = system._predict(info, batch)
            assert votes.shape == (2, 4)
            assert info.live_replicas() == [0, 1]
            # the higher-accuracy replica dominates the weighted vote
            assert labels.tolist() == [0, 0, 0, 0]
        assert counter_total("repro_serve_replica_errors_total") == 2

    def test_all_replicas_dead_raises_serving_error(self):
        system = Rafiki(nodes=1, gpus_per_node=1)
        info = make_ensemble_job(threshold=1)
        batch = np.zeros((2, 3, 8, 8))
        plan = FaultPlan([
            FaultRule("serve.model.flaky", FaultKind.EXCEPTION),
            FaultRule("serve.model.steady", FaultKind.EXCEPTION),
        ])
        with chaos.active(plan):
            with pytest.raises(ServingError):
                system._predict(info, batch)
            assert info.live_replicas() == []
            # breakers open now: replicas are skipped, not re-executed
            with pytest.raises(ServingError):
                system._predict(info, batch)
        assert plan.invocations("serve.model.flaky") == 1
        assert plan.invocations("serve.model.steady") == 1

    def test_live_replica_gauge_tracks_degradation(self):
        system = Rafiki(nodes=1, gpus_per_node=1)
        info = make_ensemble_job(threshold=1)
        batch = np.zeros((2, 3, 8, 8))
        plan = FaultPlan(
            [FaultRule("serve.model.flaky", FaultKind.EXCEPTION, max_faults=1)]
        )
        with chaos.active(plan):
            system._predict(info, batch)
        gauge = telemetry.get_registry().gauge("repro_serve_replicas_live")
        assert gauge.value(job="infer-x") == 1


def serve_env(seed=0, dispatch_retry=None, target=80.0):
    profile = get_profile("inception_v3")
    arrival = SineArrival(target, period=60.0, rng=np.random.default_rng(seed))
    controller = GreedySingleController(profile, DEFAULT_BATCH_SIZES, TAU)
    return ServingEnv([profile], controller, arrival, TAU, DEFAULT_BATCH_SIZES,
                      dispatch_retry=dispatch_retry)


class TestDispatchResubmission:
    RETRY = dict(base_delay=0.005, max_delay=0.1, jitter=0.0)

    def test_failed_dispatches_requeue_and_conserve_requests(self):
        plan = FaultPlan(
            [FaultRule("serve.dispatch", FaultKind.EXCEPTION, probability=0.1,
                       max_faults=10)],
            seed=0,
        )
        env = serve_env(
            dispatch_retry=RetryPolicy(max_attempts=4, **self.RETRY)
        )
        with chaos.active(plan):
            metrics = env.run(horizon=30.0)
        assert env.queue.total_requeued > 0
        assert metrics.dropped == 0
        # every re-queued request is eventually served
        assert metrics.total_served == metrics.total_arrived
        assert counter_total("repro_serve_dispatch_retries_total") == \
            plan.faults_injected()

    def test_poisoned_dispatch_is_shed_not_stalled(self):
        plan = FaultPlan([FaultRule("serve.dispatch", FaultKind.EXCEPTION)])
        env = serve_env(dispatch_retry=RetryPolicy(max_attempts=2, **self.RETRY))
        with chaos.active(plan):
            metrics = env.run(horizon=5.0)
        # with every dispatch failing, batches are shed after
        # max_attempts so the run terminates instead of looping forever
        assert metrics.total_served == 0
        assert metrics.dropped > 0
        dropped = telemetry.get_registry().counter(
            "repro_serve_requests_dropped_total"
        )
        assert dropped.value(reason="dispatch_failed") == metrics.dropped

    def test_injected_latency_stretches_completions(self):
        bump = 1.0
        plan = FaultPlan(
            [FaultRule("serve.dispatch", FaultKind.LATENCY, latency=bump,
                       max_faults=5)]
        )
        env = serve_env()
        with chaos.active(plan):
            metrics = env.run(horizon=20.0)
        assert metrics.total_served == metrics.total_arrived
        assert metrics.latency_quantile(1.0) >= bump

    def test_same_seed_serve_runs_match(self):
        def trace():
            plan = FaultPlan(
                [FaultRule("serve.dispatch", FaultKind.EXCEPTION,
                           probability=0.15, max_faults=20)],
                seed=2,
            )
            env = serve_env(
                seed=2, dispatch_retry=RetryPolicy(max_attempts=4, **self.RETRY)
            )
            with chaos.active(plan):
                metrics = env.run(horizon=20.0)
            return (metrics.total_served, env.queue.total_requeued,
                    metrics.dropped, plan.trace())

        assert trace() == trace()


class TestParamServerRetries:
    def push_policy(self, attempts=4):
        return RetryPolicy(max_attempts=attempts, jitter=0.0,
                           retry_on=(InjectedFault,), seed=0)

    def state(self):
        return {"w": np.ones((4, 4))}

    def test_dropped_pushes_are_retried_to_success(self):
        ps = ParameterServer(retry=self.push_policy())
        plan = FaultPlan(
            [FaultRule("paramserver.push", FaultKind.DROP, probability=0.3)],
            seed=1,
        )
        with chaos.active(plan):
            for i in range(20):
                ps.put(f"k{i}", self.state())
        assert sorted(ps.keys()) == sorted(f"k{i}" for i in range(20))
        assert plan.faults_injected() > 0
        attempts = telemetry.get_registry().counter("repro_retry_attempts_total")
        assert attempts.value(name="paramserver.push") == \
            20 + plan.faults_injected()

    def test_push_without_retry_propagates_the_drop(self):
        ps = ParameterServer()
        plan = FaultPlan([FaultRule("paramserver.push", FaultKind.DROP)])
        with chaos.active(plan):
            with pytest.raises(DroppedResponse):
                ps.put("k", self.state())
        assert not ps.has("k")

    def test_persistent_drops_exhaust_the_policy(self):
        ps = ParameterServer(retry=self.push_policy(attempts=2))
        plan = FaultPlan([FaultRule("paramserver.push", FaultKind.DROP)])
        with chaos.active(plan):
            with pytest.raises(RetryExhaustedError):
                ps.put("k", self.state())
        assert counter_total("repro_retry_exhausted_total") == 1

    def test_pull_faults_are_retried_and_value_intact(self):
        ps = ParameterServer(retry=self.push_policy())
        ps.put("k", {"w": np.arange(6.0).reshape(2, 3)})
        plan = FaultPlan(
            [FaultRule("paramserver.pull", FaultKind.EXCEPTION, max_faults=2)]
        )
        with chaos.active(plan):
            fetched = ps.get("k")
        assert np.array_equal(fetched["w"], np.arange(6.0).reshape(2, 3))
        assert plan.invocations("paramserver.pull") == 3


class _Job:
    """Sentinel job tuple stand-in for resubmission tests."""


class TestParallelExecutorCrashHandling:
    def make_executor(self, tiny_dataset, retries=2):
        trainer = RealTrainer(tiny_dataset, build_mlp, batch_size=16,
                              use_augmentation=False, seed=11)
        executor = ParallelTrialExecutor(
            trainer, conf=HyperConf(max_trials=2, max_epochs_per_trial=2),
            processes=1, trial_retries=retries,
        )
        # no children: drive the demultiplexer with hand-fed queues
        executor._task_queue = queue.Queue()
        executor._result_queue = queue.Queue()
        return executor

    def test_crash_resubmits_and_discards_replayed_epochs(self, tiny_dataset):
        executor = self.make_executor(tiny_dataset)
        job = _Job()
        executor._inflight[7] = job
        # 3 epochs streamed, 1 still buffered => parent consumed 2
        executor._epoch_records[7] = deque([(0.5, None)])
        executor._streamed[7] = 3
        executor._result_queue.put(("error", 7, "SimulatedCrash()"))
        executor._pump()
        assert executor._task_queue.get_nowait() is job
        assert executor._skip[7] == 2
        assert len(executor._epoch_records[7]) == 0
        counter = telemetry.get_registry().counter(
            "repro_tune_parallel_trial_errors_total"
        )
        assert counter.value(outcome="resubmitted") == 1
        # the deterministic re-run replays the two consumed epochs
        # (discarded) before fresh ones reach the buffer again
        for accuracy in (0.1, 0.2, 0.3):
            executor._result_queue.put(("epoch", 7, accuracy, None))
            executor._pump()
        assert list(executor._epoch_records[7]) == [(0.3, None)]
        assert executor._streamed[7] == 1

    def test_repeated_crashes_exhaust_retries(self, tiny_dataset):
        executor = self.make_executor(tiny_dataset, retries=1)
        executor._inflight[3] = _Job()
        executor._result_queue.put(("error", 3, "boom"))
        executor._pump()  # first crash: resubmitted
        executor._result_queue.put(("error", 3, "boom"))
        with pytest.raises(RuntimeError, match="trial 3 failed"):
            executor._pump()
        counter = telemetry.get_registry().counter(
            "repro_tune_parallel_trial_errors_total"
        )
        assert counter.value(outcome="resubmitted") == 1
        assert counter.value(outcome="raised") == 1

    def test_crash_of_unknown_trial_raises_immediately(self, tiny_dataset):
        executor = self.make_executor(tiny_dataset)
        executor._result_queue.put(("error", 99, "boom"))
        with pytest.raises(RuntimeError, match="trial 99 failed"):
            executor._pump()

"""Tests for the object-detection task (Figure 2's second built-in task)."""

import numpy as np
import pytest

from repro.data import iou, make_object_detection, mean_iou
from repro.exceptions import ConfigurationError
from repro.tensor import Adam, MeanSquaredError, Network, Sigmoid
from repro.zoo.builders import build_mlp


class TestIoU:
    def test_identical_boxes(self):
        box = np.array([0.5, 0.5, 0.4, 0.4])
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([0.2, 0.2, 0.2, 0.2])
        b = np.array([0.8, 0.8, 0.2, 0.2])
        assert iou(a, b) == 0.0

    def test_half_overlap(self):
        a = np.array([0.25, 0.5, 0.5, 1.0])   # left half
        b = np.array([0.5, 0.5, 1.0, 1.0])    # whole image
        assert iou(a, b) == pytest.approx(0.5)

    def test_mean_iou_shape_check(self):
        with pytest.raises(ConfigurationError):
            mean_iou(np.zeros((3, 4)), np.zeros((2, 4)))


class TestDataset:
    def test_shapes_and_ranges(self):
        ds = make_object_detection(train_count=20, val_count=5)
        assert ds.train_x.shape == (20, 1, 16, 16)
        assert ds.train_boxes.shape == (20, 4)
        assert np.all(ds.train_boxes >= 0) and np.all(ds.train_boxes <= 1)

    def test_deterministic(self):
        a = make_object_detection(train_count=5, seed=3)
        b = make_object_detection(train_count=5, seed=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_blob_is_inside_box(self):
        ds = make_object_detection(train_count=10, noise=0.0, seed=1)
        for image, box in zip(ds.train_x, ds.train_boxes):
            cy = int(box[1] * 16)
            cx = int(box[0] * 16)
            # centre of the box is bright (the blob adds +2)
            assert image[0, min(cy, 15), min(cx, 15)] > 1.0

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            make_object_detection(image_shape=(1, 4, 4))


class TestTrainability:
    def test_regression_head_localises(self, rng):
        """A small network learns to localise the blob (mean IoU >> random)."""
        ds = make_object_detection(train_count=150, val_count=40, noise=0.2, seed=2)
        net = build_mlp(ds.image_shape, 4, rng, hidden=(64,), name="det")
        net.layers.append(Sigmoid(name="det/sigmoid"))  # boxes live in [0, 1]
        loss = MeanSquaredError()
        optimizer = Adam(lr=3e-3)
        for _ in range(120):
            net.zero_grads()
            predictions = net.forward(ds.train_x, training=True)
            loss.forward(predictions, ds.train_boxes)
            net.backward(loss.backward())
            optimizer.step(net.params, net.grads)
        predicted = net.forward(ds.val_x)
        score = mean_iou(predicted, ds.val_boxes)
        # random boxes score ~0.1; a localising model clears 0.4 easily
        assert score > 0.4

"""Edge-case tests for the tuning protocol, gateway routes and config."""

import numpy as np
import pytest

from repro.api.gateway import Gateway
from repro.cluster.message import Message, MessageType
from repro.core.system import Rafiki
from repro.core.tune import (
    HyperConf,
    RandomSearchAdvisor,
    StudyMaster,
    SurrogateTrainer,
    TuneWorker,
    make_workers,
    run_study,
    section71_space,
)
from repro.data import make_image_classification
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer


def minimal_worker(local_early_stop=True):
    conf = HyperConf(max_trials=2, max_epochs_per_trial=5)
    ps = ParameterServer()
    return TuneWorker("w", SurrogateTrainer(), ps, conf,
                      local_early_stop=local_early_stop), ps


class TestWorkerEdges:
    def test_stop_without_session_is_ignored(self):
        worker, _ = minimal_worker()
        worker.mailbox.send(Message(MessageType.STOP, "master"))
        outgoing, cost = worker.step()
        # the worker just proceeds to request a trial
        assert any(m.type is MessageType.REQUEST for m in outgoing)
        assert cost == 0

    def test_put_without_any_session_is_ignored(self):
        worker, ps = minimal_worker()
        worker.mailbox.send(Message(MessageType.PUT, "master", {"key": "k"}))
        worker.step()
        assert not ps.has("k")

    def test_shutdown_terminates_mid_trial(self):
        from repro.core.tune.trial import Trial

        worker, _ = minimal_worker()
        worker.mailbox.send(
            Message(MessageType.TRIAL, "master",
                    {"trial": Trial(params={"lr": 0.05})})
        )
        worker.step()  # starts session + trains one epoch
        assert worker.busy
        worker.mailbox.send(Message(MessageType.SHUTDOWN, "master"))
        outgoing, cost = worker.step()
        assert worker.terminated
        assert cost == 0

    def test_warm_start_with_missing_key_falls_back_to_random(self):
        from repro.core.tune.trial import InitKind, Trial

        worker, _ = minimal_worker()
        trial = Trial(params={"lr": 0.05}, init_kind=InitKind.WARM_START,
                      init_key="ghost/best")
        worker.mailbox.send(Message(MessageType.TRIAL, "master", {"trial": trial}))
        outgoing, cost = worker.step()  # must not raise
        assert cost > 0


class TestStudyEdges:
    def test_zero_workers_yields_empty_report(self):
        conf = HyperConf(max_trials=5)
        ps = ParameterServer()
        master = StudyMaster("s", conf, RandomSearchAdvisor(section71_space()), ps)
        report = run_study(master, [])
        assert report.results == []
        assert report.wall_time == 0.0

    def test_single_trial_study(self):
        conf = HyperConf(max_trials=1, max_epochs_per_trial=3)
        ps = ParameterServer()
        master = StudyMaster("s", conf, RandomSearchAdvisor(section71_space()), ps)
        workers = make_workers(master, SurrogateTrainer(), ps, conf, 3)
        report = run_study(master, workers)
        # with 3 workers racing one budget slot, a couple of in-flight
        # trials may complete, but at least the budgeted one finishes
        assert len(report.results) >= 1

    def test_advisor_exhaustion_shuts_study_down(self):
        conf = HyperConf(max_trials=100, max_epochs_per_trial=3)
        ps = ParameterServer()
        advisor = RandomSearchAdvisor(section71_space(), max_proposals=4)
        master = StudyMaster("s", conf, advisor, ps)
        workers = make_workers(master, SurrogateTrainer(), ps, conf, 2)
        report = run_study(master, workers)
        assert len(report.results) == 4
        assert master.done


class TestHyperConfEdges:
    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            HyperConf(max_trials=0)

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            HyperConf(delta=-0.1)

    def test_rejects_inverted_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            HyperConf(alpha0=0.1, alpha_min=0.5)

    def test_alpha_decays_to_floor(self):
        conf = HyperConf(alpha0=1.0, alpha_decay=0.5, alpha_min=0.1)
        assert conf.alpha(0) == 1.0
        assert conf.alpha(1) == 0.5
        assert conf.alpha(100) == pytest.approx(0.1)


class TestGatewayMoreRoutes:
    @pytest.fixture()
    def deployed(self):
        system = Rafiki(seed=2)
        gateway = Gateway(system)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=8, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=2,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=2),
        )
        infer_id = system.create_inference_job(system.get_models(job_id))
        return gateway, infer_id, dataset

    def test_get_inference_status(self, deployed):
        gateway, infer_id, _ = deployed
        response = gateway.handle("GET", f"/inference/{infer_id}")
        assert response.ok
        assert response.body["status"] == "running"

    def test_delete_inference_job(self, deployed):
        gateway, infer_id, dataset = deployed
        response = gateway.handle("DELETE", f"/inference/{infer_id}")
        assert response.ok
        query = gateway.handle(
            "POST", f"/query/{infer_id}", {"img": dataset.test_x[0].tolist()}
        )
        assert query.status == 400

    def test_queries_served_counter_via_gateway(self, deployed):
        gateway, infer_id, dataset = deployed
        for _ in range(3):
            gateway.handle("POST", f"/query/{infer_id}",
                           {"img": dataset.test_x[0].tolist()})
        status = gateway.handle("GET", f"/inference/{infer_id}").body
        assert status["queries_served"] == 3

    def test_method_mismatch_is_404(self, deployed):
        gateway, infer_id, _ = deployed
        assert gateway.handle("PUT", f"/inference/{infer_id}").status == 404

    def test_requests_handled_counter(self, deployed):
        gateway, _, _ = deployed
        before = gateway.requests_handled
        gateway.handle("GET", "/datasets")
        assert gateway.requests_handled == before + 1

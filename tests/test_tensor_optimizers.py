"""Tests for optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.tensor import (
    SGD,
    Adam,
    ConstantSchedule,
    ExponentialDecaySchedule,
    RMSProp,
    StepDecaySchedule,
)


def quadratic_descent(optimizer, steps=200, start=5.0):
    """Minimise f(x) = x^2 with the optimizer; return final |x|."""
    params = {"x": np.array([start])}
    for _ in range(steps):
        grads = {"x": 2.0 * params["x"]}
        optimizer.step(params, grads)
    return abs(float(params["x"][0]))


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(1000) == 0.1

    def test_step_decay(self):
        schedule = StepDecaySchedule(1.0, factor=0.1, every=10)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(20) == pytest.approx(0.01)

    def test_exponential_decay(self):
        schedule = ExponentialDecaySchedule(1.0, decay=0.9)
        assert schedule(1) == pytest.approx(0.9)
        assert schedule(2) == pytest.approx(0.81)

    def test_bad_schedule_params(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialDecaySchedule(0.1, decay=1.5)


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(SGD(lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_descent(SGD(lr=0.05, momentum=0.9), steps=400) < 1e-6

    def test_nesterov_converges(self):
        assert quadratic_descent(SGD(lr=0.05, momentum=0.9, nesterov=True)) < 1e-4

    def test_plain_step_is_exact(self):
        opt = SGD(lr=0.5)
        params = {"w": np.array([1.0, 2.0])}
        opt.step(params, {"w": np.array([1.0, 1.0])})
        np.testing.assert_allclose(params["w"], [0.5, 1.5])

    def test_weight_decay_only_on_matrices(self):
        """Decay applies to >=2-D tensors (weights), not biases."""
        opt = SGD(lr=1.0, weight_decay=0.1)
        params = {"W": np.ones((2, 2)), "b": np.ones(2)}
        grads = {"W": np.zeros((2, 2)), "b": np.zeros(2)}
        opt.step(params, grads)
        np.testing.assert_allclose(params["W"], 0.9 * np.ones((2, 2)))
        np.testing.assert_allclose(params["b"], np.ones(2))

    def test_schedule_is_used(self):
        opt = SGD(lr=StepDecaySchedule(1.0, factor=0.0, every=1))
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})  # lr=1
        opt.step(params, {"w": np.array([1.0])})  # lr=0
        np.testing.assert_allclose(params["w"], [0.0])

    def test_reset_state_clears_velocity(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        assert opt._velocity
        opt.reset_state()
        assert not opt._velocity

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(Adam(lr=0.3), steps=400) < 1e-4

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr."""
        opt = Adam(lr=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([5.0])})
        assert params["w"][0] == pytest.approx(0.9, abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)


class TestRMSProp:
    def test_converges_near_optimum(self):
        # RMSProp with a constant rate takes ~lr-sized steps near the
        # optimum, so it hovers within O(lr) rather than reaching 0.
        assert quadratic_descent(RMSProp(lr=0.05), steps=400) < 0.1

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            RMSProp(rho=0.0)

"""Tests for the extension features: UCB model selection (Ease.ml-style)
and the Clipper-style prediction cache."""

import numpy as np
import pytest

from repro.core.serve import PredictionCache
from repro.core.system import Rafiki
from repro.core.tune import HyperConf
from repro.data import make_image_classification
from repro.exceptions import ConfigurationError
from repro.zoo import UCBModelSelector


class TestUCBModelSelector:
    def test_every_arm_tried_once_first(self):
        selector = UCBModelSelector(["a", "b", "c"], rng=np.random.default_rng(0))
        first_three = set()
        for _ in range(3):
            model = selector.select()
            first_three.add(model)
            selector.report(model, 0.5)
        assert first_three == {"a", "b", "c"}

    def test_budget_concentrates_on_best_arm(self):
        rng = np.random.default_rng(1)
        selector = UCBModelSelector(["weak", "strong"], exploration=0.3, rng=rng)
        true_means = {"weak": 0.55, "strong": 0.80}
        for _ in range(60):
            model = selector.select()
            selector.report(model, true_means[model] + rng.normal(0, 0.03))
        allocation = selector.allocation()
        assert allocation["strong"] > 2 * allocation["weak"]
        assert selector.best_model() == "strong"

    def test_under_performers_still_get_some_pulls(self):
        """UCB never fully starves an arm (exploration bonus grows)."""
        rng = np.random.default_rng(2)
        selector = UCBModelSelector(["a", "b"], exploration=1.0, rng=rng)
        means = {"a": 0.4, "b": 0.8}
        for _ in range(100):
            model = selector.select()
            selector.report(model, means[model] + rng.normal(0, 0.02))
        assert selector.allocation()["a"] >= 3

    def test_report_unknown_model_rejected(self):
        selector = UCBModelSelector(["a"])
        with pytest.raises(ConfigurationError):
            selector.report("ghost", 0.5)

    def test_empty_and_duplicate_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            UCBModelSelector([])
        with pytest.raises(ConfigurationError):
            UCBModelSelector(["a", "a"])


class TestPredictionCache:
    def test_repeated_input_hits_cache(self, rng):
        calls = []

        def predict(x):
            calls.append(1)
            return float(x.sum())

        cache = PredictionCache(predict, capacity=8)
        image = rng.normal(size=(3, 4, 4))
        first = cache.query(image)
        second = cache.query(image)
        assert first == second
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_distinct_inputs_miss(self, rng):
        cache = PredictionCache(lambda x: float(x.sum()), capacity=8)
        cache.query(rng.normal(size=(2, 2)))
        cache.query(rng.normal(size=(2, 2)))
        assert cache.misses == 2
        assert cache.hits == 0

    def test_lru_eviction(self, rng):
        cache = PredictionCache(lambda x: float(x.sum()), capacity=2)
        a, b, c = (rng.normal(size=(2,)) for _ in range(3))
        cache.query(a)
        cache.query(b)
        cache.query(c)  # evicts a
        assert len(cache) == 2
        cache.query(a)
        assert cache.misses == 4

    def test_shape_is_part_of_the_key(self):
        cache = PredictionCache(lambda x: x.shape, capacity=8)
        flat = np.zeros(4)
        square = np.zeros((2, 2))
        assert cache.query(flat) == (4,)
        assert cache.query(square) == (2, 2)
        assert cache.misses == 2

    def test_invalidate_all(self, rng):
        cache = PredictionCache(lambda x: 1, capacity=8)
        image = rng.normal(size=(2,))
        cache.query(image)
        cache.invalidate_all()
        cache.query(image)
        assert cache.misses == 2

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            PredictionCache(lambda x: 1, capacity=0)

    def test_dtype_is_part_of_the_key(self):
        """Regression: int32 and float32 zeros share raw bytes and shape.

        Before dtype joined the digest, the second query was served the
        first's cached prediction — a silently wrong result.
        """
        cache = PredictionCache(lambda x: str(x.dtype), capacity=8)
        assert cache.query(np.zeros(4, dtype=np.int32)) == "int32"
        assert cache.query(np.zeros(4, dtype=np.float32)) == "float32"
        assert cache.misses == 2
        assert cache.hits == 0


class TestFacadeQueryCache:
    def test_repeated_queries_served_from_cache(self):
        system = Rafiki(seed=8)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=10, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=8,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        )
        infer_id = system.create_inference_job(system.get_models(job_id))
        info = system.get_inference_job(infer_id)
        image = dataset.test_x[0]
        first = system.query(infer_id, image)
        second = system.query(infer_id, image)
        assert first["label"] == second["label"]
        assert info.cache.hits == 1
        assert info.queries_served == 2

    def test_redeploy_invalidates_cache(self):
        system = Rafiki(seed=8)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=10, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=8,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        )
        models = system.get_models(job_id)
        infer_id = system.create_inference_job(models)
        info = system.get_inference_job(infer_id)
        system.query(infer_id, dataset.test_x[0])
        assert len(info.cache) == 1
        # continued training leaves a better checkpoint under the key
        key = models[0].param_key
        system.param_server.put(
            key, system.param_server.get(key), performance=0.99,
            model=models[0].model_name, dataset="d",
        )
        out = system.redeploy_inference_job(infer_id)
        assert out["models"][0]["performance"] == 0.99
        assert len(info.cache) == 0  # stale predictions dropped
        assert info.specs[0].performance == 0.99

    def test_cache_can_be_disabled(self):
        system = Rafiki(seed=8)
        dataset = make_image_classification(
            name="d", num_classes=2, image_shape=(3, 8, 8),
            train_per_class=10, val_per_class=4, test_per_class=4,
            difficulty=0.3, seed=8,
        )
        system.import_images(dataset)
        job_id = system.create_train_job(
            "t", "ImageClassification", "d",
            hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        )
        infer_id = system.create_inference_job(
            system.get_models(job_id), enable_cache=False
        )
        assert system.get_inference_job(infer_id).cache is None
        result = system.query(infer_id, dataset.test_x[0])
        assert "label" in result

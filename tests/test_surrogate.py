"""Tests for the surrogate response-surface trainer."""

import numpy as np
import pytest

from repro.core.tune import SurrogateTrainer, Trial
from repro.core.tune.surrogate import SURROGATE_ACC_KEY

GOOD = {"lr": 0.05, "momentum": 0.9, "weight_decay": 5e-4, "dropout": 0.35,
        "init_std": 0.05}
BAD = {"lr": 1e-4, "momentum": 0.0, "weight_decay": 1e-2, "dropout": 0.7,
       "init_std": 0.5}


def run_session(trainer, params, epochs=60, init_state=None):
    session = trainer.start(Trial(params=params), init_state)
    for _ in range(epochs):
        session.run_epoch()
    return session


class TestQuality:
    def test_peak_at_textbook_settings(self):
        trainer = SurrogateTrainer()
        assert trainer.quality(GOOD) == pytest.approx(1.0)
        assert trainer.quality(BAD) < 0.3

    def test_quality_monotone_in_lr_distance(self):
        trainer = SurrogateTrainer()
        base = dict(GOOD)
        scores = []
        for lr in (0.05, 0.2, 0.8):
            base["lr"] = lr
            scores.append(trainer.quality(base))
        assert scores[0] > scores[1] > scores[2]

    def test_unknown_knobs_ignored(self):
        trainer = SurrogateTrainer()
        assert trainer.quality({"batch_size": 32}) == 1.0


class TestCurves:
    def test_good_trial_reaches_high_accuracy(self):
        session = run_session(SurrogateTrainer(seed=1), GOOD)
        assert session.best_performance > 0.88

    def test_bad_trial_stays_low(self):
        session = run_session(SurrogateTrainer(seed=1), BAD)
        assert session.best_performance < 0.55

    def test_curve_rises_over_epochs(self):
        trainer = SurrogateTrainer(noise=0.0, seed=0)
        session = trainer.start(Trial(params=GOOD), None)
        early = session.run_epoch()
        for _ in range(30):
            late = session.run_epoch()
        assert late > early

    def test_off_lr_converges_slower(self):
        trainer = SurrogateTrainer()
        slow = dict(GOOD, lr=0.001)
        assert trainer.time_constant(slow) > trainer.time_constant(GOOD)


class TestWarmStart:
    def _checkpoint(self, accuracy):
        return {SURROGATE_ACC_KEY: np.array([accuracy])}

    def test_warm_start_from_good_checkpoint_speeds_up(self):
        trainer = SurrogateTrainer(noise=0.0, seed=2)
        cold = trainer.start(Trial(params=GOOD), None)
        warm = trainer.start(Trial(params=GOOD), self._checkpoint(0.85))
        cold_acc = [cold.run_epoch() for _ in range(5)][-1]
        warm_acc = [warm.run_epoch() for _ in range(5)][-1]
        assert warm_acc > cold_acc

    def test_warm_start_lifts_final_accuracy(self):
        trainer = SurrogateTrainer(noise=0.0)
        mediocre = dict(GOOD, lr=0.2)
        cold_final = trainer.final_accuracy(mediocre, trainer.baseline_acc)
        warm_final = trainer.final_accuracy(mediocre, 0.85)
        assert warm_final > cold_final

    def test_bad_hyperparams_degrade_good_checkpoint(self):
        """The failure mode alpha-greedy guards against, inverted:
        a good checkpoint is damaged by bad hyper-parameters."""
        trainer = SurrogateTrainer(noise=0.0)
        damaged = trainer.final_accuracy(BAD, 0.85)
        assert damaged < 0.85

    def test_bad_checkpoint_drags_good_trial_down(self):
        trainer = SurrogateTrainer(noise=0.0)
        from_bad = trainer.final_accuracy(GOOD, 0.15)
        from_scratch = trainer.final_accuracy(GOOD, trainer.baseline_acc)
        # starting slightly above baseline barely helps...
        assert from_bad == pytest.approx(from_scratch, abs=0.05)

    def test_state_dict_carries_current_accuracy(self):
        trainer = SurrogateTrainer(seed=3)
        session = run_session(trainer, GOOD, epochs=40)
        carried = float(session.state_dict()[SURROGATE_ACC_KEY][0])
        assert carried == pytest.approx(session.best_performance, abs=0.05)

    def test_epoch_cost_constant(self):
        trainer = SurrogateTrainer(seconds_per_epoch=12.0)
        assert trainer.epoch_cost(Trial(params=GOOD)) == 12.0

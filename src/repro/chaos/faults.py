"""Deterministic fault injection at named points.

A :class:`FaultPlan` owns a set of :class:`FaultRule`\\ s, each matching
one or more *fault points* — stable dotted names baked into the library
at the places where real deployments fail (``paramserver.push``,
``gateway.dispatch``, ``serve.dispatch``, ``serve.model.<name>``,
``tune.trial``). Instrumented code calls :func:`repro.chaos.fire` at
those points; with no plan installed that is a single ``None`` check,
with a plan installed the matching rules decide — from seeded,
per-rule RNG streams, so the decision sequence is a pure function of
``(plan seed, call sequence)`` — whether to raise an exception, drop
the response, or add latency.

Every injected fault is appended to the plan's :attr:`FaultPlan.log`
and counted in ``repro_chaos_faults_injected_total``; the log is the
*recovery trace* that chaos tests assert is bit-identical across runs
with the same seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError, DroppedResponse, InjectedFault

__all__ = ["FaultKind", "FaultRule", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    """The three failure modes a rule can inject."""

    EXCEPTION = "exception"
    LATENCY = "latency"
    DROP = "drop"


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, how often.

    ``point`` is an ``fnmatch``-style pattern over fault-point names
    (``"paramserver.*"`` matches both push and pull). ``probability``
    is evaluated per matching invocation from the rule's own seeded
    stream. ``after`` skips the first N invocations of each matching
    point, and ``max_faults`` caps how many times the rule ever fires,
    so scenarios can script "fail twice, then heal".
    """

    point: str
    kind: FaultKind
    probability: float = 1.0
    #: seconds of latency added when ``kind`` is LATENCY.
    latency: float = 0.05
    #: skip the first ``after`` invocations of each matching point.
    after: int = 0
    #: total number of injections this rule may perform (None = unlimited).
    max_faults: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")
        if self.after < 0:
            raise ConfigurationError(f"after must be >= 0, got {self.after}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigurationError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )

    def matches(self, point: str) -> bool:
        """Whether this rule applies to the named fault point."""
        return fnmatchcase(point, self.point)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in injection order."""

    #: global injection sequence number (0-based).
    index: int
    #: the concrete fault-point name the fault fired at.
    point: str
    kind: FaultKind
    #: 1-based invocation count of the point when the fault fired.
    invocation: int
    #: latency added (0 for exception/drop faults).
    latency: float = 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form (used by chaos traces and the CLI)."""
        return {
            "index": self.index,
            "point": self.point,
            "kind": self.kind.value,
            "invocation": self.invocation,
            "latency": self.latency,
        }


class FaultPlan:
    """A seeded, deterministic schedule of faults over named points."""

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = (), seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        #: per-rule RNG streams, seeded by (plan seed, rule index) so
        #: adding a rule never perturbs the others' decisions.
        self._rngs = [
            np.random.default_rng(np.random.SeedSequence((self.seed, i)))
            for i in range(len(self.rules))
        ]
        self._fired = [0] * len(self.rules)
        self._invocations: dict[str, int] = {}
        self.log: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # the injection decision
    # ------------------------------------------------------------------

    def fire(self, point: str) -> float:
        """Evaluate every matching rule at ``point``.

        Returns the injected latency in seconds (0.0 when none), raises
        :class:`InjectedFault` for an exception fault and
        :class:`DroppedResponse` for a drop fault. The first matching
        rule that decides to inject wins; rules are consulted in
        declaration order.
        """
        invocation = self._invocations.get(point, 0) + 1
        self._invocations[point] = invocation
        for i, rule in enumerate(self.rules):
            if not rule.matches(point):
                continue
            if invocation <= rule.after:
                continue
            if rule.max_faults is not None and self._fired[i] >= rule.max_faults:
                continue
            if rule.probability < 1.0 and self._rngs[i].random() >= rule.probability:
                continue
            self._fired[i] += 1
            latency = rule.latency if rule.kind is FaultKind.LATENCY else 0.0
            event = FaultEvent(
                index=len(self.log),
                point=point,
                kind=rule.kind,
                invocation=invocation,
                latency=latency,
            )
            self.log.append(event)
            telemetry.get_registry().counter(
                "repro_chaos_faults_injected_total",
                "Faults injected by the active plan, by point and kind.",
            ).inc(point=point, kind=rule.kind.value)
            if rule.kind is FaultKind.EXCEPTION:
                raise InjectedFault(f"injected fault at {point} (invocation {invocation})")
            if rule.kind is FaultKind.DROP:
                raise DroppedResponse(
                    f"injected drop at {point} (invocation {invocation})"
                )
            return latency
        return 0.0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def invocations(self, point: str) -> int:
        """How many times ``point`` has been fired so far."""
        return self._invocations.get(point, 0)

    def faults_injected(self) -> int:
        """Total faults injected by this plan."""
        return len(self.log)

    def trace(self) -> list[dict]:
        """The fault log as JSON-friendly dicts (the recovery trace)."""
        return [event.as_dict() for event in self.log]

    def points_hit(self) -> list[str]:
        """Distinct fault points that injected at least once (sorted)."""
        return sorted({event.point for event in self.log})

    def kinds_hit(self) -> list[str]:
        """Distinct fault kinds injected at least once (sorted)."""
        return sorted({event.kind.value for event in self.log})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, "
            f"injected={len(self.log)})"
        )

"""Seeded end-to-end chaos scenarios.

One function, :func:`run_chaos_scenario`, drives every instrumented
subsystem under one deterministic :class:`~repro.chaos.faults.FaultPlan`:

1. **tune over the cluster** — a distributed surrogate study survives
   two mid-study node failures, per-epoch trial crashes
   (``tune.trial``) restarted from checkpoints, and parameter-server
   pushes dropped with probability 0.1 behind a retry policy;
2. **serve** — the batcher re-queues batches whose dispatch fails
   (``serve.dispatch`` exceptions) and absorbs injected latency, with
   SLO accounting intact;
3. **the facade + gateway** — real models are trained and deployed,
   one replica is made to fail repeatedly (``serve.model.<name>``)
   until its circuit breaker drops it from the ensemble, the breaker
   re-admits it after the recovery window (on the injectable manual
   clock), and gateway requests absorb injected 503/504 failures.

Everything — fault decisions, retry jitter, model training — is a pure
function of the seed, so the returned *recovery trace* (the fault log
plus the retry/circuit counters) is bit-identical across runs with the
same seed. That property is what the chaos tests and the ``repro
chaos`` CLI command assert.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import chaos, telemetry
from repro.chaos.faults import FaultKind, FaultPlan, FaultRule
from repro.exceptions import InjectedFault
from repro.utils.retry import RetryPolicy

__all__ = [
    "build_default_plan",
    "run_chaos_scenario",
    "run_shard_kill_scenario",
    "run_store_kill_scenario",
    "run_tenant_isolation_scenario",
]

#: counter prefixes that make up the trace's counter section — the
#: retry/recovery bookkeeping that must replay identically per seed.
TRACE_METRIC_PREFIXES = (
    "repro_chaos_",
    "repro_retry_",
    "repro_circuit_",
    "repro_tune_trial_crashes_total",
    "repro_tune_trials_reissued_total",
    "repro_serve_replica_errors_total",
    "repro_serve_dispatch_retries_total",
    "repro_cluster_recoveries_total",
    "repro_cluster_node_failures_total",
)


def build_default_plan(seed: int, flaky_model: str) -> FaultPlan:
    """The scenario's fault schedule: three kinds across four subsystems."""
    rules = [
        # tune: occasional per-epoch trial crashes, capped so the study
        # always terminates; workers restart from checkpoints.
        FaultRule("tune.trial", FaultKind.EXCEPTION, probability=0.02, max_faults=4),
        # paramserver: every push is dropped with p = 0.1; the server's
        # retry policy re-sends until it lands.
        FaultRule("paramserver.push", FaultKind.DROP, probability=0.1),
        # serve: dispatches gain latency sometimes and fail outright a
        # few times; the batcher re-queues the in-flight requests.
        FaultRule("serve.dispatch", FaultKind.LATENCY, probability=0.2, latency=0.02),
        FaultRule("serve.dispatch", FaultKind.EXCEPTION, probability=0.05, max_faults=6),
        # one replica fails three times in a row, opening its breaker.
        FaultRule(f"serve.model.{flaky_model}", FaultKind.EXCEPTION, max_faults=3),
        # gateway: one backend crash (503) and one lost response (504).
        FaultRule("gateway.dispatch", FaultKind.EXCEPTION, after=2, max_faults=1),
        FaultRule("gateway.dispatch", FaultKind.DROP, after=4, max_faults=1),
    ]
    return FaultPlan(rules, seed=seed)


def _reset_id_counters() -> None:
    """Rewind the process-global id counters the scenario's objects draw from.

    Trial sessions seed their RNG from ``trial.trial_id``, and job and
    container names carry their sequence numbers into metric labels —
    so a second scenario run in the same process would diverge unless
    the counters restart from 1. The counters stay rewound afterwards
    (ids remain unique within any single study/manager, which is all
    the library relies on).
    """
    import itertools

    from repro.cluster import container as container_mod
    from repro.cluster import manager as manager_mod
    from repro.cluster import message as message_mod
    from repro.core import system as system_mod
    from repro.core.tune import trial as trial_mod

    trial_mod._trial_ids = itertools.count(1)
    container_mod._container_ids = itertools.count(1)
    manager_mod._job_ids = itertools.count(1)
    message_mod._message_ids = itertools.count(1)
    system_mod._train_job_ids = itertools.count(1)
    system_mod._infer_job_ids = itertools.count(1)


def run_chaos_scenario(seed: int = 0) -> dict[str, Any]:
    """Run the full chaos scenario; return results plus the recovery trace.

    Installs a fresh metrics registry, a manual telemetry clock and the
    default fault plan for the duration (previous globals restored on
    exit), and rewinds the process-global id counters, so back-to-back
    invocations with the same seed are fully isolated and produce
    bit-identical traces.
    """
    from repro.zoo import default_registry

    _reset_id_counters()
    flaky_model = default_registry().select_diverse("ImageClassification", k=2)[0].name
    plan = build_default_plan(seed, flaky_model)
    registry = telemetry.MetricsRegistry()
    clock = telemetry.ManualClock()
    previous_registry = telemetry.set_registry(registry)
    previous_clock = telemetry.set_clock(clock)
    previous_plan = chaos.set_plan(plan)
    try:
        results = {
            "tune": _tune_phase(seed),
            "serve": _serve_phase(seed),
            "facade": _facade_phase(seed, clock, flaky_model),
        }
        trace = {
            "faults": plan.trace(),
            "counters": _trace_counters(registry),
        }
        return {
            "seed": seed,
            "flaky_model": flaky_model,
            "results": results,
            "points_hit": plan.points_hit(),
            "kinds_hit": plan.kinds_hit(),
            "faults_injected": plan.faults_injected(),
            "trace": trace,
        }
    finally:
        chaos.set_plan(previous_plan)
        telemetry.set_clock(previous_clock)
        telemetry.set_registry(previous_registry)


#: the shard-kill scenario's trace additionally replays the sharded
#: data plane's repair bookkeeping.
SHARD_TRACE_METRIC_PREFIXES = TRACE_METRIC_PREFIXES + (
    "repro_paramserver_shard_deaths_total",
    "repro_paramserver_rereplications_total",
    "repro_paramserver_failovers_total",
    "repro_paramserver_keys_lost_total",
)


def _state_digest(state) -> str:
    """Order-independent digest of one checkpoint's arrays."""
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(state):
        value = state[name]
        digest.update(name.encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.dtype.str.encode("utf-8"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


def run_shard_kill_scenario(
    seed: int = 0, shards: int = 3, replicas: int = 2
) -> dict[str, Any]:
    """Kill a parameter shard's node mid-study; prove nothing is lost.

    A distributed surrogate study runs against a
    :class:`~repro.paramserver.sharded.ShardedParameterServer` whose
    shards are cluster containers, under dropped pushes and trial
    crashes. Mid-study, the node hosting the first shard fails — taking
    the shard (and any tune workers co-located with it) down. The
    cluster manager restarts the shard's container elsewhere, the
    coordinator re-syncs it from the surviving replicas, and the study
    completes.

    The returned trace contains, besides the fault log and repair
    counters, a digest of every checkpoint read back through the
    coordinator *and* directly from every live replica — so the
    asserted properties are:

    * ``keys_lost == 0`` and no under-replicated or divergent keys
      after recovery (no lost checkpoints);
    * every replica's copy digests identically to the coordinator's
      answer (no stale checkpoints);
    * the whole trace is bit-identical across same-seed runs.
    """
    from repro.cluster import ClusterManager, Node
    from repro.cluster.node import Resources
    from repro.core.tune import (
        HyperConf,
        RandomSearchAdvisor,
        StudyMaster,
        SurrogateTrainer,
        section71_space,
    )
    from repro.core.tune.distributed import run_cluster_study
    from repro.paramserver import ShardedParameterServer

    _reset_id_counters()
    plan = FaultPlan(
        [
            FaultRule("paramserver.push", FaultKind.DROP, probability=0.05),
            FaultRule("tune.trial", FaultKind.EXCEPTION, probability=0.02,
                      max_faults=3),
        ],
        seed=seed,
    )
    registry = telemetry.MetricsRegistry()
    clock = telemetry.ManualClock()
    previous_registry = telemetry.set_registry(registry)
    previous_clock = telemetry.set_clock(clock)
    previous_plan = chaos.set_plan(plan)
    try:
        manager = ClusterManager()
        for i in range(max(3, shards)):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=8, gpus=3, memory_gb=64))
            )
        param_server = ShardedParameterServer(
            shards=shards,
            replicas=replicas,
            retry=RetryPolicy(
                max_attempts=4, jitter=0.0, retry_on=(InjectedFault,), seed=seed
            ),
        )
        # Register before the study so the shard placement is known and
        # the failure plan can target the node hosting the first shard.
        param_server.register_with_cluster(manager)
        # Pre-seed the data plane with prior studies' checkpoints (the
        # warm-start pool of Section 4.2) so the killed shard holds
        # real data whose survival the trace can assert.
        pool_rng = np.random.default_rng(seed)
        for i in range(12):
            param_server.put(
                f"warm/{i}",
                {"w": pool_rng.standard_normal((16, 16)),
                 "b": pool_rng.standard_normal(16)},
                model=f"m{i % 3}", dataset="prior",
                performance=float(pool_rng.random()),
            )
        victim_shard = param_server.shards[0]
        victim_node = manager.containers[victim_shard.container_id].node_name
        conf = HyperConf(max_trials=16, max_epochs_per_trial=20)
        master = StudyMaster(
            "shard-kill",
            conf,
            RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed)),
            param_server,
        )
        report = run_cluster_study(
            manager,
            master,
            SurrogateTrainer(seed=seed),
            param_server,
            conf,
            num_workers=3,
            failure_plan=[(150.0, victim_node, None)],
            trial_retry=RetryPolicy(max_attempts=3, jitter=0.0, seed=seed),
        )
        param_server.repair()
        audit = param_server.audit()
        # Read every checkpoint back through the coordinator and from
        # each live holder directly; identical digests mean no replica
        # can ever serve a stale copy.
        checkpoints: dict[str, str] = {}
        stale: list[str] = []
        for key in param_server.keys():
            digest = _state_digest(param_server.get(key))
            checkpoints[key] = digest
            version = param_server.versions(key)
            for holder_name in param_server._directory[key]:
                holder = param_server._by_name[holder_name]
                if not holder.alive:
                    continue
                if _state_digest(holder.server.get(key, version)) != digest:
                    stale.append(f"{key}@{holder_name}")
        best = report.best
        return {
            "seed": seed,
            "shards": shards,
            "replicas": replicas,
            "victim": {"shard": victim_shard.name, "node": victim_node,
                       "deaths": victim_shard.deaths},
            "results": {
                "trials": len(report.results),
                "total_epochs": report.total_epochs,
                "best_performance": report.best_performance,
                "best_trial_id": best.trial.trial_id if best is not None else None,
                "recoveries": manager.recoveries,
                "wall_time": report.wall_time,
            },
            "audit": audit,
            "stale": stale,
            "faults_injected": plan.faults_injected(),
            "trace": {
                "faults": plan.trace(),
                "counters": _trace_counters(registry, SHARD_TRACE_METRIC_PREFIXES),
                "checkpoints": checkpoints,
            },
        }
    finally:
        chaos.set_plan(previous_plan)
        telemetry.set_clock(previous_clock)
        telemetry.set_registry(previous_registry)


#: the store-kill scenario's trace additionally replays the block
#: store's placement/repair bookkeeping.
STORE_TRACE_METRIC_PREFIXES = TRACE_METRIC_PREFIXES + (
    "repro_blockstore_",
    "repro_fs_",
)


def run_store_kill_scenario(
    seed: int = 0, datanodes: int = 3, replicas: int = 2
) -> dict[str, Any]:
    """Kill datanodes mid-write *and* mid-read; prove zero bytes lost.

    A :class:`~repro.data.blockstore.BlockStore` hosts its datanodes as
    cluster containers on a deliberately tight cluster (a replacement
    container cannot fit anywhere else, so a failed datanode stays down
    until its machine recovers — and then restarts on the *same* host,
    exercising the preserved-disk trash-reconciliation path). Under a
    seeded plan of dropped chunk writes and slowed reads:

    1. a near-duplicate checkpoint series and a unique scratch blob are
       written through a :class:`~repro.data.fs.FileNamespace`;
    2. the node hosting the first datanode fails *mid-write* (between
       two chunk uploads of a new checkpoint version) — commit's
       write-back heal re-stores any chunk that lost every copy, so the
       version still commits complete;
    3. the scratch blob is deleted while that datanode is dead,
       queueing its copies in the node's trash set;
    4. the node hosting the second datanode fails *mid-read* — the read
       fails over to the surviving replica and still returns the exact
       bytes;
    5. both machines recover; each datanode restarts on its original
       host, keeps its disk, and runs the trash pass (stale chunks
       deleted, still-needed survivors re-admitted).

    The returned trace (fault log, placement/repair counters, file
    digests) is bit-identical across same-seed runs, and the asserted
    properties are: no lost chunks, no under-replicated chunks, trash
    reconciled on rejoin, every file version read back bit-identical.
    """
    from repro.cluster import ClusterManager, Node
    from repro.cluster.node import Resources
    from repro.data.blockstore import BlockStore
    from repro.data.fs import FileNamespace

    _reset_id_counters()
    plan = FaultPlan(
        [
            # Some chunk uploads are dropped (bounded, so no chunk can
            # lose every target): the write skips that replica and the
            # next repair() restores the factor.
            FaultRule("data.store.put", FaultKind.DROP, probability=0.04,
                      max_faults=6),
            # Reads gain latency but never fail outright — failover in
            # this scenario comes from the node kills themselves.
            FaultRule("data.store.get", FaultKind.LATENCY, probability=0.2,
                      latency=0.01),
        ],
        seed=seed,
    )
    registry = telemetry.MetricsRegistry()
    clock = telemetry.ManualClock()
    previous_registry = telemetry.set_registry(registry)
    previous_clock = telemetry.set_clock(clock)
    previous_plan = chaos.set_plan(plan)
    try:
        # Capacity math (deliberate): 4 machines x 2 cpus. The job's
        # master (1 cpu) lands on n0; each datanode worker (2 cpus)
        # fills one of n1..n3 completely. A failed worker's replacement
        # needs 2 cpus but the best free node offers 1 — so it queues,
        # and recover_node() restarts it on its original machine.
        manager = ClusterManager()
        for i in range(datanodes + 1):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=2, gpus=0, memory_gb=16))
            )
        store = BlockStore(nodes=datanodes, replicas=replicas, chunk_size=4096)
        store.register_with_cluster(
            manager, worker_request=Resources(cpus=2, gpus=0, memory_gb=8)
        )
        fs = FileNamespace(store, name="chaos")

        rng = np.random.default_rng(seed)
        ckpt = bytearray(rng.integers(0, 256, 20000, dtype=np.uint8).tobytes())
        originals: dict[str, bytes] = {}
        for version in range(1, 6):
            offset = (version * 997) % (len(ckpt) - 64)
            ckpt[offset : offset + 64] = rng.integers(
                0, 256, 64, dtype=np.uint8
            ).tobytes()
            data = bytes(ckpt)
            fs.write("model/ckpt", data, writer="study")
            originals[f"model/ckpt@{version}"] = data
        scratch = rng.integers(0, 256, 64 * 1024, dtype=np.uint8).tobytes()
        fs.write("data/scratch", scratch, writer="study")
        # The dropped-write faults leave some chunks below the factor;
        # heal them (the operator's periodic repair) so surviving the
        # coming kills depends on replication, not luck.
        repaired_initial = store.repair()

        victim_write = store.nodes[0]
        victim_read = store.nodes[1]
        write_host = manager.containers[victim_write.container_id].node_name
        read_host = manager.containers[victim_read.container_id].node_name

        # --- mid-write kill -------------------------------------------
        offset = (6 * 997) % (len(ckpt) - 64)
        ckpt[offset : offset + 64] = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        mid_write = bytes(ckpt)
        killed = False

        def kill_mid_write(index: int, digest: str) -> None:
            nonlocal killed
            if index == 2 and not killed:
                killed = True
                manager.fail_node(write_host)

        manifest = fs.write(
            "model/ckpt", mid_write, writer="study", on_chunk=kill_mid_write
        )
        originals[f"model/ckpt@{manifest.version}"] = mid_write
        mid_write_ok = fs.read("model/ckpt") == mid_write
        repaired_after_write = store.repair()

        # --- delete while the datanode is dead: populates its trash ---
        fs.delete("data/scratch")
        trash_pending = dict(store.audit()["trash_pending"])

        # --- mid-read kill --------------------------------------------
        chunks: list[bytes] = []
        for index, chunk in enumerate(fs.read_chunks("model/ckpt", version=3)):
            chunks.append(chunk)
            if index == 0:
                manager.fail_node(read_host)
        mid_read_ok = b"".join(chunks) == originals["model/ckpt@3"]

        # --- both machines come back; same-host restarts reconcile ----
        manager.recover_node(write_host)
        manager.recover_node(read_host)
        repaired_final = store.repair()
        audit = store.audit()

        corrupt = sorted(
            name
            for name, data in originals.items()
            if fs.read(name.split("@")[0], version=int(name.split("@")[1])) != data
        )
        files = {
            name: _bytes_digest(data) for name, data in sorted(originals.items())
        }
        return {
            "seed": seed,
            "datanodes": datanodes,
            "replicas": replicas,
            "victims": {
                "mid_write": {"datanode": victim_write.name, "node": write_host,
                              "deaths": victim_write.deaths},
                "mid_read": {"datanode": victim_read.name, "node": read_host,
                             "deaths": victim_read.deaths},
            },
            "results": {
                "versions": len(fs.versions("model/ckpt")),
                "mid_write_intact": mid_write_ok,
                "mid_read_intact": mid_read_ok,
                "repaired_initial": repaired_initial,
                "repaired_after_write": repaired_after_write,
                "repaired_final": repaired_final,
                "trash_pending_during_outage": trash_pending,
                "recoveries": manager.recoveries,
            },
            "audit": audit,
            "corrupt": corrupt,
            "faults_injected": plan.faults_injected(),
            "trace": {
                "faults": plan.trace(),
                "counters": _trace_counters(registry, STORE_TRACE_METRIC_PREFIXES),
                "files": files,
            },
        }
    finally:
        chaos.set_plan(previous_plan)
        telemetry.set_clock(previous_clock)
        telemetry.set_registry(previous_registry)


#: the tenant-isolation scenario's trace additionally replays the
#: quota/fair-share bookkeeping and the tenant-labelled serve counters.
TENANT_TRACE_METRIC_PREFIXES = TRACE_METRIC_PREFIXES + (
    "repro_tenant_",
    "repro_cluster_jobs_queued_total",
    "repro_cluster_pending_jobs",
    "repro_serve_frontend_",
)


def run_tenant_isolation_scenario(seed: int = 0) -> dict[str, Any]:
    """A noisy tenant floods and crash-loops; a quiet tenant is unharmed.

    Two tenants share one control plane and one serving front end:

    1. **cluster phase** — tenant A (quota: 8 concurrent trials) floods
       the cluster with training jobs until both its quota and the
       cluster's capacity are exhausted, then crash-loops the node its
       first job runs on (three fail/recover cycles). Tenant B's jobs
       place throughout; when A releases capacity, the pending queue
       drains **max-min fair** — B's queued job (lower dominant share)
       activates before A's earlier-queued ones.
    2. **serve phase** — both tenants drive open-loop load at one
       admission-controlled front end; A offers ~4x B's rate *and*
       suffers injected admission faults on its tenant-targeted chaos
       point (``frontend.accept.tenant.tenant-a``). A's aggregate is
       clamped by its tenant token bucket and queue-share cap, so the
       isolation gate holds: **zero** tenant-B sheds and tenant-B p99
       within ``2 * tau``.

    Everything is a pure function of the seed, so the returned trace
    (fault log, quota/fair-share counters, the serve trace fingerprint)
    is bit-identical across same-seed runs.
    """
    from repro.cluster import ClusterManager, Node
    from repro.cluster.manager import JobKind, JobState
    from repro.cluster.node import Resources
    from repro.core.serve.frontend import FrontendConfig, ServeFrontend
    from repro.core.serve.loadgen import LoadGenConfig, ReplicaPool, run_multi_load
    from repro.tenancy import TenantQuota, TenantRegistry

    _reset_id_counters()
    plan = FaultPlan(
        [
            # Admission faults aimed at tenant A only: the tenant-scoped
            # chaos point fires after the generic frontend.accept one,
            # so B's admissions never see these.
            FaultRule(
                "frontend.accept.tenant.tenant-a",
                FaultKind.EXCEPTION,
                probability=0.05,
                max_faults=25,
            ),
        ],
        seed=seed,
    )
    registry = telemetry.MetricsRegistry()
    clock = telemetry.ManualClock()
    previous_registry = telemetry.set_registry(registry)
    previous_clock = telemetry.set_clock(clock)
    previous_plan = chaos.set_plan(plan)
    try:
        # -- cluster phase: quotas, flood, crash-loop, fair drain ------
        tenants = TenantRegistry()
        tenants.register("tenant-a", quota=TenantQuota(trials=8))
        tenants.register("tenant-b")
        manager = ClusterManager(tenants=tenants)
        for i in range(3):
            manager.add_node(
                Node(f"n{i}", capacity=Resources(cpus=8, gpus=3, memory_gb=64))
            )
        # A floods: two jobs place (6 of 8 quota trials), the third
        # trips the quota and queues.
        a1 = manager.submit_job(JobKind.TRAIN, "a1", num_workers=3, tenant="tenant-a")
        a2 = manager.submit_job(JobKind.TRAIN, "a2", num_workers=3, tenant="tenant-a")
        a3 = manager.submit_job(JobKind.TRAIN, "a3", num_workers=3, tenant="tenant-a")
        # B places immediately despite the flood (capacity remains
        # because A's quota capped it)...
        b1 = manager.submit_job(JobKind.TRAIN, "b1", num_workers=2, tenant="tenant-b")
        # ...then queues one more on capacity, as does A again.
        b2 = manager.submit_job(JobKind.TRAIN, "b2", num_workers=3, tenant="tenant-b")
        a4 = manager.submit_job(JobKind.TRAIN, "a4", num_workers=3, tenant="tenant-a")
        flood_states = {
            job.name: job.state.name for job in (a1, a2, a3, b1, b2, a4)
        }
        # A crash-loops its first job's node; B's containers live
        # elsewhere and are untouched.
        crash_host = a1.containers[0].node_name
        for _ in range(3):
            manager.fail_node(crash_host)
            manager.recover_node(crash_host)
        b1_survived = b1.state is JobState.RUNNING and all(
            c.running for c in b1.containers
        )
        # A releases capacity; the pending queue drains max-min fair:
        # B's queued job (lower dominant share) activates first even
        # though A's quota-queued job arrived earlier.
        manager.stop_job(a1.job_id)
        drain_states = {
            job.name: job.state.name for job in (a3, b2, a4)
        }
        cluster = {
            "flood_states": flood_states,
            "crash_host": crash_host,
            "crash_cycles": 3,
            "b1_survived_crash_loop": b1_survived,
            "drain_states": drain_states,
            "fair_share_winner": (
                "tenant-b" if b2.state is JobState.RUNNING else b2.state.name
            ),
            "a_pending_after_drain": sum(
                1 for job in manager.pending_jobs() if job.tenant == "tenant-a"
            ),
            "recoveries": manager.recoveries,
            "usage": tenants.ledger.snapshot(),
        }

        # -- serve phase: A floods one front end, B stays in SLO -------
        tau = 0.2
        latency = lambda b: 0.05 + 0.002 * b  # noqa: E731
        frontend = ServeFrontend(
            FrontendConfig(
                latency=latency,
                tau=tau,
                max_queue=256,
                tenant_rate_limits={"tenant-a": 80.0},
                tenant_max_queue_share=0.5,
            )
        )
        pool = ReplicaPool(latency, replicas=2)
        trace = run_multi_load(
            frontend,
            pool,
            [
                LoadGenConfig(
                    mode="open", target_rate=320.0, period=20.0,
                    duration=30.0, seed=seed, tenant="tenant-a",
                ),
                LoadGenConfig(
                    mode="open", target_rate=40.0, period=20.0,
                    duration=30.0, seed=seed + 1, tenant="tenant-b",
                ),
            ],
        )
        a_summary = trace.summary("tenant-a")
        b_summary = trace.summary("tenant-b")
        isolation = {
            "tau": tau,
            "b_shed": b_summary["shed"],
            "b_p99_s": b_summary["p99_s"],
            "zero_b_sheds": b_summary["shed"] == 0,
            "b_p99_within_2tau": b_summary["p99_s"] <= 2.0 * tau,
            "a_shed_rate": a_summary["shed_rate"],
        }
        return {
            "seed": seed,
            "results": {
                "cluster": cluster,
                "serve": {"tenant-a": a_summary, "tenant-b": b_summary},
                "isolation": isolation,
            },
            "points_hit": plan.points_hit(),
            "kinds_hit": plan.kinds_hit(),
            "faults_injected": plan.faults_injected(),
            "trace": {
                "faults": plan.trace(),
                "counters": _trace_counters(registry, TENANT_TRACE_METRIC_PREFIXES),
                "serve_fingerprint": trace.fingerprint(),
            },
        }
    finally:
        chaos.set_plan(previous_plan)
        telemetry.set_clock(previous_clock)
        telemetry.set_registry(previous_registry)


def _bytes_digest(data: bytes) -> str:
    """sha256 hexdigest of a byte string (file identity in traces)."""
    import hashlib

    return hashlib.sha256(data).hexdigest()


def _trace_counters(
    registry: telemetry.MetricsRegistry,
    prefixes: tuple[str, ...] = TRACE_METRIC_PREFIXES,
) -> dict[str, Any]:
    """The retry/recovery counter values, filtered from a full snapshot."""
    full = telemetry.snapshot(registry)
    return {
        name: data["values"]
        for section in ("counters", "gauges")
        for name, data in sorted(full.get(section, {}).items())
        if any(name.startswith(prefix) for prefix in prefixes)
    }


def _tune_phase(seed: int) -> dict[str, Any]:
    """Distributed study under node failures, trial crashes, dropped pushes."""
    from repro.cluster import ClusterManager, Node
    from repro.cluster.node import Resources
    from repro.core.tune import (
        HyperConf,
        RandomSearchAdvisor,
        StudyMaster,
        SurrogateTrainer,
        section71_space,
    )
    from repro.core.tune.distributed import run_cluster_study
    from repro.paramserver import ParameterServer

    manager = ClusterManager()
    for i in range(3):
        manager.add_node(
            Node(f"n{i}", capacity=Resources(cpus=8, gpus=3, memory_gb=64))
        )
    param_server = ParameterServer(
        retry=RetryPolicy(
            max_attempts=4, jitter=0.0, retry_on=(InjectedFault,), seed=seed
        )
    )
    conf = HyperConf(max_trials=16, max_epochs_per_trial=20)
    master = StudyMaster(
        "chaos",
        conf,
        RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(seed)),
        param_server,
    )
    report = run_cluster_study(
        manager,
        master,
        SurrogateTrainer(seed=seed),
        param_server,
        conf,
        num_workers=3,
        failure_plan=[(150.0, "n0", 900.0), (400.0, "n1", None)],
        trial_retry=RetryPolicy(max_attempts=3, jitter=0.0, seed=seed),
    )
    best = report.best
    reissued = telemetry.get_registry().counter(
        "repro_tune_trials_reissued_total",
        "In-flight trials re-issued to replacement workers.",
    )
    return {
        "trials": len(report.results),
        "total_epochs": report.total_epochs,
        "best_performance": report.best_performance,
        "best_trial_id": best.trial.trial_id if best is not None else None,
        "recoveries": manager.recoveries,
        "reissued": int(sum(reissued.snapshot().values())),
        "wall_time": report.wall_time,
    }


def _serve_phase(seed: int) -> dict[str, Any]:
    """Serving run with failed/slowed dispatches and batch resubmission."""
    from repro.core.serve import (
        DEFAULT_BATCH_SIZES,
        GreedySingleController,
        ServingEnv,
        SineArrival,
    )
    from repro.zoo import get_profile

    profile = get_profile("inception_v3")
    tau = 0.56
    env = ServingEnv(
        [profile],
        GreedySingleController(profile, DEFAULT_BATCH_SIZES, tau),
        SineArrival(80.0, period=60.0, rng=np.random.default_rng(seed)),
        tau,
        DEFAULT_BATCH_SIZES,
        dispatch_retry=RetryPolicy(
            max_attempts=4, base_delay=0.005, max_delay=0.1, jitter=0.0, seed=seed
        ),
    )
    metrics = env.run(horizon=30.0)
    served = metrics.total_served
    overdue = sum(record.overdue for record in metrics.dispatches)
    return {
        "arrived": metrics.total_arrived,
        "served": served,
        "overdue": overdue,
        "dropped": metrics.dropped,
        "requeued": env.queue.total_requeued,
        "slo_fraction": (served - overdue) / served if served else 1.0,
    }


def _facade_phase(seed: int, clock, flaky_model: str) -> dict[str, Any]:
    """Train/deploy real models; flap one replica; hit the gateway.

    The flaky replica's circuit breaker opens after three consecutive
    injected failures (dropping it from the ensemble vote) and, once the
    manual clock advances past the recovery window, re-admits it on a
    successful half-open probe.
    """
    from repro.api.gateway import Gateway
    from repro.core.system import Rafiki
    from repro.core.tune import HyperConf
    from repro.data import make_image_classification

    dataset = make_image_classification(
        name="chaos-ds", num_classes=3, image_shape=(3, 8, 8),
        train_per_class=12, val_per_class=6, test_per_class=6,
        difficulty=0.3, seed=seed,
    )
    system = Rafiki(seed=seed)
    # The facade's parameter server must survive the dropped-push rule.
    system.param_server.retry = RetryPolicy(
        max_attempts=4, jitter=0.0, retry_on=(InjectedFault,), seed=seed
    )
    system.import_images(dataset)
    job_id = system.create_train_job(
        "chaos", "ImageClassification", "chaos-ds",
        hyper=HyperConf(max_trials=2, max_epochs_per_trial=3),
        num_workers=2,
    )
    specs = system.get_models(job_id)
    infer_id = system.create_inference_job(specs)
    info = system.get_inference_job(infer_id)
    gateway = Gateway(system)

    statuses: list[int] = []
    for i in range(6):
        response = gateway.handle(
            "POST", f"/query/{infer_id}", {"img": dataset.test_x[i].tolist()}
        )
        statuses.append(response.status)
    live_during_outage = len(info.live_replicas())
    flaky_breaker = next(
        (b for b in info.breakers if b.name.endswith(f"/{flaky_model}")), None
    )
    # Let the breaker's recovery window elapse, then probe it closed.
    clock.advance(31.0)
    for i in range(2):
        response = gateway.handle(
            "POST", f"/query/{infer_id}", {"img": dataset.test_x[6 + i].tolist()}
        )
        statuses.append(response.status)
    return {
        "models": [spec.model_name for spec in specs],
        "statuses": statuses,
        "live_during_outage": live_during_outage,
        "live_after_recovery": len(info.live_replicas()),
        "breaker_opened": flaky_breaker.opened_count if flaky_breaker else 0,
        "breaker_state": flaky_breaker.state if flaky_breaker else "missing",
    }

"""Chaos/robustness layer: deterministic fault injection + resilience.

Rafiki's tuning and serving jobs are long-running distributed programs
that must keep making progress while nodes, parameter-server shards and
model replicas fail underneath them. This package provides the
machinery that *proves* it:

* :class:`FaultPlan` / :class:`FaultRule` — seeded, deterministic fault
  injection (exceptions, latency, dropped responses) at named fault
  points wired into the paramserver, gateway, serve and tune paths;
* :func:`set_plan` / :func:`get_plan` / :func:`fire` — the process-wide
  plan installation mirroring the telemetry registry pattern, so tests
  swap a plan in and instrumented code pays one ``None`` check when
  chaos is off;
* re-exports of :class:`~repro.utils.retry.RetryPolicy` and
  :class:`~repro.utils.retry.CircuitBreaker`, the policies the
  instrumented subsystems recover with.

End-to-end seeded scenarios live in :mod:`repro.chaos.scenarios`
(imported explicitly by the CLI and tests — not here, to keep this
package import-light).

Fault-point names currently wired in:

==========================  ====================================================
``paramserver.push``        :meth:`ParameterServer.put` entry
``paramserver.pull``        :meth:`ParameterServer.get` entry
``gateway.dispatch``        route-handler invocation in :meth:`Gateway.handle`
``serve.dispatch``          batch dispatch in :class:`ServingEnv`
``frontend.accept``         request admission in :meth:`ServeFrontend.offer`
``frontend.dispatch``       batch hand-off in :meth:`ServeFrontend.poll`
``serve.model.<name>``      per-replica model execution in :meth:`Rafiki.query`
``tune.trial``              per-epoch trial execution in :class:`TuneWorker`
``data.store.put``          chunk upload in :meth:`BlockStore.put`
``data.store.get``          chunk fetch in :meth:`BlockStore.get_chunk`
``data.store.node.<n>.put`` per-datanode chunk upload (kill/slow one datanode)
``data.store.node.<n>.get`` per-datanode chunk fetch
``sql.udf.dispatch``        batched UDF dispatch in the SQL planned executor
==========================  ====================================================
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.faults import FaultEvent, FaultKind, FaultPlan, FaultRule
from repro.exceptions import (
    ChaosError,
    CircuitOpenError,
    DroppedResponse,
    InjectedFault,
    RetryExhaustedError,
)
from repro.utils.retry import CircuitBreaker, RetryPolicy

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "ChaosError",
    "InjectedFault",
    "DroppedResponse",
    "RetryExhaustedError",
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
    "get_plan",
    "set_plan",
    "fire",
    "active",
    "protected",
]

_plan: FaultPlan | None = None


def get_plan() -> FaultPlan | None:
    """The currently installed fault plan (None when chaos is off)."""
    return _plan


def set_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan.

    Pass ``None`` to turn fault injection off entirely.
    """
    global _plan
    previous = _plan
    _plan = plan
    return previous


def fire(point: str) -> float:
    """Evaluate the active plan at ``point`` (no-op without a plan).

    Returns injected latency in seconds; raises
    :class:`InjectedFault` / :class:`DroppedResponse` when a fault
    fires. This is the one call instrumented subsystems make.
    """
    if _plan is None:
        return 0.0
    return _plan.fire(point)


class active:
    """Context manager installing a plan for the ``with`` block.

    ::

        with chaos.active(FaultPlan([rule], seed=0)) as plan:
            ...
        assert plan.faults_injected() > 0
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        """Install the plan; returns it for trace inspection."""
        self._previous = set_plan(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        """Restore whatever plan was installed before."""
        set_plan(self._previous)


def protected(point: str, breaker: CircuitBreaker | None = None) -> Callable:
    """Decorator wrapping a callable in a fault point (and breaker).

    Mostly a convenience for tests and examples; library call sites
    inline :func:`fire` instead.
    """

    def wrap(fn: Callable) -> Callable:
        def inner(*args, **kwargs):
            if breaker is not None:
                breaker.check()
            try:
                fire(point)
                result = fn(*args, **kwargs)
            except InjectedFault:
                if breaker is not None:
                    breaker.record_failure()
                raise
            if breaker is not None:
                breaker.record_success()
            return result

        inner.__name__ = getattr(fn, "__name__", "protected")
        inner.__doc__ = fn.__doc__
        return inner

    return wrap

"""Small argument-validation helpers used across the library.

These raise :class:`~repro.exceptions.ConfigurationError` with a uniform
message format so user-facing errors always name the offending argument.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_type",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if in [0, 1], else raise."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Return ``value`` if it is one of ``allowed``, else raise."""
    allowed = list(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Return ``value`` if it is an instance of ``types``, else raise."""
    if not isinstance(value, types):
        wanted = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise ConfigurationError(
            f"{name} must be of type {wanted}, got {type(value).__name__}"
        )
    return value

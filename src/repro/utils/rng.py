"""Deterministic random-number streams.

Every stochastic component in the library draws from a named stream
derived from a root seed. Deriving streams by name (rather than sharing
one generator) keeps experiments reproducible even when components are
reordered or run concurrently in the simulator.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStream", "derive_rng", "spawn_rng"]


def _seed_from(root_seed: int, name: str) -> int:
    """Hash ``(root_seed, name)`` into a 63-bit seed."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_rng(root_seed: int, name: str) -> np.random.Generator:
    """Return a NumPy generator deterministically derived from a name.

    >>> a = derive_rng(7, "arrivals")
    >>> b = derive_rng(7, "arrivals")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(_seed_from(root_seed, name))


def spawn_rng(parent: np.random.Generator) -> np.random.Generator:
    """Fork an independent child generator from ``parent``."""
    return np.random.default_rng(parent.integers(0, 2**63 - 1))


class RngStream:
    """A factory of named, deterministic random generators.

    A single :class:`RngStream` is created from the experiment's root
    seed; each subsystem asks for its own named generator, so adding a
    consumer never perturbs the draws seen by the others.
    """

    def __init__(self, root_seed: int = 0):
        self._root_seed = int(root_seed)
        self._issued: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (state is shared), so a component can re-fetch its stream.
        """
        if name not in self._issued:
            self._issued[name] = derive_rng(self._root_seed, name)
        return self._issued[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` at its initial state."""
        return derive_rng(self._root_seed, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(root_seed={self._root_seed}, issued={sorted(self._issued)})"

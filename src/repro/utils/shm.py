"""Zero-copy shared-memory tensors for cross-process IPC.

The persistent trial pool (:mod:`repro.core.tune.pool`) must move two
kinds of NumPy payload between the parent and its long-lived workers:
the dataset (large, read-only, shipped once per study) and parameter
state dicts (streamed back per trial).  Pickling either through a
``multiprocessing.Queue`` serialises every element; this module ships
them through POSIX shared memory instead, so only a tiny
:class:`ShmTensor` *handle* (name, shape, dtype) ever crosses the pipe
and the receiving side maps the bytes directly.

Two roles, one arena class:

* the **owner** calls :meth:`ShmArena.share` — the array is copied once
  into a fresh segment that the arena tracks and unlinks on
  :meth:`ShmArena.close`;
* a **borrower** (typically a pool child) calls :meth:`ShmArena.view`
  to map a zero-copy, read-only ndarray onto the segment, and
  :meth:`ShmArena.release` when done.  Views are refcounted per
  segment; the last release closes the local mapping (and unlinks it
  too, for adopted segments).

For the child-to-parent direction a worker calls
:meth:`ShmArena.publish` — create, copy, close the local mapping and
return the bare handle — and the parent :meth:`ShmArena.adopt`\\ s the
segment, taking over unlink responsibility.

Cleanup is belt and braces: refcounted ``release``, pid-guarded
``close`` (a forked child inheriting the arena object can never unlink
the parent's segments), a ``weakref.finalize`` hook for interpreter
exit, and :meth:`ShmArena.sweep`, which scans ``/dev/shm`` for the
arena's unique name prefix and unlinks leftovers — the backstop that
keeps a crashed worker (or parent) from leaking segments.

``multiprocessing.resource_tracker`` note: the tracker daemon keeps a
*set* of registered names; ``SharedMemory`` registers on create *and*
attach (idempotent re-add) and ``unlink()`` unregisters exactly once.
That accounting only stays balanced if every process in the fork tree
talks to the *same* daemon — a child forked before the daemon exists
silently spawns its own, which then "cleans up" (and warns about)
segments the parent still owns.  Constructing an arena therefore
forces the daemon into existence (:func:`_ensure_tracker`) before any
worker can be forked.
"""

from __future__ import annotations

import itertools
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmTensor", "ShmArena", "SHM_DIR"]

#: where Linux exposes POSIX shared memory segments as files.
SHM_DIR = "/dev/shm"


def _ensure_tracker() -> None:
    """Start the resource-tracker daemon now, pre-fork (see module doc)."""
    try:
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platform without a tracker
        pass


@dataclass(frozen=True)
class ShmTensor:
    """A picklable handle to one ndarray living in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))

    def exists(self) -> bool:
        """Whether the backing segment is still linked (cheap, Linux)."""
        return os.path.exists(os.path.join(SHM_DIR, self.name))


class ShmArena:
    """Creates, maps, refcounts and unlinks a family of shm segments.

    All segments carry the arena's unique ``prefix`` in their name, so
    a post-mortem :meth:`sweep` can find strays without any bookkeeping
    surviving the crash.  Pass the owner's prefix into child processes
    (it is a plain string) so their published segments are sweepable by
    the same call.
    """

    def __init__(self, prefix: str | None = None):
        _ensure_tracker()
        self.prefix = prefix or f"repro-{os.getpid():x}-{secrets.token_hex(3)}"
        self._pid = os.getpid()
        self._counter = itertools.count()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._owned: set[str] = set()
        self._refs: dict[str, int] = {}
        self.bytes_shared = 0  # cumulative, creator side
        # Interpreter-exit backstop.  The captured pid keeps a forked
        # child's copy of this finalizer from touching live segments.
        self._finalizer = weakref.finalize(
            self, ShmArena._cleanup, self._pid, self._segments, self._owned
        )

    # -- creation ------------------------------------------------------

    def _create(self, array: np.ndarray) -> tuple[ShmTensor, shared_memory.SharedMemory]:
        array = np.ascontiguousarray(array)
        name = f"{self.prefix}-{os.getpid():x}-{next(self._counter)}"
        # create registers with the (shared) resource tracker; the
        # registration is consumed by whichever process calls unlink()
        shm = shared_memory.SharedMemory(create=True, name=name, size=max(1, array.nbytes))
        if array.nbytes:
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
        self.bytes_shared += array.nbytes
        return ShmTensor(name, tuple(array.shape), array.dtype.str), shm

    def share(self, array: np.ndarray) -> ShmTensor:
        """Copy ``array`` into a new owned segment; unlinked on close."""
        tensor, shm = self._create(array)
        self._segments[tensor.name] = shm
        self._owned.add(tensor.name)
        self._refs[tensor.name] = 1
        return tensor

    def publish(self, array: np.ndarray) -> ShmTensor:
        """Copy ``array`` into a segment the *receiver* will adopt.

        The local mapping is closed immediately — the data lives on in
        ``/dev/shm`` until the adopting arena releases it (or a sweep
        collects it after a crash).
        """
        tensor, shm = self._create(array)
        shm.close()
        return tensor

    # -- mapping -------------------------------------------------------

    def _attach(self, tensor: ShmTensor) -> shared_memory.SharedMemory:
        shm = self._segments.get(tensor.name)
        if shm is None:
            # attach re-registers the name with the shared tracker — an
            # idempotent set-add, consumed once by the eventual unlink()
            shm = shared_memory.SharedMemory(name=tensor.name)
            self._segments[tensor.name] = shm
            self._refs[tensor.name] = 0
        return shm

    def view(self, tensor: ShmTensor, writable: bool = False) -> np.ndarray:
        """Zero-copy ndarray over the segment (read-only by default)."""
        shm = self._attach(tensor)
        self._refs[tensor.name] = self._refs.get(tensor.name, 0) + 1
        array = np.ndarray(tensor.shape, dtype=np.dtype(tensor.dtype), buffer=shm.buf)
        array.flags.writeable = writable
        return array

    def adopt(self, tensor: ShmTensor) -> np.ndarray:
        """Map a published segment and take over its unlink."""
        array = self.view(tensor)
        self._owned.add(tensor.name)
        return array

    # -- release -------------------------------------------------------

    def release(self, tensor: ShmTensor) -> None:
        """Drop one reference; the last one closes (and unlinks if owned).

        NumPy views handed out by :meth:`view` must not be used after
        the final release — copy first (``np.array(view)``) if the data
        has to outlive the segment.
        """
        name = tensor.name
        if name not in self._segments:
            return
        self._refs[name] = max(0, self._refs.get(name, 1) - 1)
        if self._refs[name] == 0:
            self._destroy(name)

    def _destroy(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        self._refs.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A live ndarray still points into the mapping: leave it
            # mapped (the finalizer retries at exit) but still unlink so
            # no /dev/shm entry outlives this process.
            self._segments[name] = shm
        if name in self._owned:
            self._owned.discard(name)
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Release every segment this arena touched (creator pid only)."""
        if os.getpid() != self._pid:
            return
        for name in list(self._segments):
            self._refs[name] = 0
            self._destroy(name)

    @staticmethod
    def _cleanup(pid: int, segments: dict, owned: set) -> None:
        if os.getpid() != pid:
            return
        for name, shm in list(segments.items()):
            try:
                shm.close()
            except BufferError:
                pass
            if name in owned:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        segments.clear()
        owned.clear()

    # -- crash backstop ------------------------------------------------

    def sweep(self) -> int:
        """Unlink any ``/dev/shm`` entry carrying this arena's prefix.

        Collects segments published by workers that died before the
        parent adopted them.  Returns the number of segments removed.
        """
        if not os.path.isdir(SHM_DIR):
            return 0
        removed = 0
        for entry in os.listdir(SHM_DIR):
            if not entry.startswith(self.prefix):
                continue
            self._refs[entry] = 0
            if entry in self._segments:
                self._owned.add(entry)
                self._destroy(entry)
                removed += 1
                continue
            try:
                shm = shared_memory.SharedMemory(name=entry)
            except FileNotFoundError:
                continue
            shm.close()
            try:
                shm.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    # -- introspection -------------------------------------------------

    @property
    def live_segments(self) -> int:
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.sweep()

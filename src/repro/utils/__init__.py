"""Shared utilities: RNG streams, validation, retry/backoff policies."""

from repro.utils.retry import CircuitBreaker, RetryPolicy
from repro.utils.rng import RngStream, derive_rng, spawn_rng
from repro.utils.validation import (
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "RngStream",
    "derive_rng",
    "spawn_rng",
    "check_in",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]

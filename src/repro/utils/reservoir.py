"""Reservoir sampling (Algorithm R) for streaming quantiles.

Serving runs push millions of request latencies; storing them all for a
p99 would dwarf the simulation itself. A fixed-size uniform reservoir
keeps an unbiased sample instead. ``add_many`` vectorises the
acceptance test so bulk inserts stay cheap once the stream is long.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Reservoir"]


class Reservoir:
    """A fixed-capacity uniform sample over a stream of floats."""

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values = np.empty(self.capacity, dtype=np.float64)
        self._count = 0  # stream length seen so far
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def stream_length(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        self._count += 1
        if self._count <= self.capacity:
            self._values[self._count - 1] = value
            return
        slot = int(self._rng.integers(0, self._count))
        if slot < self.capacity:
            self._values[slot] = value

    def add_many(self, values: np.ndarray) -> None:
        """Offer a batch; equivalent to ``add`` per element, vectorised."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        # Fill the reservoir directly while it has room.
        if self._count < self.capacity:
            room = self.capacity - self._count
            head = values[:room]
            self._values[self._count : self._count + head.size] = head
            self._count += head.size
            values = values[room:]
            if values.size == 0:
                return
        # Algorithm R acceptance for the rest: element with stream index
        # t (1-based) survives with probability capacity / t.
        stream_indices = self._count + 1 + np.arange(values.size)
        accepted = self._rng.random(values.size) < self.capacity / stream_indices
        for value in values[accepted]:
            slot = int(self._rng.integers(0, self.capacity))
            self._values[slot] = value
        self._count += values.size

    def values(self) -> np.ndarray:
        """A copy of the current sample."""
        return self._values[: len(self)].copy()

    def quantile(self, q: float) -> float:
        """Quantile estimate from the sample (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        if len(self) == 0:
            raise ConfigurationError("reservoir is empty")
        return float(np.quantile(self.values(), q))

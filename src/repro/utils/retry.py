"""Retry/backoff and circuit-breaker policies for flaky operations.

Every long-running Rafiki job talks to components that can fail
underneath it — parameter-server shards, model replicas, cluster nodes.
This module centralises the two resilience primitives the rest of the
library composes:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (seeded, so a retried run replays the exact
  same delay schedule), plus an optional per-call timeout measured on
  the injectable telemetry clock;
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine that stops hammering a failing dependency and probes it again
  after a recovery window.

Neither primitive ever calls ``time.sleep`` itself: delays are handed
to an injectable ``sleep`` callable (a no-op by default), so simulated
and test environments stay instant while real deployments may block.
Every attempt, exhaustion and circuit transition is recorded in the
process-wide telemetry registry (``repro_retry_attempts_total``,
``repro_retry_exhausted_total``, ``repro_circuit_open``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    RetryExhaustedError,
)

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and attempt caps.

    ``delay(attempt)`` for attempt ``k`` (0-based) is
    ``min(base_delay * multiplier**k, max_delay)``, scaled by a jitter
    factor drawn from a generator seeded with ``(seed, attempt)`` — the
    schedule is therefore a pure function of the policy, never of
    global RNG state, which keeps chaos traces bit-reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    #: jitter fraction in [0, 1): the delay is scaled by a factor drawn
    #: uniformly from [1 - jitter, 1 + jitter).
    jitter: float = 0.1
    #: per-call timeout in seconds measured on the telemetry clock
    #: (None disables the check).
    timeout: float | None = None
    #: exception types that trigger a retry; anything else propagates.
    retry_on: tuple = (Exception,)
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if not self.jitter:
            return raw
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, attempt)))
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())

    def delays(self) -> list[float]:
        """The full backoff schedule (one entry per possible retry)."""
        return [self.delay(k) for k in range(self.max_attempts - 1)]

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "",
        sleep: Callable[[float], None] | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` under this policy; return its result.

        ``name`` labels the telemetry counters; ``sleep`` receives each
        backoff delay (no-op when omitted); ``on_retry(attempt, error)``
        is notified before every retry. Raises
        :class:`RetryExhaustedError` once every attempt failed, and
        re-raises immediately on exceptions outside ``retry_on``. A
        call whose duration (on the telemetry clock) exceeds
        ``timeout`` is treated as a failed attempt even if it returned.
        """
        clock = telemetry.get_clock()
        registry = telemetry.get_registry()
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            registry.counter(
                "repro_retry_attempts_total",
                "Attempts made under a RetryPolicy, by call name.",
            ).inc(name=name or "(anonymous)")
            start = clock.now()
            try:
                result = fn(*args, **kwargs)
            except self.retry_on as exc:
                last_error = exc
            else:
                elapsed = clock.now() - start
                if self.timeout is not None and elapsed > self.timeout:
                    last_error = TimeoutError(
                        f"{name or 'call'} took {elapsed:.3f}s > timeout {self.timeout:.3f}s"
                    )
                else:
                    return result
            if attempt + 1 < self.max_attempts:
                if on_retry is not None:
                    on_retry(attempt, last_error)
                if sleep is not None:
                    sleep(self.delay(attempt))
        registry.counter(
            "repro_retry_exhausted_total",
            "Calls that failed on every allowed attempt, by call name.",
        ).inc(name=name or "(anonymous)")
        raise RetryExhaustedError(name, self.max_attempts, last_error)


@dataclass
class CircuitBreaker:
    """Closed / open / half-open breaker over the telemetry clock.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``recovery_time`` seconds (on the injectable telemetry clock) the
    breaker lets ``half_open_probes`` trial calls through, and
    ``success_threshold`` consecutive successes close it again. While
    open, :meth:`allow` returns ``False`` (and :meth:`check` raises
    :class:`CircuitOpenError`), so callers can shed load instead of
    hammering a failing dependency.
    """

    name: str = ""
    failure_threshold: int = 3
    recovery_time: float = 30.0
    success_threshold: int = 1
    half_open_probes: int = 1

    state: str = field(default="closed", init=False)
    _failures: int = field(default=0, init=False)
    _successes: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False)
    _probes_in_flight: int = field(default=0, init=False)
    opened_count: int = field(default=0, init=False)

    def __post_init__(self):
        if self.failure_threshold < 1 or self.success_threshold < 1:
            raise ConfigurationError("thresholds must be >= 1")
        if self.recovery_time < 0:
            raise ConfigurationError(
                f"recovery_time must be >= 0, got {self.recovery_time}"
            )

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now (may move open -> half-open)."""
        if self.state == "closed":
            return True
        now = telemetry.get_clock().now()
        if self.state == "open":
            if now - self._opened_at < self.recovery_time:
                return False
            self._transition("half_open")
            self._probes_in_flight = 0
            self._successes = 0
        # half-open: admit a bounded number of probe calls.
        if self._probes_in_flight >= self.half_open_probes:
            return False
        self._probes_in_flight += 1
        return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(f"circuit {self.name or '(anonymous)'} is open")

    def record_success(self) -> None:
        """Feed back a successful call (may close a half-open circuit)."""
        if self.state == "half_open":
            self._successes += 1
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if self._successes >= self.success_threshold:
                self._transition("closed")
                self._failures = 0
        else:
            self._failures = 0

    def record_failure(self) -> None:
        """Feed back a failed call (may open the circuit)."""
        if self.state == "half_open":
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._open()
            return
        self._failures += 1
        if self.state == "closed" and self._failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at = telemetry.get_clock().now()
        self.opened_count += 1
        self._transition("open")

    def _transition(self, state: str) -> None:
        previous, self.state = self.state, state
        registry = telemetry.get_registry()
        registry.counter(
            "repro_circuit_transitions_total",
            "Circuit-breaker state transitions, by breaker and edge.",
        ).inc(name=self.name or "(anonymous)", frm=previous, to=state)
        registry.gauge(
            "repro_circuit_open", "1 while the named circuit breaker is open."
        ).set(1.0 if state == "open" else 0.0, name=self.name or "(anonymous)")

    @property
    def closed(self) -> bool:
        """Whether the breaker is in the closed (healthy) state."""
        return self.state == "closed"

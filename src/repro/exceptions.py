"""Exception hierarchy for the Rafiki reproduction.

All library errors derive from :class:`RafikiError` so that callers can
catch one base class. Subsystems raise the most specific subclass that
describes the failure.
"""

from __future__ import annotations


class RafikiError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(RafikiError):
    """A user-supplied configuration value is invalid or inconsistent."""


class HyperSpaceError(ConfigurationError):
    """A hyper-parameter space definition is malformed.

    Raised for duplicate knob names, empty domains, unsatisfiable
    ``depends`` declarations (cycles, unknown names), or type mismatches
    between a knob's declared ``dtype`` and its domain.
    """


class TrialError(RafikiError):
    """A tuning trial failed to run or reported an invalid result."""


class StudyStoppedError(RafikiError):
    """An operation was attempted on a study that has already stopped."""


class AdvisorExhaustedError(RafikiError):
    """The trial advisor has no more trials to propose (e.g. exhausted grid)."""


class ParameterServerError(RafikiError):
    """A parameter-server get/put failed."""


class ParameterNotFoundError(ParameterServerError, KeyError):
    """The requested parameter name (or version) does not exist."""


class StorageError(RafikiError):
    """A data-store operation failed."""


class NotFoundError(StorageError, KeyError):
    """The referenced path, version or chunk does not exist in the store.

    Also raised when a path is deleted *while being read* — readers get
    this instead of a silently truncated blob.
    """


class DatasetNotFoundError(NotFoundError):
    """The named dataset is not present in the data store."""


class ChunkLostError(StorageError):
    """A chunk has no live replica (every holding datanode is down).

    Recoverable: the chunk's bytes may still exist on a dead node's
    disk and be resurrected when that node rejoins, or be re-stored by
    a writer-side :meth:`~repro.data.blockstore.BlockStore.ensure`.
    """


class ClusterError(RafikiError):
    """A cluster-management operation failed."""


class PlacementError(ClusterError):
    """No node has enough free resources to place a container."""


class NodeFailedError(ClusterError):
    """An operation targeted a node that has failed."""


class JobError(RafikiError):
    """A job-level failure (submission, lookup, or lifecycle violation)."""


class JobNotFoundError(JobError, KeyError):
    """The referenced job id is unknown to the manager or gateway."""


class ServingError(RafikiError):
    """An inference-service failure."""


class QueueOverflowError(ServingError):
    """The request queue exceeded its configured capacity."""


class RequestShedError(ServingError):
    """The serving front end refused a request (admission control).

    Carries the shed ``reason`` (``"rate_limit"``, ``"tenant_rate_limit"``,
    ``"queue_full"``, ``"tenant_queue_full"``, ``"deadline"``,
    ``"dispatch_failed"`` or ``"fault"``) and a
    ``retry_after`` hint in seconds — the earliest time at which a
    retry has a chance of being admitted. Gateways translate this into
    HTTP 429 with the hint in the body.
    """

    def __init__(self, reason: str, retry_after: float, detail: str = ""):
        message = f"request shed ({reason}); retry after {retry_after:.3f}s"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.reason = reason
        self.retry_after = float(retry_after)


class TenancyError(RafikiError):
    """Base class for multi-tenant control-plane errors."""


class TenantAccessError(TenancyError):
    """The named tenant is unknown or suspended.

    Gateways translate this into HTTP 403: the request authenticated a
    tenant identity the control plane refuses to serve, as opposed to a
    quota violation (429) which is a temporary resource condition.
    """

    def __init__(self, tenant: str, detail: str = ""):
        message = f"tenant {tenant!r} is not allowed"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.tenant = tenant


class QuotaExceededError(TenancyError):
    """A tenant asked for more of a resource than its quota allows.

    Carries the ``tenant``, the ``resource`` name (``"trials"``,
    ``"replicas"``, ``"ps_bytes"``, ``"store_bytes"``), the configured
    ``limit``, current ``used`` amount and the ``requested`` increment.
    Gateways translate this into HTTP 429: retrying after the tenant
    releases capacity (a job finishing, parameters deleted) can succeed.
    """

    def __init__(
        self,
        tenant: str,
        resource: str,
        limit: float,
        used: float,
        requested: float,
    ):
        super().__init__(
            f"tenant {tenant!r} over quota on {resource}: "
            f"used {used:g} + requested {requested:g} > limit {limit:g}"
        )
        self.tenant = tenant
        self.resource = resource
        self.limit = float(limit)
        self.used = float(used)
        self.requested = float(requested)


class ModelNotFoundError(RafikiError, KeyError):
    """The referenced model name is not registered in the zoo."""


class GatewayError(RafikiError):
    """A REST-gateway request failed (bad route, bad payload)."""


class TelemetryError(RafikiError):
    """A telemetry-registry operation failed (e.g. metric type conflict)."""


class ChaosError(RafikiError):
    """Base class for fault-injection and resilience-policy errors."""


class InjectedFault(ChaosError):
    """A deliberate failure raised by an active :class:`~repro.chaos.FaultPlan`.

    Instrumented call sites treat it exactly like an infrastructure
    failure (a crashed RPC, a dead replica), so resilience code paths
    can be exercised deterministically in tests.
    """


class DroppedResponse(InjectedFault):
    """An injected *drop*: the request was swallowed and never answered.

    Callers cannot tell whether the operation happened; the standard
    remedy is an idempotent retry.
    """


class RetryExhaustedError(ChaosError):
    """A retried operation failed on every allowed attempt."""

    def __init__(self, name: str, attempts: int, last_error: BaseException | None = None):
        super().__init__(
            f"{name or 'operation'} failed after {attempts} attempt(s): {last_error!r}"
        )
        self.name = name
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ChaosError):
    """A call was refused because its circuit breaker is open."""


class SQLError(RafikiError):
    """Base class for the mini SQL engine errors."""


class SQLParseError(SQLError):
    """The SQL text could not be parsed."""


class SQLExecutionError(SQLError):
    """The SQL statement failed during execution (unknown column, UDF error)."""

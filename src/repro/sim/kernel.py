"""A small deterministic discrete-event simulator.

The kernel supports two programming styles:

* **Callbacks** — ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``now + delay``.
* **Processes** — ``sim.spawn(gen)`` drives a generator; the generator
  ``yield``\\ s either a non-negative float (sleep for that many simulated
  seconds) or a :class:`Signal` (block until the signal fires; the value
  passed to :meth:`Signal.fire` becomes the result of the ``yield``).

Events scheduled for the same instant run in scheduling order, which
keeps runs bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.exceptions import ConfigurationError

__all__ = ["Simulator", "Signal", "EventHandle"]

Process = Generator[Any, Any, None]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "_cancelled")

    def __init__(self, time: float):
        self.time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from running (no-op if it already ran)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Signal:
    """A broadcast condition that simulated processes can wait on.

    ``fire(value)`` wakes every process currently waiting; each resumed
    process receives ``value`` as the result of its ``yield``.
    """

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str = "signal"):
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def fire(self, value: Any = None) -> int:
        """Wake all waiters, returning how many were woken."""
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Simulator:
    """Deterministic event loop over a virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay!r}")
        handle = EventHandle(self._now + delay)
        heapq.heappush(self._heap, (handle.time, next(self._counter), handle, lambda: fn(*args)))
        return handle

    def spawn(self, process: Process, delay: float = 0.0) -> EventHandle:
        """Start driving a generator process after ``delay`` seconds."""
        return self.schedule(delay, self._step_process, process, None)

    def _step_process(self, process: Process, send_value: Any) -> None:
        try:
            yielded = process.send(send_value)
        except StopIteration:
            return
        if isinstance(yielded, Signal):
            yielded._add_waiter(
                lambda value, p=process: self.schedule(0.0, self._step_process, p, value)
            )
        elif isinstance(yielded, (int, float)):
            self.schedule(float(yielded), self._step_process, process, None)
        else:
            raise ConfigurationError(
                "a simulated process must yield a delay (float) or a Signal, "
                f"got {type(yielded).__name__}"
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event; return ``False`` when the queue is empty."""
        while self._heap:
            time, _seq, handle, thunk = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            self._processed += 1
            thunk()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the horizon, the event budget, or exhaustion.

        Returns the simulated time at which execution stopped. When
        ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                break
            if self.step():
                executed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_all(self, max_events: int = 10_000_000) -> float:
        """Drain the event queue completely (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def drain(self, signals: Iterable[Signal]) -> None:
        """Fire ``signals`` so that no process is left blocked forever."""
        for signal in signals:
            signal.fire(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"

"""Discrete-event simulation kernel.

The serving experiments and the distributed-tuning scalability study run
in *simulated* seconds: a virtual clock advances from event to event, so
a 1,500-second serving trace or an 8-worker tuning study replays in
milliseconds of real time while preserving the exact queueing dynamics.
"""

from repro.sim.kernel import EventHandle, Signal, Simulator

__all__ = ["Simulator", "Signal", "EventHandle"]

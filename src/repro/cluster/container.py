"""Docker-container stand-ins."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cluster.node import Resources

__all__ = ["Container", "ContainerState", "ContainerRole"]

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"


class ContainerRole(enum.Enum):
    """What a container runs (Figure 7's box kinds)."""

    MASTER = "master"
    WORKER = "worker"
    DATA = "data"
    PARAMETER = "parameter"


@dataclass
class Container:
    """One container: an image (code bundle) plus a resource request."""

    image: str
    role: ContainerRole
    job_id: str
    request: Resources = field(default_factory=lambda: Resources(cpus=1, gpus=1, memory_gb=8))
    container_id: str = field(default_factory=lambda: f"ctr-{next(_container_ids)}")
    node_name: str | None = None
    state: ContainerState = ContainerState.PENDING
    restarts: int = 0
    #: container this one replaced after a node failure — lets recovery
    #: hooks hand the replacement its predecessor's in-flight work.
    predecessor: str | None = None

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Container({self.container_id}, {self.role.value}, job={self.job_id!r}, "
            f"node={self.node_name!r}, {self.state.value})"
        )

"""The Rafiki manager: placement, job lifecycle, failure recovery.

Placement follows the paper's stated preference: a job's master and
workers are co-located on one physical node when it fits, to avoid
network communication overhead; otherwise containers spill over to the
emptiest nodes (worst-fit, which balances load across the cluster).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro import telemetry
from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.container import Container, ContainerRole, ContainerState
from repro.cluster.node import Node, Resources
from repro.exceptions import (
    ClusterError,
    JobNotFoundError,
    PlacementError,
    QuotaExceededError,
    TenantAccessError,
)
from repro.tenancy import DEFAULT_TENANT, TenantRegistry

__all__ = ["ClusterManager", "JobRecord", "JobKind", "JobState"]

#: governed quota resource per job kind (system jobs are uncounted).
_QUOTA_RESOURCE = {"train": "trials", "inference": "replicas"}

_job_ids = itertools.count(1)


class JobKind(enum.Enum):
    TRAIN = "train"
    INFERENCE = "inference"
    #: system job hosting parameter-server shards (Figure 7's storage boxes).
    PARAMSERVER = "paramserver"
    #: system job hosting block-store datanodes (the HDFS-shaped layer).
    DATASTORE = "datastore"


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    STOPPED = "stopped"
    #: running with fewer containers than requested — a failed container
    #: could not be restarted for lack of capacity and is queued until a
    #: node recovers (graceful degradation instead of failing the job).
    DEGRADED = "degraded"


@dataclass
class JobRecord:
    """Book-keeping for one submitted job."""

    job_id: str
    kind: JobKind
    name: str
    containers: list[Container] = field(default_factory=list)
    state: JobState = JobState.PENDING
    spec: dict = field(default_factory=dict)
    #: owning tenant; quota charges and fair-share accounting key off this.
    tenant: str = DEFAULT_TENANT
    #: higher runs earlier among jobs of the same tenant in the pending queue.
    priority: int = 0
    #: anti-affinity preference, remembered so queued jobs place correctly.
    spread: bool = False
    #: why the job is queued (``"quota"`` or ``"capacity"``), while PENDING.
    pending_reason: str | None = None

    @property
    def master(self) -> Container | None:
        for container in self.containers:
            if container.role is ContainerRole.MASTER:
                return container
        return None

    @property
    def workers(self) -> list[Container]:
        return [c for c in self.containers if c.role is ContainerRole.WORKER]


class ClusterManager:
    """Places containers on nodes and recovers from failures."""

    def __init__(
        self,
        checkpoint_store: CheckpointStore | None = None,
        tenants: TenantRegistry | None = None,
    ):
        self.nodes: dict[str, Node] = {}
        self.jobs: dict[str, JobRecord] = {}
        self.containers: dict[str, Container] = {}
        self.checkpoints = checkpoint_store if checkpoint_store is not None else CheckpointStore()
        #: quota + fair-share authority; ``None`` disables enforcement.
        self.tenants = tenants
        self.recoveries = 0
        self._recovery_hooks: list[Callable[[Container], None]] = []
        #: failed containers waiting for capacity, oldest first.
        self._pending_restarts: list[Container] = []
        #: submitted jobs waiting for quota or capacity, oldest first.
        self._pending_jobs: list[JobRecord] = []
        #: last heartbeat per node, on the injectable telemetry clock.
        self.last_heartbeat: dict[str, float] = {}

    # ------------------------------------------------------------------
    # cluster topology
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ClusterError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.last_heartbeat[node.name] = telemetry.get_clock().now()
        self._publish_node_gauges()
        self._schedule_pending()

    def heartbeat(self, node_name: str) -> bool:
        """Record a liveness heartbeat from ``node_name``.

        Returns whether the node is currently alive. The dashboard's
        node table and the ``repro_cluster_heartbeats_total`` counter
        are fed from here.
        """
        node = self.nodes.get(node_name)
        if node is None:
            raise ClusterError(f"unknown node {node_name!r}")
        self.last_heartbeat[node_name] = telemetry.get_clock().now()
        telemetry.get_registry().counter(
            "repro_cluster_heartbeats_total", "Node liveness heartbeats received."
        ).inc(node=node_name)
        self._publish_node_gauges()
        return node.alive

    def detect_failures(self, timeout: float) -> list[str]:
        """Fail every alive node whose last heartbeat is older than ``timeout``.

        This is the push-based failure detector: nodes heartbeat into
        the manager, and a silence longer than ``timeout`` seconds (on
        the injectable telemetry clock) is treated as a node failure —
        the node's containers are recovered exactly as in
        :meth:`fail_node`. Returns the names of newly failed nodes.
        """
        now = telemetry.get_clock().now()
        stale = [
            name
            for name, node in sorted(self.nodes.items())
            if node.alive and now - self.last_heartbeat.get(name, now) > timeout
        ]
        for name in stale:
            self.fail_node(name)
        return stale

    def _publish_node_gauges(self) -> None:
        registry = telemetry.get_registry()
        registry.gauge(
            "repro_cluster_nodes_alive", "Nodes currently alive."
        ).set(len(self.alive_nodes()))
        registry.gauge(
            "repro_cluster_nodes_total", "Nodes registered with the manager."
        ).set(len(self.nodes))

    def alive_nodes(self) -> list[Node]:
        return [node for node in self.nodes.values() if node.alive]

    def total_free(self) -> Resources:
        total = Resources(0, 0, 0)
        for node in self.alive_nodes():
            total = total + node.free
        return total

    # ------------------------------------------------------------------
    # job submission
    # ------------------------------------------------------------------

    def submit_job(
        self,
        kind: JobKind,
        name: str,
        num_workers: int = 1,
        master_request: Resources | None = None,
        worker_request: Resources | None = None,
        spec: dict | None = None,
        worker_role: ContainerRole = ContainerRole.WORKER,
        spread: bool = False,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
        queue: bool = True,
    ) -> JobRecord:
        """Create containers for a job and place them.

        One master plus ``num_workers`` workers (``worker_role`` lets
        system jobs mark them e.g. ``PARAMETER`` shards). ``spread=True``
        skips the single-node co-location preference *and* enforces
        anti-affinity: replicated storage wants its containers on
        *different* nodes, the opposite of a tuning job's
        network-locality preference.

        When the tenant is over quota or the cluster lacks capacity the
        job is *queued* (returned in :attr:`JobState.PENDING`, no
        containers placed) and scheduled later in max-min fair-share
        order as resources free up. ``queue=False`` restores the old
        fail-fast contract — :class:`QuotaExceededError` /
        :class:`PlacementError` — for system jobs whose callers need
        containers immediately.
        """
        if num_workers < 0:
            raise ClusterError(f"num_workers must be >= 0, got {num_workers}")
        if self.tenants is not None:
            self.tenants.resolve(tenant)
        job_id = f"job-{next(_job_ids)}"
        master_request = master_request or Resources(cpus=1, gpus=0, memory_gb=4)
        worker_request = worker_request or Resources(cpus=1, gpus=1, memory_gb=8)
        containers = [
            Container(image=f"rafiki/{kind.value}-master", role=ContainerRole.MASTER,
                      job_id=job_id, request=master_request)
        ]
        for _ in range(num_workers):
            containers.append(
                Container(image=f"rafiki/{kind.value}-worker", role=worker_role,
                          job_id=job_id, request=worker_request)
            )
        job = JobRecord(
            job_id=job_id, kind=kind, name=name, containers=containers,
            spec=dict(spec or {}), tenant=tenant, priority=int(priority),
            spread=spread,
        )
        self.jobs[job_id] = job
        telemetry.get_registry().counter(
            "repro_cluster_jobs_submitted_total",
            "Jobs submitted to the cluster, by kind and tenant.",
        ).inc(kind=kind.value, tenant=tenant)
        try:
            self._quota_check(job)
        except Exception:
            if not queue:
                del self.jobs[job_id]
                raise
            self._enqueue_pending(job, reason="quota")
            return job
        try:
            self._activate(job)
        except PlacementError:
            if not queue:
                del self.jobs[job_id]
                raise
            self._enqueue_pending(job, reason="capacity")
        return job

    def _quota_check(self, job: JobRecord) -> None:
        """Raise if placing ``job`` would take its tenant over quota."""
        resource = _QUOTA_RESOURCE.get(job.kind.value)
        if self.tenants is None or resource is None:
            return
        self.tenants.check(job.tenant, resource, len(job.workers))

    def _activate(self, job: JobRecord) -> None:
        """Place all of a job's containers and charge the tenant quota.

        Raises :class:`PlacementError` (placing nothing) if the full
        job does not fit on the alive nodes.
        """
        placements = self._plan_placement(job.containers, spread=job.spread)
        for container, node in zip(job.containers, placements):
            node.allocate(container.container_id, container.request)
            container.node_name = node.name
            container.state = ContainerState.RUNNING
            self.containers[container.container_id] = container
        resource = _QUOTA_RESOURCE.get(job.kind.value)
        if self.tenants is not None and resource is not None:
            self.tenants.charge(job.tenant, resource, len(job.workers))
        job.state = JobState.RUNNING
        job.pending_reason = None

    def _plan_placement(self, containers: list[Container], spread: bool = False) -> list[Node]:
        """Choose a node per container, co-locating the job when possible."""
        # First try to fit the whole job onto a single alive node
        # (skipped for spread jobs, which want anti-affinity).
        total = Resources(0, 0, 0)
        for container in containers:
            total = total + container.request
        if not spread:
            for node in self._nodes_by_free():
                if node.can_host(total):
                    return [node] * len(containers)
        # Otherwise spread greedily, simulating the allocation without
        # mutating nodes. Nodes already planned for this job sort last
        # (anti-affinity): a single over-provisioned node must not
        # absorb every replica of a spread job, or the block store's
        # host-diversity assumption silently breaks.
        free: dict[str, Resources] = {n.name: n.free for n in self.alive_nodes()}
        planned: dict[str, int] = {}
        plan: list[Node] = []
        for container in containers:
            candidates = sorted(
                (node for node in self.alive_nodes()
                 if container.request.fits_within(free[node.name])),
                key=lambda n: (
                    planned.get(n.name, 0) if spread else 0,
                    -free[n.name].gpus, -free[n.name].cpus, n.name,
                ),
            )
            if not candidates:
                raise PlacementError(
                    f"no node can host {container.request} for {container.image!r}"
                )
            chosen = candidates[0]
            free[chosen.name] = free[chosen.name] - container.request
            planned[chosen.name] = planned.get(chosen.name, 0) + 1
            plan.append(chosen)
        return plan

    def _nodes_by_free(self) -> list[Node]:
        return sorted(
            self.alive_nodes(),
            key=lambda n: (-n.free.gpus, -n.free.cpus, n.name),
        )

    # ------------------------------------------------------------------
    # pending-job queue and fair-share scheduling
    # ------------------------------------------------------------------

    def pending_jobs(self) -> list[JobRecord]:
        """Jobs queued for quota or capacity, in arrival order."""
        return list(self._pending_jobs)

    def _enqueue_pending(self, job: JobRecord, reason: str) -> None:
        job.state = JobState.PENDING
        job.pending_reason = reason
        self._pending_jobs.append(job)
        telemetry.get_registry().counter(
            "repro_cluster_jobs_queued_total",
            "Jobs queued instead of placed, by tenant and reason.",
        ).inc(tenant=job.tenant, reason=reason)
        self._publish_pending_job_gauge()

    def _publish_pending_job_gauge(self) -> None:
        telemetry.get_registry().gauge(
            "repro_cluster_pending_jobs",
            "Submitted jobs waiting for quota or capacity.",
        ).set(len(self._pending_jobs))

    def _tenant_allocation(self) -> dict[str, Resources]:
        """Resources currently held by each tenant's active jobs."""
        allocation: dict[str, Resources] = {}
        for job in self.jobs.values():
            if job.state not in (JobState.RUNNING, JobState.DEGRADED):
                continue
            for container in job.containers:
                if container.node_name is None or container.state is not ContainerState.RUNNING:
                    continue
                current = allocation.get(job.tenant, Resources(0, 0, 0))
                allocation[job.tenant] = current + container.request
        return allocation

    def _dominant_share(self, tenant: str, allocation: dict[str, Resources]) -> float:
        """Weighted dominant-resource share of ``tenant`` (DRF-style)."""
        total = Resources(0, 0, 0)
        for node in self.alive_nodes():
            total = total + node.capacity
        held = allocation.get(tenant, Resources(0, 0, 0))
        shares = [
            held.cpus / total.cpus if total.cpus else 0.0,
            held.gpus / total.gpus if total.gpus else 0.0,
            held.memory_gb / total.memory_gb if total.memory_gb else 0.0,
        ]
        weight = 1.0
        if self.tenants is not None:
            # weight_of never raises: a suspended tenant with queued
            # jobs must not wedge ranking for everyone else.
            weight = max(self.tenants.weight_of(tenant), 1e-9)
        return max(shares) / weight

    def _rank_pending(self) -> list[JobRecord]:
        """Pending jobs in max-min fair order.

        The tenant holding the smallest weighted dominant-resource
        share goes first (max-min fairness over dominant resources);
        within a tenant, higher ``priority`` then FIFO arrival order.
        """
        allocation = self._tenant_allocation()
        shares = {
            tenant: self._dominant_share(tenant, allocation)
            for tenant in {job.tenant for job in self._pending_jobs}
        }
        arrival = {id(job): index for index, job in enumerate(self._pending_jobs)}
        return sorted(
            self._pending_jobs,
            key=lambda job: (shares[job.tenant], -job.priority, arrival[id(job)]),
        )

    def _schedule_pending(self) -> None:
        """Drain the pending queue while quota and capacity allow.

        Re-ranks after every successful placement so the fair-share
        ordering reflects the resources the previous pick just took.
        """
        progressed = True
        while progressed and self._pending_jobs:
            progressed = False
            for job in self._rank_pending():
                try:
                    self._quota_check(job)
                    self._activate(job)
                except (PlacementError, QuotaExceededError, TenantAccessError):
                    continue
                self._pending_jobs.remove(job)
                progressed = True
                break
        self._publish_pending_job_gauge()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def get_job(self, job_id: str) -> JobRecord:
        if job_id not in self.jobs:
            raise JobNotFoundError(job_id)
        return self.jobs[job_id]

    def stop_job(self, job_id: str, state: JobState = JobState.STOPPED) -> None:
        job = self.get_job(job_id)
        was_charged = job.state in (JobState.RUNNING, JobState.DEGRADED)
        if job in self._pending_jobs:
            self._pending_jobs.remove(job)
            self._publish_pending_job_gauge()
        for container in job.containers:
            self._release(container, ContainerState.STOPPED)
        # Drop queued restarts for this job: a stopped job must not
        # resurrect containers when a node later recovers, and the
        # pending-restarts gauge must not report ghosts.
        if any(c.job_id == job_id for c in self._pending_restarts):
            self._pending_restarts = [
                c for c in self._pending_restarts if c.job_id != job_id
            ]
            telemetry.get_registry().gauge(
                "repro_cluster_pending_restarts",
                "Failed containers waiting for cluster capacity.",
            ).set(len(self._pending_restarts))
        job.state = state
        resource = _QUOTA_RESOURCE.get(job.kind.value)
        if was_charged and self.tenants is not None and resource is not None:
            self.tenants.release(job.tenant, resource, len(job.workers))
        self._schedule_pending()

    def complete_job(self, job_id: str) -> None:
        self.stop_job(job_id, state=JobState.COMPLETED)

    def _release(self, container: Container, state: ContainerState) -> None:
        if container.node_name is not None:
            node = self.nodes.get(container.node_name)
            if node is not None:
                node.release(container.container_id, container.request)
        container.state = state

    # ------------------------------------------------------------------
    # failure recovery
    # ------------------------------------------------------------------

    def on_recovery(self, hook: Callable[[Container], None]) -> None:
        """Register a callback invoked with every restarted container."""
        self._recovery_hooks.append(hook)

    def fail_node(self, node_name: str) -> list[Container]:
        """Fail a node and recover its containers elsewhere.

        Stateless workers (and masters, whose small state lives in the
        checkpoint store) are restarted as *new* containers on surviving
        nodes. Returns the replacement containers. Containers that do
        not fit anywhere stay queued, their job runs DEGRADED, and the
        restart is retried when capacity returns (:meth:`recover_node`).
        """
        if node_name not in self.nodes:
            raise ClusterError(f"unknown node {node_name!r}")
        lost_ids = self.nodes[node_name].fail()
        telemetry.get_registry().counter(
            "repro_cluster_node_failures_total", "Node failures observed."
        ).inc()
        self._publish_node_gauges()
        replacements: list[Container] = []
        for container_id in sorted(lost_ids):
            container = self.containers[container_id]
            container.state = ContainerState.FAILED
            replacement = self._restart(container)
            if replacement is not None:
                replacements.append(replacement)
        return replacements

    def _restart(self, failed: Container) -> Container | None:
        job = self.jobs.get(failed.job_id)
        if job is None or job.state not in (JobState.RUNNING, JobState.DEGRADED):
            return None
        replacement = Container(
            image=failed.image,
            role=failed.role,
            job_id=failed.job_id,
            request=failed.request,
            restarts=failed.restarts + 1,
            predecessor=failed.container_id,
        )
        for node in self._nodes_by_free():
            if node.can_host(replacement.request):
                node.allocate(replacement.container_id, replacement.request)
                replacement.node_name = node.name
                replacement.state = ContainerState.RUNNING
                job.containers.remove(failed)
                job.containers.append(replacement)
                self.containers[replacement.container_id] = replacement
                self.recoveries += 1
                telemetry.get_registry().counter(
                    "repro_cluster_recoveries_total",
                    "Containers restarted after a node failure.",
                ).inc()
                for hook in self._recovery_hooks:
                    hook(replacement)
                return replacement
        # Insufficient capacity: degrade instead of failing the whole
        # job, and queue the restart for when a node comes back.
        job.state = JobState.DEGRADED
        self._pending_restarts.append(failed)
        telemetry.get_registry().gauge(
            "repro_cluster_pending_restarts",
            "Failed containers waiting for cluster capacity.",
        ).set(len(self._pending_restarts))
        return None

    def recover_node(self, node_name: str) -> list[Container]:
        """Bring a node back and drain queued restarts onto it.

        Jobs whose queued containers all restart successfully move back
        from DEGRADED to RUNNING. Returns the containers started from
        the pending-restart queue.
        """
        if node_name not in self.nodes:
            raise ClusterError(f"unknown node {node_name!r}")
        self.nodes[node_name].recover()
        self.last_heartbeat[node_name] = telemetry.get_clock().now()
        self._publish_node_gauges()
        pending, self._pending_restarts = self._pending_restarts, []
        started: list[Container] = []
        for failed in pending:
            replacement = self._restart(failed)
            if replacement is not None:
                started.append(replacement)
        restarted_ids = {c.predecessor for c in started}
        for failed in pending:
            if failed.container_id not in restarted_ids:
                continue
            job = self.jobs.get(failed.job_id)
            if job is None or job.state is not JobState.DEGRADED:
                continue
            if not any(q.job_id == job.job_id for q in self._pending_restarts):
                job.state = JobState.RUNNING
        telemetry.get_registry().gauge(
            "repro_cluster_pending_restarts",
            "Failed containers waiting for cluster capacity.",
        ).set(len(self._pending_restarts))
        self._schedule_pending()
        return started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterManager(nodes={len(self.nodes)}, jobs={len(self.jobs)}, "
            f"recoveries={self.recoveries})"
        )

"""Physical nodes of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ClusterError, NodeFailedError

__all__ = ["Node", "Resources"]


@dataclass(frozen=True)
class Resources:
    """A resource bundle (the paper's nodes: 1 CPU, 3 GPUs, 64 GB)."""

    cpus: float = 1.0
    gpus: float = 0.0
    memory_gb: float = 1.0

    def fits_within(self, other: "Resources") -> bool:
        return (
            self.cpus <= other.cpus + 1e-9
            and self.gpus <= other.gpus + 1e-9
            and self.memory_gb <= other.memory_gb + 1e-9
        )

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.cpus + other.cpus, self.gpus + other.gpus, self.memory_gb + other.memory_gb
        )

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(
            self.cpus - other.cpus, self.gpus - other.gpus, self.memory_gb - other.memory_gb
        )


@dataclass
class Node:
    """One physical machine hosting containers."""

    name: str
    capacity: Resources = field(default_factory=lambda: Resources(cpus=6, gpus=3, memory_gb=64))
    alive: bool = True
    container_ids: set[str] = field(default_factory=set)
    allocated: Resources = field(default_factory=Resources)

    def __post_init__(self):
        if not self.container_ids:
            self.allocated = Resources(0, 0, 0)

    @property
    def free(self) -> Resources:
        return self.capacity - self.allocated

    def can_host(self, request: Resources) -> bool:
        return self.alive and request.fits_within(self.free)

    def allocate(self, container_id: str, request: Resources) -> None:
        if not self.alive:
            raise NodeFailedError(self.name)
        if not request.fits_within(self.free):
            raise ClusterError(
                f"node {self.name!r} cannot host {request} (free: {self.free})"
            )
        self.container_ids.add(container_id)
        self.allocated = self.allocated + request

    def release(self, container_id: str, request: Resources) -> None:
        if container_id in self.container_ids:
            self.container_ids.discard(container_id)
            self.allocated = self.allocated - request

    def fail(self) -> set[str]:
        """Mark the node failed; return the ids of the containers it hosted."""
        self.alive = False
        lost = set(self.container_ids)
        self.container_ids.clear()
        self.allocated = Resources(0, 0, 0)
        return lost

    def recover(self) -> None:
        """Bring a failed node back (empty of containers)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"Node({self.name!r}, {state}, containers={len(self.container_ids)})"

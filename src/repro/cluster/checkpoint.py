"""Checkpointing of (small) master state for failure recovery.

Section 6.3: workers are stateless and simply restarted; masters hold
state (best trial so far, RL learner state) that Rafiki checkpoints for
fast recovery. Snapshots are deep-copied via pickle so later mutation of
the live object cannot corrupt a stored checkpoint.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.exceptions import ClusterError

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Versioned snapshots keyed by owner name."""

    def __init__(self, keep_last: int = 3):
        if keep_last < 1:
            raise ClusterError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = int(keep_last)
        self._snapshots: dict[str, list[bytes]] = {}

    def save(self, owner: str, state: Any) -> int:
        """Snapshot ``state`` for ``owner``; return the version number."""
        blobs = self._snapshots.setdefault(owner, [])
        blobs.append(pickle.dumps(state, pickle.HIGHEST_PROTOCOL))
        if len(blobs) > self.keep_last:
            del blobs[: len(blobs) - self.keep_last]
        return len(blobs)

    def restore(self, owner: str, version: int | None = None) -> Any:
        """Return a deep copy of the latest (or requested) snapshot."""
        blobs = self._snapshots.get(owner)
        if not blobs:
            raise ClusterError(f"no checkpoint for {owner!r}")
        if version is None:
            blob = blobs[-1]
        else:
            if not 1 <= version <= len(blobs):
                raise ClusterError(f"no checkpoint version {version} for {owner!r}")
            blob = blobs[version - 1]
        return pickle.loads(blob)

    def has(self, owner: str) -> bool:
        return bool(self._snapshots.get(owner))

    def versions(self, owner: str) -> int:
        return len(self._snapshots.get(owner, []))

    def drop(self, owner: str) -> None:
        self._snapshots.pop(owner, None)

"""Master/worker message protocol.

The message kinds mirror Algorithm 1 and 2 of the paper: workers send
``kRequest`` to ask for a trial, ``kReport`` to report validation
performance, ``kFinish`` when a trial ends; the master replies with a
trial assignment, ``kPut`` (persist your parameters to the parameter
server) or ``kStop`` (early-stop the current trial).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageType", "Message", "Mailbox"]


class MessageType(enum.Enum):
    """Protocol message kinds (named after the paper's constants)."""

    REQUEST = "kRequest"
    REPORT = "kReport"
    FINISH = "kFinish"
    PUT = "kPut"
    STOP = "kStop"
    TRIAL = "kTrial"
    SHUTDOWN = "kShutdown"


_message_ids = itertools.count(1)


@dataclass
class Message:
    """A single protocol message."""

    type: MessageType
    sender: str
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.type.value}, from={self.sender!r}, payload={self.payload})"


class Mailbox:
    """A FIFO message queue with per-sender fairness preserved by arrival order."""

    def __init__(self, owner: str):
        self.owner = owner
        self._queue: deque[Message] = deque()
        self.delivered = 0

    def send(self, message: Message) -> None:
        self._queue.append(message)

    def receive(self) -> Message | None:
        """Pop the oldest message, or ``None`` when empty."""
        if not self._queue:
            return None
        self.delivered += 1
        return self._queue.popleft()

    def peek(self) -> Message | None:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

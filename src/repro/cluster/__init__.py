"""Simulated cluster management (Section 6.1 and 6.3).

Stands in for Kubernetes + Docker: nodes host containers, the manager
places masters/workers (preferring to co-locate a job's master and
workers on one node, as the paper does to avoid network overhead),
stateless workers are recovered by restarting containers, and masters
recover from small checkpointed state.
"""

from repro.cluster.checkpoint import CheckpointStore
from repro.cluster.container import Container, ContainerState
from repro.cluster.failure import FailureInjector
from repro.cluster.manager import ClusterManager, JobRecord
from repro.cluster.message import Mailbox, Message, MessageType
from repro.cluster.node import Node

__all__ = [
    "Node",
    "Container",
    "ContainerState",
    "ClusterManager",
    "JobRecord",
    "Mailbox",
    "Message",
    "MessageType",
    "CheckpointStore",
    "FailureInjector",
]

"""Failure injection for recovery testing.

Schedules node failures (and optional recoveries) either immediately or
on a :class:`~repro.sim.Simulator` clock, so integration tests can
verify that tuning and serving jobs survive mid-run crashes.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.manager import ClusterManager
from repro.sim import Simulator
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["FailureInjector"]


class FailureInjector:
    """Deterministic or randomised node-failure schedules."""

    def __init__(self, manager: ClusterManager, rng: np.random.Generator | None = None):
        self.manager = manager
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.injected: list[str] = []

    def fail_now(self, node_name: str, recover_after: float | None = None,
                 sim: Simulator | None = None) -> None:
        """Fail a node immediately; optionally schedule its recovery."""
        self.manager.fail_node(node_name)
        self.injected.append(node_name)
        if recover_after is not None:
            if sim is None:
                raise ValueError("recover_after requires a simulator")
            check_non_negative("recover_after", recover_after)
            sim.schedule(recover_after, self.manager.recover_node, node_name)

    def schedule_failure(self, sim: Simulator, delay: float, node_name: str,
                         recover_after: float | None = None) -> None:
        """Fail ``node_name`` after ``delay`` simulated seconds."""
        check_non_negative("delay", delay)
        sim.schedule(delay, self.fail_now, node_name, recover_after, sim)

    def random_failures(self, sim: Simulator, horizon: float, rate_per_second: float,
                        mean_downtime: float = 30.0) -> int:
        """Poisson failure process over alive nodes until ``horizon``.

        Targets are drawn from the nodes alive *at scheduling time*
        (dead nodes cannot fail again; ``_fail_if_alive`` re-checks at
        fire time in case the schedule raced a recovery). Scheduling
        stops early if every node is already dead, and an empty cluster
        or a zero rate schedules nothing. Returns how many failures
        were scheduled.
        """
        check_non_negative("horizon", horizon)
        check_probability("rate_per_second (as prob density must be small)", min(rate_per_second, 1.0))
        scheduled = 0
        t = float(self._rng.exponential(1.0 / rate_per_second)) if rate_per_second > 0 else horizon + 1
        while t < horizon:
            names = sorted(node.name for node in self.manager.alive_nodes())
            if not names:
                break
            node_name = names[int(self._rng.integers(0, len(names)))]
            downtime = float(self._rng.exponential(mean_downtime))
            sim.schedule(t, self._fail_if_alive, node_name, downtime, sim)
            scheduled += 1
            t += float(self._rng.exponential(1.0 / rate_per_second))
        return scheduled

    def _fail_if_alive(self, node_name: str, downtime: float, sim: Simulator) -> None:
        node = self.manager.nodes.get(node_name)
        if node is not None and node.alive:
            self.fail_now(node_name, recover_after=downtime, sim=sim)

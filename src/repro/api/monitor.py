"""Job and cluster monitoring (the paper's Figure 18 web interface).

Rafiki ships a web dashboard; here the same information is rendered as
plain-text tables (and JSON through the gateway's monitoring routes):
training jobs with their best accuracy, deployed inference jobs with
query counts, per-node cluster utilisation — and, since the telemetry
layer landed, the live contents of the process-wide metrics registry
(every counter/gauge/histogram the subsystems record), so the
dashboard shows real measured activity rather than only book-keeping.
"""

from __future__ import annotations

from repro import telemetry
from repro.core.system import Rafiki

__all__ = ["render_dashboard", "dashboard_data", "telemetry_summary"]


def telemetry_summary(registry: "telemetry.MetricsRegistry | None" = None) -> dict:
    """A flat, render-friendly view of the metrics registry.

    Counters and gauges become ``{"name{labels}": value}``; histograms
    collapse to their count/sum/mean. The full bucket detail stays
    available through :func:`repro.telemetry.snapshot`.
    """
    registry = registry if registry is not None else telemetry.get_registry()
    snap = registry.snapshot()
    flat: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for section in ("counters", "gauges"):
        for name, family in snap[section].items():
            for labels, value in family["values"].items():
                key = f"{name}{{{labels}}}" if labels else name
                flat[section][key] = value
    for name, family in snap["histograms"].items():
        for labels, series in family["series"].items():
            key = f"{name}{{{labels}}}" if labels else name
            count = series["count"]
            flat["histograms"][key] = {
                "count": count,
                "sum": series["sum"],
                "mean": series["sum"] / count if count else 0.0,
            }
    return flat


def dashboard_data(system: Rafiki) -> dict:
    """The dashboard's content as a JSON-serialisable dict.

    Job/cluster tables come from the facade's book-keeping; the
    ``telemetry`` section reads the live process-wide metrics registry.
    """
    train_rows = [
        {
            "job_id": info.job_id,
            "name": info.name,
            "task": info.task,
            "dataset": info.dataset,
            "status": info.status,
            "models": list(info.model_names),
            "best": info.best_performance,
        }
        for info in system.train_jobs.values()
    ]
    inference_rows = [
        {
            "job_id": info.job_id,
            "status": info.status,
            "models": [spec.model_name for spec in info.specs],
            "queries_served": info.queries_served,
            "cache_hit_rate": info.cache.hit_rate if info.cache is not None else None,
        }
        for info in system.inference_jobs.values()
    ]
    node_rows = [
        {
            "name": node.name,
            "alive": node.alive,
            "gpus_used": node.allocated.gpus,
            "gpus_total": node.capacity.gpus,
            "containers": len(node.container_ids),
        }
        for node in system.cluster.nodes.values()
    ]
    return {
        "train_jobs": train_rows,
        "inference_jobs": inference_rows,
        "nodes": node_rows,
        "parameter_server": {
            "keys": len(system.param_server.keys()),
            "cache_hit_rate": system.param_server.cache.hit_rate,
        },
        "telemetry": telemetry_summary(),
    }


def render_dashboard(system: Rafiki) -> str:
    """A human-readable dashboard (what the web UI would show)."""
    data = dashboard_data(system)
    lines = ["=== training jobs ==="]
    if data["train_jobs"]:
        lines.append(f"{'job':<10} {'name':<14} {'status':<10} {'best':>6}  models")
        for row in data["train_jobs"]:
            lines.append(
                f"{row['job_id']:<10} {row['name']:<14} {row['status']:<10} "
                f"{row['best']:>6.3f}  {', '.join(row['models'])}"
            )
    else:
        lines.append("(none)")
    lines.append("")
    lines.append("=== inference jobs ===")
    if data["inference_jobs"]:
        lines.append(f"{'job':<10} {'status':<10} {'queries':>8} {'cache':>6}  models")
        for row in data["inference_jobs"]:
            cache = f"{row['cache_hit_rate']:.0%}" if row["cache_hit_rate"] is not None else "off"
            lines.append(
                f"{row['job_id']:<10} {row['status']:<10} {row['queries_served']:>8} "
                f"{cache:>6}  {', '.join(row['models'])}"
            )
    else:
        lines.append("(none)")
    lines.append("")
    lines.append("=== cluster ===")
    lines.append(f"{'node':<10} {'state':<6} {'gpus':>9} {'containers':>11}")
    for row in data["nodes"]:
        state = "up" if row["alive"] else "DOWN"
        lines.append(
            f"{row['name']:<10} {state:<6} {row['gpus_used']:.0f}/{row['gpus_total']:.0f}"
            f"{'':>5} {row['containers']:>11}"
        )
    ps = data["parameter_server"]
    lines.append("")
    lines.append(
        f"parameter server: {ps['keys']} keys, cache hit rate {ps['cache_hit_rate']:.0%}"
    )
    flat = data["telemetry"]
    lines.append("")
    lines.append("=== telemetry ===")
    rows = sorted(flat["counters"].items()) + sorted(flat["gauges"].items())
    if rows or flat["histograms"]:
        for name, value in rows:
            lines.append(f"{name:<58} {value:>12g}")
        for name, stats in sorted(flat["histograms"].items()):
            lines.append(
                f"{name:<58} n={stats['count']} mean={stats['mean']:.6g}"
            )
    else:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)

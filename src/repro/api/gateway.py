"""A REST-style gateway over the Rafiki facade.

Routes mirror what the paper's web API exposes (job submission, job
monitoring, prediction queries). Bodies are JSON-serialisable dicts;
image payloads travel as nested lists, exactly as a real HTTP gateway
would receive them. There is no socket — ``handle`` is called directly
— but every request passes through JSON encode/decode so the data path
is honest.

``handle_async`` is the high-concurrency twin: query routes with an
attached :class:`~repro.core.serve.frontend.AsyncServeFrontend` go
through admission control and SLO-aware batching (concurrent callers
share hardware batches); admission refusals surface as HTTP 429 with a
``retry_after`` hint. Every other route delegates to the synchronous
path unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import chaos, telemetry
from repro.core.system import ModelSpec, Rafiki
from repro.core.tune import HyperConf
from repro.exceptions import (
    DatasetNotFoundError,
    DroppedResponse,
    GatewayError,
    InjectedFault,
    JobNotFoundError,
    ModelNotFoundError,
    ParameterNotFoundError,
    QueueOverflowError,
    QuotaExceededError,
    RafikiError,
    RequestShedError,
    TenantAccessError,
)
from repro.tenancy import DEFAULT_TENANT, current_tenant, tenant_context

__all__ = ["Gateway", "Response", "make_query_executor"]

#: exception types that mean "the referenced resource does not exist"
#: and map to 404. Every other KeyError a handler leaks comes from a
#: malformed request body (a missing field) and maps to 400.
_NOT_FOUND_ERRORS = (
    JobNotFoundError,
    DatasetNotFoundError,
    ParameterNotFoundError,
    ModelNotFoundError,
)


def _json_default(value: Any):
    """Numpy-aware fallback for ``json.dumps`` over handler results."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON-serialisable")

#: gateway handler latency in seconds (in-process, so sub-millisecond).
REQUEST_SECONDS_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


@dataclass
class Response:
    """An HTTP-like response."""

    status: int
    body: dict[str, Any]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class Gateway:
    """Dispatches ``(method, path, body)`` requests to the facade."""

    def __init__(self, system: Rafiki):
        self.system = system
        self._routes: list[tuple[str, re.Pattern, Callable, str]] = [
            ("POST", re.compile(r"^/datasets$"), self._post_dataset, "/datasets"),
            ("GET", re.compile(r"^/datasets$"), self._list_datasets, "/datasets"),
            ("POST", re.compile(r"^/train$"), self._post_train, "/train"),
            ("GET", re.compile(r"^/train/(?P<job_id>[\w\-./]+)/models$"), self._get_models,
             "/train/{job_id}/models"),
            ("GET", re.compile(r"^/train/(?P<job_id>[\w\-./]+)$"), self._get_train,
             "/train/{job_id}"),
            ("POST", re.compile(r"^/inference$"), self._post_inference, "/inference"),
            ("POST", re.compile(r"^/inference/(?P<job_id>[\w\-./]+)/redeploy$"),
             self._redeploy_inference, "/inference/{job_id}/redeploy"),
            ("GET", re.compile(r"^/inference/(?P<job_id>[\w\-./]+)$"), self._get_inference,
             "/inference/{job_id}"),
            ("DELETE", re.compile(r"^/inference/(?P<job_id>[\w\-./]+)$"), self._stop_inference,
             "/inference/{job_id}"),
            ("POST", re.compile(r"^/query/(?P<job_id>[\w\-./]+)$"), self._post_query,
             "/query/{job_id}"),
            ("POST", re.compile(r"^/sql$"), self._post_sql, "/sql"),
            ("GET", re.compile(r"^/dashboard$"), self._get_dashboard, "/dashboard"),
        ]
        self.requests_handled = 0
        #: the Database behind POST /sql (None until attached).
        self._sql_database: Any = None
        #: job_id -> AsyncServeFrontend for the async query path.
        self._frontends: dict[str, Any] = {}
        self._query_pattern = re.compile(r"^/query/(?P<job_id>[\w\-./]+)$")

    def handle(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        tenant: str | None = None,
    ) -> Response:
        """Route one request. The body is round-tripped through JSON.

        Every request — matched or not — is counted per route template,
        status and tenant, and its handler latency (read from the
        injectable telemetry clock) lands in the per-route latency
        histogram. The tenant comes from the ``tenant`` argument (an
        HTTP gateway would read a header), falling back to a
        ``"tenant"`` body field, then to the default tenant; unknown or
        suspended tenants get 403 before any handler runs.
        """
        clock = telemetry.get_clock()
        start = clock.now()
        route_name = "(unmatched)"
        response = None
        injected_latency = 0.0
        self.requests_handled += 1
        try:
            payload = json.loads(json.dumps(body)) if body is not None else {}
        except (TypeError, ValueError) as exc:
            payload = None
            response = Response(400, {"error": f"body is not JSON-serialisable: {exc}"})
        tenant_name = self._resolve_tenant_name(tenant, payload)
        if response is None:
            try:
                self.system.tenants.resolve(tenant_name)
            except TenantAccessError as exc:
                response = self._error_response(exc)
        if response is None:
            for route_method, pattern, handler, name in self._routes:
                if route_method != method.upper():
                    continue
                match = pattern.match(path)
                if match:
                    route_name = name
                    try:
                        # The gateway.dispatch fault point models a
                        # backend that crashes (503) or whose response
                        # is lost (504); either way the gateway answers
                        # instead of crashing the server loop.
                        injected_latency = chaos.fire("gateway.dispatch")
                        with tenant_context(tenant_name):
                            result = handler(payload, **match.groupdict())
                        response = self._serialise(result)
                    except Exception as exc:
                        response = self._error_response(exc)
                        if response is None:
                            raise
                    break
        if response is None:
            response = Response(404, {"error": f"no route for {method} {path}"})
        registry = telemetry.get_registry()
        registry.counter(
            "repro_gateway_requests_total",
            "Gateway requests, by route, status and tenant.",
        ).inc(method=method.upper(), route=route_name, status=str(response.status),
              tenant=tenant_name)
        registry.histogram(
            "repro_gateway_request_seconds",
            "Gateway handler latency per route.",
            buckets=REQUEST_SECONDS_BUCKETS,
        ).observe(clock.now() - start + injected_latency, route=route_name)
        return response

    @staticmethod
    def _resolve_tenant_name(tenant: str | None, payload: Any) -> str:
        """Explicit argument (header) > body field > default tenant."""
        if tenant:
            return str(tenant)
        if isinstance(payload, dict) and payload.get("tenant"):
            return str(payload["tenant"])
        return DEFAULT_TENANT

    @staticmethod
    def _error_response(exc: Exception) -> Response | None:
        """Map one handler exception to an HTTP-like response.

        Shared by the sync and async paths so both speak the same
        status vocabulary. Returns ``None`` for exceptions the gateway
        does not own (genuine bugs), which the caller re-raises.
        """
        if isinstance(exc, DroppedResponse):
            return Response(504, {"error": f"response dropped: {exc}"})
        if isinstance(exc, InjectedFault):
            return Response(503, {"error": f"backend unavailable: {exc}"})
        if isinstance(exc, (RequestShedError, QueueOverflowError)):
            # Admission control refused the request: overload, not a
            # client or server bug — 429 plus a retry hint, so
            # well-behaved clients back off instead of hammering.
            return Response(429, {
                "error": str(exc),
                "reason": getattr(exc, "reason", "queue_full"),
                "retry_after": float(getattr(exc, "retry_after", 0.1)),
            })
        if isinstance(exc, QuotaExceededError):
            # Over quota is a *temporary* condition — the tenant can
            # free capacity (stop a job, delete parameters) and retry —
            # so it speaks 429, not 403.
            return Response(429, {
                "error": str(exc),
                "reason": "quota",
                "tenant": exc.tenant,
                "resource": exc.resource,
                "retry_after": 1.0,
            })
        if isinstance(exc, TenantAccessError):
            return Response(403, {"error": str(exc), "tenant": exc.tenant})
        if isinstance(exc, GatewayError):
            return Response(400, {"error": str(exc)})
        if isinstance(exc, _NOT_FOUND_ERRORS):
            return Response(404, {"error": f"not found: {exc}"})
        if isinstance(exc, KeyError):
            # A bare KeyError is a handler indexing into the request
            # body: the client's fault, not a missing resource — 400,
            # never 404.
            return Response(400, {"error": f"missing field: {exc}"})
        if isinstance(exc, RafikiError):
            return Response(400, {"error": str(exc)})
        return None

    # ------------------------------------------------------------------
    # the async front-end path
    # ------------------------------------------------------------------

    def attach_frontend(self, job_id: str, frontend: Any) -> None:
        """Route ``POST /query/{job_id}`` through a serving front end.

        ``frontend`` is a started
        :class:`~repro.core.serve.frontend.AsyncServeFrontend`; from now
        on :meth:`handle_async` queries for this job go through its
        admission control and batch dispatcher instead of the direct
        synchronous call.
        """
        self._frontends[job_id] = frontend

    def detach_frontend(self, job_id: str) -> None:
        """Return a job's queries to the synchronous path."""
        self._frontends.pop(job_id, None)

    async def handle_async(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        client_id: str = "default",
        tenant: str | None = None,
    ) -> Response:
        """Async twin of :meth:`handle`.

        Query routes for jobs with an attached front end await
        admission + batching (and carry ``client_id`` and the resolved
        tenant into the per-client and per-tenant rate limiters); every
        other request delegates to the synchronous path unchanged.
        """
        if method.upper() == "POST":
            match = self._query_pattern.match(path)
            if match:
                frontend = self._frontends.get(match.group("job_id"))
                if frontend is not None:
                    return await self._query_via_frontend(
                        frontend, body, client_id, tenant
                    )
        return self.handle(method, path, body, tenant=tenant)

    async def _query_via_frontend(
        self,
        frontend: Any,
        body: dict[str, Any] | None,
        client_id: str,
        tenant: str | None = None,
    ) -> Response:
        clock = telemetry.get_clock()
        start = clock.now()
        self.requests_handled += 1
        try:
            payload = json.loads(json.dumps(body)) if body is not None else {}
        except (TypeError, ValueError) as exc:
            payload = None
            response = Response(400, {"error": f"body is not JSON-serialisable: {exc}"})
        tenant_name = self._resolve_tenant_name(tenant, payload)
        if payload is not None:
            try:
                self.system.tenants.resolve(tenant_name)
                if "img" not in payload:
                    raise GatewayError("POST /query requires 'img'")
                image = _parse_image(payload["img"])
                result = await frontend.submit(
                    image, client_id=client_id, tenant=tenant_name
                )
                response = self._serialise(result)
            except Exception as exc:
                response = self._error_response(exc)
                if response is None:
                    raise
        registry = telemetry.get_registry()
        registry.counter(
            "repro_gateway_requests_total",
            "Gateway requests, by route, status and tenant.",
        ).inc(method="POST", route="/query/{job_id}", status=str(response.status),
              tenant=tenant_name)
        registry.histogram(
            "repro_gateway_request_seconds",
            "Gateway handler latency per route.",
            buckets=REQUEST_SECONDS_BUCKETS,
        ).observe(clock.now() - start, route="/query/{job_id}")
        return response

    @staticmethod
    def _serialise(result: Any) -> Response:
        """Round-trip a handler result through numpy-aware JSON.

        Numpy scalars and arrays in the result serialise cleanly (a 200);
        anything genuinely unserialisable is a server-side bug and maps
        to 500 instead of crashing the server loop.
        """
        try:
            return Response(200, json.loads(json.dumps(result, default=_json_default)))
        except (TypeError, ValueError) as exc:
            return Response(500, {"error": f"handler result not serialisable: {exc}"})

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _post_dataset(self, body: dict) -> dict:
        if "directory" not in body:
            raise GatewayError("POST /datasets requires 'directory'")
        handle = self.system.import_images(body["directory"], name=body.get("name"))
        return {
            "name": handle.name,
            "num_examples": handle.num_examples,
            "num_classes": handle.num_classes,
            "image_shape": list(handle.image_shape),
        }

    def _list_datasets(self, body: dict) -> dict:
        return {"datasets": self.system.store.list_datasets()}

    def _post_train(self, body: dict) -> dict:
        for required in ("name", "task", "dataset"):
            if required not in body:
                raise GatewayError(f"POST /train requires {required!r}")
        hyper = self._parse_hyper(body.get("hyper", {}))
        job_id = self.system.create_train_job(
            name=body["name"],
            task=body["task"],
            dataset=body["dataset"],
            hyper=hyper,
            input_shape=tuple(body["input_shape"]) if "input_shape" in body else None,
            output_shape=tuple(body["output_shape"]) if "output_shape" in body else None,
            num_models=int(body.get("num_models", 2)),
            num_workers=int(body.get("num_workers", 2)),
            advisor=body.get("advisor", "bayesian"),
            collaborative=bool(body.get("collaborative", True)),
            tenant=current_tenant(),
            priority=int(body.get("priority", 0)),
        )
        return {"job_id": job_id}

    @staticmethod
    def _parse_hyper(hyper_kwargs: Any) -> HyperConf | None:
        """Validate a request's ``hyper`` object into a :class:`HyperConf`.

        Malformed bodies (wrong type, unknown fields, bad values) are a
        *client* error and must answer 400 — a bare
        ``HyperConf(**kwargs)`` would leak ``TypeError`` out of the
        gateway and crash the caller instead.
        """
        if not hyper_kwargs:
            return None
        if not isinstance(hyper_kwargs, dict):
            raise GatewayError(
                f"'hyper' must be an object, got {type(hyper_kwargs).__name__}"
            )
        valid = {f.name for f in dataclasses.fields(HyperConf)}
        unknown = sorted(str(key) for key in hyper_kwargs if key not in valid)
        if unknown:
            raise GatewayError(
                f"unknown hyper field(s): {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        try:
            return HyperConf(**hyper_kwargs)
        except (TypeError, ValueError) as exc:
            raise GatewayError(f"invalid 'hyper' configuration: {exc}") from exc

    def _get_train(self, body: dict, job_id: str) -> dict:
        info = self.system.get_train_job(job_id)
        return {
            "job_id": info.job_id,
            "name": info.name,
            "task": info.task,
            "dataset": info.dataset,
            "status": info.status,
            "models": info.model_names,
            "best_performance": info.best_performance,
        }

    def _get_models(self, body: dict, job_id: str) -> dict:
        specs = self.system.get_models(job_id)
        return {
            "models": [
                {
                    "model_name": s.model_name,
                    "param_key": s.param_key,
                    "performance": s.performance,
                    "task": s.task,
                    "dataset": s.dataset,
                }
                for s in specs
            ]
        }

    def _post_inference(self, body: dict) -> dict:
        if "models" not in body or not body["models"]:
            raise GatewayError("POST /inference requires a non-empty 'models' list")
        specs = [
            ModelSpec(
                model_name=m["model_name"],
                param_key=m["param_key"],
                performance=float(m.get("performance", 0.0)),
                task=m.get("task", ""),
                dataset=m.get("dataset", ""),
            )
            for m in body["models"]
        ]
        job_id = self.system.create_inference_job(
            specs,
            dataset=body.get("dataset"),
            tenant=current_tenant(),
            priority=int(body.get("priority", 0)),
        )
        return {"job_id": job_id}

    def _get_inference(self, body: dict, job_id: str) -> dict:
        info = self.system.get_inference_job(job_id)
        return {
            "job_id": info.job_id,
            "status": info.status,
            "models": [s.model_name for s in info.specs],
            "queries_served": info.queries_served,
        }

    def _redeploy_inference(self, body: dict, job_id: str) -> dict:
        return self.system.redeploy_inference_job(job_id)

    def _stop_inference(self, body: dict, job_id: str) -> dict:
        self.system.stop_inference_job(job_id)
        return {"job_id": job_id, "status": "stopped"}

    def _post_query(self, body: dict, job_id: str) -> dict:
        if "img" not in body:
            raise GatewayError("POST /query requires 'img'")
        return self.system.query(job_id, _parse_image(body["img"]))

    def attach_sql_database(self, database: Any) -> None:
        """Serve ``POST /sql`` from this :class:`~repro.sqlext.Database`.

        Queries run on the planned executor by default; a shed from the
        batched UDF dispatch path surfaces as HTTP 429 with a
        ``retry_after`` hint, exactly like the serving front end.
        """
        self._sql_database = database

    def _post_sql(self, body: dict) -> dict:
        if self._sql_database is None:
            raise GatewayError("no SQL database attached to this gateway")
        if "sql" not in body:
            raise GatewayError("POST /sql requires 'sql'")
        sql = body["sql"]
        executor = body.get("executor")
        if body.get("explain"):
            return {"plan": self._sql_database.explain(sql)}
        result = self._sql_database.execute(sql, executor=executor)
        return {
            "columns": result.columns,
            "rows": [list(row) for row in result.rows],
            "executor": result.executor,
            "udf_calls": result.udf_calls,
            "udf_batches": result.udf_batches,
            "cache_hits": result.cache_hits,
        }

    def _get_dashboard(self, body: dict) -> dict:
        from repro.api.monitor import dashboard_data

        return dashboard_data(self.system)


def _parse_image(raw: Any) -> np.ndarray:
    """Decode a request's image payload into a float array, or 400.

    A ragged nested list raises ``ValueError`` out of ``np.asarray``;
    without this guard that crashes the server loop (sync path) or
    poisons a whole batch (async path) instead of answering 400 for the
    one malformed request.
    """
    try:
        return np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise GatewayError(f"'img' is not a numeric image: {exc}") from exc


def make_query_executor(system: Rafiki, job_id: str) -> Callable[[list, int], list]:
    """Build the batch executor an async front end runs queries with.

    The front end hands over ``(payloads, batch_size)``; the executor
    stacks the images into one array, runs a single ensemble query (so
    the whole batch pays one vote), and splits the batched result back
    into per-request ``{"label", "votes", "models"}`` dicts — the same
    shape a synchronous ``POST /query`` returns.

    Shapes are validated *per payload*: one client's wrong-shaped image
    gets its own :class:`GatewayError` (a 400 on its own future) while
    the rest of the batch runs — a whole-batch ``np.stack`` failure
    would shed every co-batched client's request as ``executor_error``,
    a cross-tenant isolation hole.
    """

    def expected_shape() -> tuple[int, ...] | None:
        try:
            info = system.get_inference_job(job_id)
            dataset = next(s.dataset for s in info.specs if s.dataset)
            return tuple(system.store.get_handle(dataset).image_shape)
        except Exception:
            return None

    def executor(payloads: list, batch_size: int) -> list[Any]:
        expected = expected_shape()
        results: list[Any] = [None] * len(payloads)
        arrays: list[np.ndarray] = []
        kept: list[int] = []
        for index, payload in enumerate(payloads):
            try:
                array = _parse_image(payload)
            except GatewayError as exc:
                results[index] = exc
                continue
            shape = expected if expected is not None else (
                arrays[0].shape if arrays else array.shape
            )
            if array.shape != shape:
                results[index] = GatewayError(
                    f"image shape {array.shape} does not match expected {shape}"
                )
                continue
            arrays.append(array)
            kept.append(index)
        if arrays:
            batch = np.stack(arrays)
            result = system.query(job_id, batch)
            for position, index in enumerate(kept):
                results[index] = {
                    "label": result["label"][position],
                    "votes": result["votes"][position],
                    "models": result["models"],
                }
        return results

    return executor

"""Front end: the REST-style gateway and the Python SDK (Figure 2).

The SDK mirrors the four-line training script of Figure 2
(``import_images`` / ``HyperConf`` / ``Train`` / ``Inference`` /
``query``); under the hood every SDK call is serialised through the
:class:`~repro.api.gateway.Gateway`, exercising the same JSON
request/response path a RESTful client (curl, a mobile app, a database
UDF) would use.
"""

from repro.api.gateway import Gateway, Response, make_query_executor
from repro.api.sdk import (
    HyperConf,
    Inference,
    Train,
    connect,
    get_models,
    import_images,
    query,
)

__all__ = [
    "Gateway",
    "Response",
    "make_query_executor",
    "connect",
    "import_images",
    "HyperConf",
    "Train",
    "Inference",
    "get_models",
    "query",
]

"""The Python SDK of Figure 2.

The user code the paper shows is, verbatim in spirit::

    import rafiki                      # -> import repro as rafiki
    data = rafiki.import_images('food/')
    hyper = rafiki.HyperConf()
    job = rafiki.Train(name='train', data=data, task='ImageClassification',
                       input_shape=(3, 256, 256), output_shape=(120,),
                       hyper=hyper)
    job_id = job.run()

    models = rafiki.get_models(job_id)
    job = rafiki.Inference(models)
    infer_id = job.run()
    ret = rafiki.query(job=infer_id, data={'img': img})
    print(ret['label'])

All calls go through the REST-style gateway of a process-local
:class:`~repro.core.system.Rafiki` instance; :func:`connect` swaps in a
different system (e.g. one per test).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.api.gateway import Gateway, Response
from repro.core.system import Rafiki
from repro.core.tune import HyperConf
from repro.data.datasets import ImageDataset
from repro.exceptions import GatewayError

__all__ = [
    "connect",
    "default_gateway",
    "set_tenant",
    "import_images",
    "HyperConf",
    "Train",
    "Inference",
    "get_models",
    "query",
]

_gateway: Gateway | None = None
_tenant: str | None = None


def connect(system: Rafiki | None = None, tenant: str | None = None) -> Gateway:
    """Bind the SDK to a Rafiki system (creating a default one if needed).

    ``tenant`` sets the identity every subsequent SDK call authenticates
    as (the paper's per-user API key, reduced to a name).
    """
    global _gateway, _tenant
    _gateway = Gateway(system if system is not None else Rafiki())
    _tenant = tenant
    return _gateway


def set_tenant(tenant: str | None) -> None:
    """Set (or clear, with ``None``) the tenant for subsequent SDK calls."""
    global _tenant
    _tenant = tenant


def _effective_tenant(tenant: str | None) -> str | None:
    return tenant if tenant is not None else _tenant


def default_gateway() -> Gateway:
    if _gateway is None:
        return connect()
    return _gateway


def _unwrap(response: Response) -> dict[str, Any]:
    if not response.ok:
        raise GatewayError(f"HTTP {response.status}: {response.body.get('error')}")
    return response.body


def import_images(
    source: str | ImageDataset, name: str | None = None, tenant: str | None = None
) -> str:
    """Upload a labelled image folder (or in-memory dataset); returns its name."""
    gateway = default_gateway()
    if isinstance(source, ImageDataset):
        # In-memory datasets skip the JSON hop (they are not file paths).
        handle = gateway.system.import_images(source, name=name)
        return handle.name
    body = _unwrap(
        gateway.handle(
            "POST",
            "/datasets",
            {"directory": source, "name": name},
            tenant=_effective_tenant(tenant),
        )
    )
    return body["name"]


class Train:
    """A configured training job (Figure 2's ``rafiki.Train``)."""

    def __init__(
        self,
        name: str,
        data: str,
        task: str,
        input_shape: tuple[int, ...] | None = None,
        output_shape: tuple[int, ...] | None = None,
        hyper: HyperConf | None = None,
        num_models: int = 2,
        num_workers: int = 2,
        advisor: str = "bayesian",
        collaborative: bool = True,
        tenant: str | None = None,
        priority: int = 0,
    ):
        self.name = name
        self.data = data
        self.task = task
        self.input_shape = input_shape
        self.output_shape = output_shape
        self.hyper = hyper
        self.num_models = num_models
        self.num_workers = num_workers
        self.advisor = advisor
        self.collaborative = collaborative
        self.tenant = tenant
        self.priority = priority

    def run(self) -> str:
        """Submit the job; returns the job id used for monitoring."""
        body: dict[str, Any] = {
            "name": self.name,
            "task": self.task,
            "dataset": self.data,
            "num_models": self.num_models,
            "num_workers": self.num_workers,
            "advisor": self.advisor,
            "collaborative": self.collaborative,
            "priority": self.priority,
        }
        if self.input_shape is not None:
            body["input_shape"] = list(self.input_shape)
        if self.output_shape is not None:
            body["output_shape"] = list(self.output_shape)
        if self.hyper is not None:
            body["hyper"] = {
                "max_trials": self.hyper.max_trials,
                "max_epochs_per_trial": self.hyper.max_epochs_per_trial,
                "early_stop_patience": self.hyper.early_stop_patience,
                "early_stop_min_delta": self.hyper.early_stop_min_delta,
                "delta": self.hyper.delta,
                "alpha0": self.hyper.alpha0,
                "alpha_decay": self.hyper.alpha_decay,
                "alpha_min": self.hyper.alpha_min,
            }
        return _unwrap(
            default_gateway().handle(
                "POST", "/train", body, tenant=_effective_tenant(self.tenant)
            )
        )["job_id"]


def get_models(job_id: str) -> list[dict[str, Any]]:
    """Figure 2's ``rafiki.get_models(job_id)``."""
    return _unwrap(default_gateway().handle("GET", f"/train/{job_id}/models"))["models"]


class Inference:
    """A configured inference job over trained models."""

    def __init__(
        self,
        models: Sequence[dict[str, Any]],
        dataset: str | None = None,
        tenant: str | None = None,
        priority: int = 0,
    ):
        self.models = list(models)
        self.dataset = dataset
        self.tenant = tenant
        self.priority = priority

    def run(self) -> str:
        body: dict[str, Any] = {"models": self.models, "priority": self.priority}
        if self.dataset is not None:
            body["dataset"] = self.dataset
        return _unwrap(
            default_gateway().handle(
                "POST", "/inference", body, tenant=_effective_tenant(self.tenant)
            )
        )["job_id"]


def query(job: str, data: dict[str, Any], tenant: str | None = None) -> dict[str, Any]:
    """Figure 2's ``rafiki.query``: predict for one image."""
    img = data.get("img")
    if img is None:
        raise GatewayError("query data must contain 'img'")
    if isinstance(img, np.ndarray):
        img = img.tolist()
    return _unwrap(
        default_gateway().handle(
            "POST", f"/query/{job}", {"img": img}, tenant=_effective_tenant(tenant)
        )
    )

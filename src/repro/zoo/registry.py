"""Task registry and model selection (Section 4.1).

Every built-in model is registered under a task (the table in Figure 2),
with metadata about training cost and per-dataset performance. Model
selection follows the paper's simple strategy: pick models with similar
performance but *different* architectures, to form a diverse set whose
ensemble accuracy will be boosted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError, ModelNotFoundError
from repro.zoo.builders import (
    build_mlp,
    build_resnet_mini,
    build_snoek_convnet,
    build_squeeze_mini,
    build_vgg_mini,
)

__all__ = ["ModelEntry", "TaskRegistry", "default_registry"]


@dataclass
class ModelEntry:
    """One registered model: architecture, builder, and meta data."""

    name: str
    task: str
    family: str
    builder: Callable
    train_cost: float = 1.0  # relative epochs/second cost
    memory_cost: float = 1.0  # relative memory consumption
    performance: dict[str, float] = field(default_factory=dict)  # dataset -> accuracy

    def record_performance(self, dataset: str, accuracy: float) -> None:
        """Store observed accuracy for a dataset (kept as the best seen)."""
        current = self.performance.get(dataset)
        if current is None or accuracy > current:
            self.performance[dataset] = accuracy

    def typical_performance(self) -> float:
        """Mean accuracy across known datasets (consistency assumption)."""
        if not self.performance:
            return 0.0
        return sum(self.performance.values()) / len(self.performance)


class TaskRegistry:
    """Models grouped by task, with diverse-set selection."""

    def __init__(self):
        self._by_task: dict[str, dict[str, ModelEntry]] = {}

    def register(self, entry: ModelEntry) -> None:
        models = self._by_task.setdefault(entry.task, {})
        if entry.name in models:
            raise ConfigurationError(f"model {entry.name!r} already registered for {entry.task!r}")
        models[entry.name] = entry

    def tasks(self) -> list[str]:
        return sorted(self._by_task)

    def models_for(self, task: str) -> list[ModelEntry]:
        if task not in self._by_task:
            raise ModelNotFoundError(f"no models registered for task {task!r}")
        return sorted(self._by_task[task].values(), key=lambda e: e.name)

    def get(self, task: str, name: str) -> ModelEntry:
        entries = self._by_task.get(task, {})
        if name not in entries:
            raise ModelNotFoundError(f"{name!r} (task {task!r})")
        return entries[name]

    def select_diverse(self, task: str, k: int = 2, tolerance: float = 0.1) -> list[ModelEntry]:
        """The paper's model-selection strategy.

        Sort models by typical performance; keep the top performer and
        then add models whose performance is within ``tolerance`` of it
        but whose *family* differs from the ones already chosen, up to
        ``k`` models. Falls back to same-family models only when no
        diverse candidate remains.
        """
        entries = self.models_for(task)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        ranked = sorted(entries, key=lambda e: -e.typical_performance())
        chosen = [ranked[0]]
        families = {ranked[0].family}
        best = ranked[0].typical_performance()
        for entry in ranked[1:]:
            if len(chosen) == k:
                break
            if best - entry.typical_performance() > tolerance:
                continue
            if entry.family in families:
                continue
            chosen.append(entry)
            families.add(entry.family)
        for entry in ranked[1:]:
            if len(chosen) == k:
                break
            if entry not in chosen and best - entry.typical_performance() <= tolerance:
                chosen.append(entry)
        return chosen


def default_registry() -> TaskRegistry:
    """The built-in tasks and models of Figure 2's table.

    Object-detection and sentiment models reuse the architecture
    builders at suitable scales; their names follow the paper's table.
    """
    registry = TaskRegistry()
    image_models = [
        ModelEntry("vgg-mini", "ImageClassification", "vgg", build_vgg_mini, train_cost=1.2),
        ModelEntry("resnet-mini", "ImageClassification", "resnet", build_resnet_mini,
                   train_cost=1.5),
        ModelEntry("squeeze-mini", "ImageClassification", "squeezenet", build_squeeze_mini,
                   train_cost=0.8, memory_cost=0.3),
        ModelEntry("snoek8", "ImageClassification", "plain", build_snoek_convnet, train_cost=2.0),
    ]
    detection_models = [
        ModelEntry("yolo-mini", "ObjectDetection", "yolo", build_vgg_mini, train_cost=2.5),
        ModelEntry("ssd-mini", "ObjectDetection", "ssd", build_resnet_mini, train_cost=2.2),
        ModelEntry("faster-rcnn-mini", "ObjectDetection", "rcnn", build_snoek_convnet,
                   train_cost=3.0),
    ]
    sentiment_models = [
        ModelEntry("fasttext-mini", "SentimentAnalysis", "fasttext", build_mlp, train_cost=0.3),
        ModelEntry("temporal-cnn-mini", "SentimentAnalysis", "cnn", build_mlp, train_cost=0.8),
        ModelEntry("char-rnn-mini", "SentimentAnalysis", "rnn", build_mlp, train_cost=1.5),
    ]
    for entry in image_models + detection_models + sentiment_models:
        registry.register(entry)
    return registry

"""Multi-armed-bandit model selection (the Ease.ml approach).

Section 4.1 contrasts Rafiki's simple diverse-set selection with
Ease.ml's formulation: every candidate model is an arm, a "pull" spends
one training trial on that model, and under-performing models gradually
lose their share of the budget. This module implements that alternative
as a UCB1 allocator so the two strategies can be compared (see
``benchmarks/bench_ablation_bandit.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["UCBModelSelector", "ArmStats"]


@dataclass
class ArmStats:
    """Observed trial outcomes for one candidate model."""

    name: str
    pulls: int = 0
    rewards: list[float] = field(default_factory=list)

    @property
    def mean_reward(self) -> float:
        return sum(self.rewards) / len(self.rewards) if self.rewards else 0.0

    @property
    def best_reward(self) -> float:
        return max(self.rewards) if self.rewards else 0.0


class UCBModelSelector:
    """UCB1 over candidate models; reward = a trial's validation accuracy.

    ``select()`` returns the model that should receive the next training
    trial: each arm is tried once, then arms are ranked by
    ``mean + c * sqrt(ln(total) / pulls)``. ``report(model, accuracy)``
    feeds the outcome back.
    """

    def __init__(self, model_names, exploration: float = 1.0,
                 rng: np.random.Generator | None = None):
        names = list(model_names)
        if not names:
            raise ConfigurationError("at least one candidate model is required")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate model names: {names}")
        self.exploration = float(exploration)
        self.arms = {name: ArmStats(name) for name in names}
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.total_pulls = 0

    def select(self) -> str:
        """The model to train next."""
        untried = [arm for arm in self.arms.values() if arm.pulls == 0]
        if untried:
            return untried[int(self._rng.integers(0, len(untried)))].name
        log_total = math.log(self.total_pulls)
        best_name, best_score = None, -math.inf
        for arm in self.arms.values():
            bonus = self.exploration * math.sqrt(log_total / arm.pulls)
            score = arm.mean_reward + bonus
            if score > best_score:
                best_name, best_score = arm.name, score
        assert best_name is not None
        return best_name

    def report(self, model_name: str, accuracy: float) -> None:
        """Record a finished trial's validation accuracy."""
        if model_name not in self.arms:
            raise ConfigurationError(f"unknown model {model_name!r}")
        arm = self.arms[model_name]
        arm.pulls += 1
        arm.rewards.append(float(accuracy))
        self.total_pulls += 1

    def allocation(self) -> dict[str, int]:
        """Trials spent per model so far."""
        return {name: arm.pulls for name, arm in self.arms.items()}

    def best_model(self) -> str:
        """The model with the best single trial seen so far."""
        return max(self.arms.values(), key=lambda arm: arm.best_reward).name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}:{arm.pulls}p/{arm.mean_reward:.2f}" for name, arm in self.arms.items()
        )
        return f"UCBModelSelector({parts})"

"""Correlated ensemble-accuracy simulation (Figure 6 substitute).

The paper measures ensemble accuracy on the ImageNet validation set.
Without that data, ensemble accuracy is simulated with a latent-trait
model:

* each validation example draws a shared *difficulty* ``d ~ N(0, 1)``;
* model ``m`` answers correctly iff ``skill_m - d + eps > 0`` where
  ``eps ~ N(0, sigma)`` is model-private noise. The shared ``d``
  correlates errors across models (hard images are hard for everyone),
  ``sigma`` controls ensemble diversity;
* ``skill_m`` is calibrated in closed form so the marginal accuracy of
  each model matches its Figure 3 top-1 accuracy exactly:
  ``P(correct) = Phi(skill / sqrt(1 + sigma^2)) = a_m``;
* a wrong model votes for the example's *distractor* class with
  probability ``q`` (shared confusions) and a random other class
  otherwise.

Majority voting with the paper's tie-break (the best-accuracy selected
model wins ties) is then evaluated over a fixed Monte-Carlo panel. The
model reproduces the paper's headline observations: accuracy generally
rises with ensemble size, and a two-model ensemble degenerates to the
better member (every disagreement is a tie), so
{resnet_v2_101, inception_v3} scores below inception_resnet_v2 alone.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import norm

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_rng
from repro.zoo.profiles import get_profile

__all__ = ["EnsembleAccuracyModel", "majority_vote"]


def majority_vote(votes: np.ndarray, model_accuracies: np.ndarray) -> np.ndarray:
    """Aggregate per-model label votes with best-model tie-break.

    ``votes`` has shape ``(num_models, num_examples)``; the return value
    has shape ``(num_examples,)``. Ties (including total disagreement)
    resolve to the vote of the most accurate model, as in Section 5.2.
    """
    if votes.ndim != 2:
        raise ConfigurationError(f"votes must be 2-D, got shape {votes.shape}")
    num_models, _num_examples = votes.shape
    if model_accuracies.shape[0] != num_models:
        raise ConfigurationError("one accuracy per model is required")
    best_model = int(np.argmax(model_accuracies))
    # counts[m, i] = how many models voted the same label as model m did.
    counts = (votes[:, None, :] == votes[None, :, :]).sum(axis=1)
    top = counts.max(axis=0)
    on_top = counts == top
    # Among top-count votes, a tie exists iff more than one distinct label
    # reaches the top count.
    masked_min = np.where(on_top, votes, np.iinfo(votes.dtype).max).min(axis=0)
    masked_max = np.where(on_top, votes, np.iinfo(votes.dtype).min).max(axis=0)
    tie = masked_min != masked_max
    return np.where(tie, votes[best_model], masked_min)


class EnsembleAccuracyModel:
    """Monte-Carlo ensemble accuracy over the latent-trait panel."""

    def __init__(
        self,
        model_names: tuple[str, ...] | list[str],
        num_examples: int = 40_000,
        num_classes: int = 1000,
        sigma: float = 0.25,
        distractor_prob: float = 0.35,
        seed: int = 2018,
    ):
        if len(model_names) == 0:
            raise ConfigurationError("at least one model is required")
        self.model_names = tuple(model_names)
        self.num_examples = int(num_examples)
        self.num_classes = int(num_classes)
        self.sigma = float(sigma)
        self.distractor_prob = float(distractor_prob)
        self.seed = int(seed)
        self.accuracies = np.array(
            [get_profile(name).top1_accuracy for name in self.model_names]
        )
        self._votes = self._simulate_votes()
        self._true = np.zeros(self.num_examples, dtype=np.int64)  # WLOG class 0 is truth
        self._cache: dict[tuple[int, ...], float] = {}

    def _simulate_votes(self) -> np.ndarray:
        rng = derive_rng(self.seed, "ensemble-panel")
        n, k = self.num_examples, len(self.model_names)
        difficulty = rng.normal(0.0, 1.0, size=n)
        # Per-example distractor class (shared wrong answer), never 0.
        distractor = rng.integers(1, self.num_classes, size=n)
        votes = np.zeros((k, n), dtype=np.int64)
        scale = np.sqrt(1.0 + self.sigma**2)
        for m, acc in enumerate(self.accuracies):
            skill = scale * norm.ppf(acc)
            eps = rng.normal(0.0, self.sigma, size=n)
            correct = (skill - difficulty + eps) > 0.0
            wrong_to_distractor = rng.random(n) < self.distractor_prob
            random_wrong = rng.integers(1, self.num_classes, size=n)
            votes[m] = np.where(
                correct, 0, np.where(wrong_to_distractor, distractor, random_wrong)
            )
        return votes

    def marginal_accuracy(self, name: str) -> float:
        """Simulated single-model accuracy (matches the profile closely)."""
        idx = self.model_names.index(name)
        return float(np.mean(self._votes[idx] == self._true))

    def ensemble_accuracy(self, selection) -> float:
        """Accuracy of majority voting over the selected model subset.

        ``selection`` is an iterable of model names, an iterable of
        integer model indices, or a boolean mask array over
        ``model_names``.
        """
        indices = self._selection_indices(selection)
        key = tuple(indices)
        if key in self._cache:
            return self._cache[key]
        votes = self._votes[indices]
        predictions = majority_vote(votes, self.accuracies[indices])
        accuracy = float(np.mean(predictions == self._true))
        self._cache[key] = accuracy
        return accuracy

    def accuracy_table(self) -> dict[tuple[str, ...], float]:
        """Ensemble accuracy for every non-empty subset (2^k - 1 rows)."""
        k = len(self.model_names)
        table: dict[tuple[str, ...], float] = {}
        for mask in range(1, 2**k):
            indices = [i for i in range(k) if mask >> i & 1]
            names = tuple(self.model_names[i] for i in indices)
            table[names] = self.ensemble_accuracy(indices)
        return table

    def _selection_indices(self, selection) -> list[int]:
        if isinstance(selection, np.ndarray) and selection.dtype == bool:
            if selection.shape[0] != len(self.model_names):
                raise ConfigurationError(
                    f"mask length {selection.shape[0]} != {len(self.model_names)} models"
                )
            indices = [int(i) for i in np.flatnonzero(selection)]
        else:
            items = list(selection)
            if items and all(isinstance(item, str) for item in items):
                indices = sorted(self.model_names.index(item) for item in items)
            else:
                indices = sorted(int(i) for i in items)
        if not indices:
            raise ConfigurationError("selection must include at least one model")
        if indices[0] < 0 or indices[-1] >= len(self.model_names):
            raise ConfigurationError(f"model index out of range: {indices}")
        return indices


@lru_cache(maxsize=8)
def default_imagenet_panel(model_names: tuple[str, ...]) -> EnsembleAccuracyModel:
    """Shared panel for a model list (cached: the panel is expensive)."""
    return EnsembleAccuracyModel(model_names)

"""Model zoo: Figure 3 model cards, builders, task registry, ensembles.

* :mod:`repro.zoo.profiles` — the 16 pretrained ConvNet cards of
  Figure 3 and the affine latency model ``c(m, b)``;
* :mod:`repro.zoo.builders` — trainable architectures on the
  :mod:`repro.tensor` engine;
* :mod:`repro.zoo.registry` — task -> models mapping (Figure 2's table)
  and the diverse-set model-selection strategy of Section 4.1;
* :mod:`repro.zoo.correlated` — the calibrated ensemble-accuracy
  simulator behind Figure 6 and the serving reward ``a(M[v])``.
"""

from repro.zoo.bandit import ArmStats, UCBModelSelector
from repro.zoo.builders import (
    BUILDERS,
    build_mlp,
    build_resnet_mini,
    build_snoek_convnet,
    build_squeeze_mini,
    build_vgg_mini,
)
from repro.zoo.correlated import EnsembleAccuracyModel, majority_vote
from repro.zoo.profiles import PROFILES, ModelProfile, get_profile, list_profiles
from repro.zoo.registry import ModelEntry, TaskRegistry, default_registry

__all__ = [
    "ModelProfile",
    "PROFILES",
    "get_profile",
    "list_profiles",
    "EnsembleAccuracyModel",
    "majority_vote",
    "ModelEntry",
    "TaskRegistry",
    "default_registry",
    "UCBModelSelector",
    "ArmStats",
    "BUILDERS",
    "build_snoek_convnet",
    "build_vgg_mini",
    "build_resnet_mini",
    "build_squeeze_mini",
    "build_mlp",
]

"""Model cards for the paper's ConvNet zoo (Figure 3).

Top-1 ImageNet accuracy and per-iteration inference time (batch 50)
are transcribed from Figure 3 of the paper; memory footprints are the
slim-zoo checkpoint sizes scaled to runtime footprints. The inference
latency of model ``m`` at batch size ``b`` is modelled as the affine

    c(m, b) = overhead_s + per_image_s * b

which matches the two operating points the paper quotes for
inception_v3 (c(16)=0.07 s, c(64)=0.235 s) and the aggregate
throughputs it quotes for the three-model ensemble (572 req/s maximum,
128 req/s minimum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelNotFoundError

__all__ = ["ModelProfile", "PROFILES", "get_profile", "list_profiles"]


@dataclass(frozen=True)
class ModelProfile:
    """Static performance card for one pretrained model."""

    name: str
    family: str
    top1_accuracy: float
    overhead_s: float
    per_image_s: float
    memory_mb: float

    def inference_time(self, batch_size: int) -> float:
        """``c(m, b)``: seconds to run one batch of ``batch_size``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        return self.overhead_s + self.per_image_s * batch_size

    def throughput(self, batch_size: int) -> float:
        """Images per second at ``batch_size``."""
        return batch_size / self.inference_time(batch_size)

    @property
    def iteration_time_b50(self) -> float:
        """The batch-50 iteration time plotted in Figure 3."""
        return self.inference_time(50)


def _profile(name: str, family: str, acc: float, time_b50: float, memory_mb: float,
             overhead_frac: float = 0.08) -> ModelProfile:
    """Build a profile from the Figure 3 batch-50 time.

    A fixed fraction of the batch-50 time is attributed to per-batch
    overhead (kernel launch, memcpy), the rest scales per image.
    """
    overhead = overhead_frac * time_b50
    per_image = (time_b50 - overhead) / 50.0
    return ModelProfile(name, family, acc, overhead, per_image, memory_mb)


# The three serving-experiment models are pinned to the paper's quoted
# operating points rather than derived from the batch-50 reading:
#   inception_v3:        c(16)=0.070, c(64)=0.235  -> 272 img/s max
#   inception_v4:        c(64)=0.400               -> 160 img/s max
#   inception_resnet_v2: c(16)=0.125, c(64)=0.460  -> 139 img/s max, 128 img/s min
# Sum of maxima = 571 ~ 572 req/s; slowest minimum = 16/0.125 = 128 req/s.
def _pinned(name: str, family: str, acc: float, c16: float, c64: float,
            memory_mb: float) -> ModelProfile:
    per_image = (c64 - c16) / 48.0
    overhead = c16 - 16.0 * per_image
    return ModelProfile(name, family, acc, overhead, per_image, memory_mb)


PROFILES: dict[str, ModelProfile] = {
    p.name: p
    for p in [
        _profile("inception_v1", "inception", 0.698, 0.080, 420),
        _profile("inception_v2", "inception", 0.739, 0.100, 480),
        _pinned("inception_v3", "inception", 0.780, 0.070, 0.235, 760),
        _pinned("inception_v4", "inception", 0.802, 0.118, 0.400, 1100),
        _pinned("inception_resnet_v2", "inception", 0.804, 0.125, 0.460, 1300),
        _profile("mobilenet_v1", "mobilenet", 0.709, 0.040, 140),
        _profile("nasnet_mobile", "nasnet", 0.740, 0.110, 300),
        _profile("nasnet_large", "nasnet", 0.827, 1.000, 2200),
        _profile("resnet_v1_50", "resnet", 0.752, 0.130, 640),
        _profile("resnet_v1_101", "resnet", 0.764, 0.220, 1000),
        _profile("resnet_v1_152", "resnet", 0.768, 0.310, 1400),
        _profile("resnet_v2_50", "resnet", 0.756, 0.140, 650),
        _profile("resnet_v2_101", "resnet", 0.770, 0.230, 1020),
        _profile("resnet_v2_152", "resnet", 0.778, 0.320, 1420),
        _profile("vgg_16", "vgg", 0.715, 0.380, 1700),
        _profile("vgg_19", "vgg", 0.711, 0.440, 1850),
    ]
}


def get_profile(name: str) -> ModelProfile:
    """Look up a model card by name."""
    if name not in PROFILES:
        raise ModelNotFoundError(name)
    return PROFILES[name]


def list_profiles(family: str | None = None) -> list[ModelProfile]:
    """All profiles (optionally filtered by family), accuracy-descending."""
    profiles = [
        p for p in PROFILES.values() if family is None or p.family == family
    ]
    return sorted(profiles, key=lambda p: -p.top1_accuracy)

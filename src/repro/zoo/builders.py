"""Builders for trainable networks on the :mod:`repro.tensor` engine.

These supply the "built-in models" of the paper's Figure 2 table at a
CPU-trainable scale: several ConvNet architectures with distinct shapes
(the model-selection strategy wants *diverse* architectures with
similar performance) plus MLPs for non-image tasks.

``build_snoek_convnet`` mirrors the 8-convolution-layer architecture of
Snoek et al. (Table 5 of [29]), the fixed architecture of the paper's
Section 7.1 tuning experiments, scaled down by a width factor.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tensor import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Network,
    ReLU,
)
from repro.tensor.initializers import gaussian_init

__all__ = [
    "build_snoek_convnet",
    "build_vgg_mini",
    "build_resnet_mini",
    "build_squeeze_mini",
    "build_mlp",
    "BUILDERS",
]


def build_snoek_convnet(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    dropout: float = 0.5,
    init_std: float = 0.05,
    name: str = "snoek8",
) -> Network:
    """8 convolution layers in 4 blocks, then dropout and a classifier.

    Inputs smaller than 32x32 get fewer pooling blocks so the feature
    map never collapses (each block halves the spatial size).
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    init = gaussian_init(std=init_std)
    layers = []
    filters = width
    blocks = 0
    size = min(input_shape[1], input_shape[2])
    while blocks < 4 and size >= 4:
        blocks += 1
        size //= 2
    for block in range(blocks):
        layers += [
            Conv2D(filters, 3, name=f"{name}/conv{2*block+1}", weight_init=init),
            ReLU(name=f"{name}/relu{2*block+1}"),
            Conv2D(filters, 3, name=f"{name}/conv{2*block+2}", weight_init=init),
            ReLU(name=f"{name}/relu{2*block+2}"),
            MaxPool2D(2, name=f"{name}/pool{block+1}"),
        ]
        filters *= 2
    layers += [
        Flatten(name=f"{name}/flatten"),
        Dropout(dropout, name=f"{name}/dropout"),
        Dense(num_classes, name=f"{name}/fc", weight_init=init),
    ]
    return Network(layers, name=name).build(input_shape, rng)


def build_vgg_mini(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    dropout: float = 0.3,
    name: str = "vgg-mini",
) -> Network:
    """A VGG-flavoured stack: 3x3 conv pairs with max pooling."""
    layers = [
        Conv2D(width, 3, name=f"{name}/conv1"),
        ReLU(name=f"{name}/relu1"),
        MaxPool2D(2, name=f"{name}/pool1"),
        Conv2D(width * 2, 3, name=f"{name}/conv2"),
        ReLU(name=f"{name}/relu2"),
        MaxPool2D(2, name=f"{name}/pool2"),
        Flatten(name=f"{name}/flatten"),
        Dense(width * 8, name=f"{name}/fc1"),
        ReLU(name=f"{name}/relu3"),
        Dropout(dropout, name=f"{name}/dropout"),
        Dense(num_classes, name=f"{name}/fc2"),
    ]
    return Network(layers, name=name).build(input_shape, rng)


def build_resnet_mini(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 8,
    name: str = "resnet-mini",
) -> Network:
    """A batch-normalised ConvNet (ResNet-flavoured: BN + global pooling)."""
    height = input_shape[1]
    pool_to = max(height // 4, 1)
    layers = [
        Conv2D(width, 3, name=f"{name}/conv1"),
        BatchNorm(name=f"{name}/bn1"),
        ReLU(name=f"{name}/relu1"),
        MaxPool2D(2, name=f"{name}/pool1"),
        Conv2D(width * 2, 3, name=f"{name}/conv2"),
        BatchNorm(name=f"{name}/bn2"),
        ReLU(name=f"{name}/relu2"),
        MaxPool2D(2, name=f"{name}/pool2"),
        Conv2D(width * 4, 3, name=f"{name}/conv3"),
        ReLU(name=f"{name}/relu3"),
        AvgPool2D(pool_to, name=f"{name}/gap"),
        Flatten(name=f"{name}/flatten"),
        Dense(num_classes, name=f"{name}/fc"),
    ]
    return Network(layers, name=name).build(input_shape, rng)


def build_squeeze_mini(
    input_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    width: int = 4,
    name: str = "squeeze-mini",
) -> Network:
    """A parameter-lean ConvNet (SqueezeNet-flavoured: 1x1 squeezes)."""
    layers = [
        Conv2D(width * 2, 3, name=f"{name}/conv1"),
        ReLU(name=f"{name}/relu1"),
        MaxPool2D(2, name=f"{name}/pool1"),
        Conv2D(width, 1, name=f"{name}/squeeze1"),
        ReLU(name=f"{name}/srelu1"),
        Conv2D(width * 4, 3, name=f"{name}/expand1"),
        ReLU(name=f"{name}/erelu1"),
        MaxPool2D(2, name=f"{name}/pool2"),
        Flatten(name=f"{name}/flatten"),
        Dense(num_classes, name=f"{name}/fc"),
    ]
    return Network(layers, name=name).build(input_shape, rng)


def build_mlp(
    input_shape: tuple[int, ...],
    num_classes: int,
    rng: np.random.Generator,
    hidden: tuple[int, ...] = (64, 32),
    dropout: float = 0.0,
    name: str = "mlp",
) -> Network:
    """A plain MLP for flat inputs (sentiment vectors, RL policies)."""
    layers: list = []
    if len(input_shape) > 1:
        layers.append(Flatten(name=f"{name}/flatten"))
    for i, units in enumerate(hidden):
        layers.append(Dense(units, name=f"{name}/fc{i+1}"))
        layers.append(ReLU(name=f"{name}/relu{i+1}"))
        if dropout > 0:
            layers.append(Dropout(dropout, name=f"{name}/dropout{i+1}"))
    layers.append(Dense(num_classes, name=f"{name}/out"))
    return Network(layers, name=name).build(input_shape, rng)


#: Builder registry keyed by architecture name, used by the task registry.
BUILDERS = {
    "snoek8": build_snoek_convnet,
    "vgg-mini": build_vgg_mini,
    "resnet-mini": build_resnet_mini,
    "squeeze-mini": build_squeeze_mini,
    "mlp": build_mlp,
}

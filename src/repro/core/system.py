"""The unified Rafiki system facade (Section 3, Figure 2 and 7).

One object wires the shared substrates together — the data store
(HDFS stand-in), the parameter server, the cluster manager and the
model zoo — and exposes the two services:

* **training**: ``create_train_job`` selects a diverse model set for
  the task, runs one (Co)Study per selected model over the cluster, and
  leaves each model's best parameters in the parameter server;
* **inference**: ``create_inference_job`` deploys those parameters
  instantly (the paper's headline benefit of unifying the services) and
  ``query`` serves ensemble predictions.

Masters checkpoint their small state for failure recovery; workers are
stateless containers the manager restarts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro import chaos, telemetry
from repro.cluster import CheckpointStore, ClusterManager, Node
from repro.cluster.manager import JobKind
from repro.core.tune import (
    BayesianAdvisor,
    CoStudyMaster,
    GridSearchAdvisor,
    HyperConf,
    HyperSpace,
    RandomSearchAdvisor,
    RealTrainer,
    StudyMaster,
    StudyReport,
    make_workers,
    run_study,
    section71_space,
)
from repro.data import DataStore, ImageDataset
from repro.exceptions import (
    ConfigurationError,
    InjectedFault,
    JobNotFoundError,
    ServingError,
)
from repro.paramserver import ParameterServer, ShardedParameterServer
from repro.tenancy import DEFAULT_TENANT, TenantRegistry, tenant_context
from repro.tensor import Network
from repro.utils.retry import CircuitBreaker
from repro.utils.rng import RngStream
from repro.zoo import TaskRegistry, default_registry, majority_vote

__all__ = ["Rafiki", "TrainJobInfo", "InferenceJobInfo", "ModelSpec"]

_ADVISORS = {
    "random": RandomSearchAdvisor,
    "grid": GridSearchAdvisor,
    "bayesian": BayesianAdvisor,
}

_train_job_ids = itertools.count(1)
_infer_job_ids = itertools.count(1)


@dataclass
class ModelSpec:
    """What ``rafiki.get_models`` returns: a name plus parameter keys."""

    model_name: str
    param_key: str
    performance: float
    task: str
    dataset: str


@dataclass
class TrainJobInfo:
    """Book-keeping for one training job."""

    job_id: str
    name: str
    task: str
    dataset: str
    status: str = "pending"
    model_names: list[str] = field(default_factory=list)
    reports: dict[str, StudyReport] = field(default_factory=dict)
    cluster_job_id: str | None = None
    tenant: str = DEFAULT_TENANT

    @property
    def best_performance(self) -> float:
        if not self.reports:
            return 0.0
        return max(report.best_performance for report in self.reports.values())


@dataclass
class InferenceJobInfo:
    """One deployed (ensemble of) model(s)."""

    job_id: str
    specs: list[ModelSpec]
    networks: list[Network] = field(default_factory=list)
    status: str = "pending"
    tenant: str = DEFAULT_TENANT
    queries_served: int = 0
    cluster_job_id: str | None = None
    #: optional Clipper-style result cache for single-image queries.
    cache: Any = None
    #: one circuit breaker per deployed replica; a replica whose
    #: breaker is open is dropped from the ensemble vote and re-admitted
    #: when the breaker half-opens after its recovery window.
    breakers: list[CircuitBreaker] = field(default_factory=list)

    def live_replicas(self) -> list[int]:
        """Indices of replicas currently admitted to the ensemble."""
        if not self.breakers:
            return list(range(len(self.networks)))
        return [i for i, b in enumerate(self.breakers) if b.state != "open"]


class Rafiki:
    """The system facade users talk to (via the SDK or gateway)."""

    def __init__(
        self,
        nodes: int = 3,
        gpus_per_node: int = 3,
        seed: int = 0,
        ps_shards: int = 1,
        ps_replicas: int = 2,
        tenants: TenantRegistry | None = None,
    ):
        self.rng_stream = RngStream(seed)
        #: quota + identity authority shared by the gateway, the cluster
        #: manager and the stores. Lenient by default (unknown tenants
        #: auto-register unlimited) so single-customer deployments keep
        #: working; pass a strict registry to refuse unknown tenants.
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.store = DataStore("rafiki-hdfs", tenants=self.tenants)
        self.checkpoints = CheckpointStore()
        self.cluster = ClusterManager(
            checkpoint_store=self.checkpoints, tenants=self.tenants
        )
        for i in range(nodes):
            self.cluster.add_node(
                Node(name=f"node-{chr(ord('a') + i)}",
                     capacity=_node_capacity(gpus_per_node))
            )
        if ps_shards <= 1:
            # The single-server data plane: exactly the behaviour (and
            # telemetry series) the system has always had.
            self.param_server = ParameterServer(store=self.store, tenants=self.tenants)
        else:
            self.param_server = ShardedParameterServer(
                shards=ps_shards, replicas=ps_replicas
            )
            self.param_server.register_with_cluster(self.cluster)
        self.registry: TaskRegistry = default_registry()
        self.train_jobs: dict[str, TrainJobInfo] = {}
        self.inference_jobs: dict[str, InferenceJobInfo] = {}

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------

    def import_images(self, source: str | ImageDataset, name: str | None = None):
        """Figure 2's ``rafiki.import_images``: a folder or a dataset."""
        if isinstance(source, ImageDataset):
            return self.store.put_dataset(source)
        return self.store.import_images(source, name=name)

    # ------------------------------------------------------------------
    # training service
    # ------------------------------------------------------------------

    def create_train_job(
        self,
        name: str,
        task: str,
        dataset: str,
        hyper: HyperConf | None = None,
        space: HyperSpace | None = None,
        input_shape: tuple[int, ...] | None = None,
        output_shape: tuple[int, ...] | None = None,
        num_models: int = 2,
        num_workers: int = 2,
        advisor: str = "bayesian",
        collaborative: bool = True,
        backend_factory=None,
        train_batch_size: int = 32,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
    ) -> str:
        """Run model selection + one study per selected model.

        ``backend_factory(model_entry, dataset)`` may override the
        trainer backend (tests use the surrogate); by default each
        study trains real networks with :class:`RealTrainer`.
        ``input_shape``/``output_shape`` follow the Figure 2 API and
        are validated against the dataset when given.
        """
        if advisor not in _ADVISORS:
            raise ConfigurationError(f"advisor must be one of {sorted(_ADVISORS)}")
        data = self.store.get_dataset(dataset)
        if input_shape is not None and tuple(input_shape) != data.image_shape:
            raise ConfigurationError(
                f"input_shape {input_shape} does not match dataset shape {data.image_shape}"
            )
        if output_shape is not None and tuple(output_shape) != (data.num_classes,):
            raise ConfigurationError(
                f"output_shape {output_shape} does not match dataset classes "
                f"({data.num_classes})"
            )
        hyper = hyper if hyper is not None else HyperConf(max_trials=8, max_epochs_per_trial=10)
        space = space if space is not None else section71_space()
        entries = self.registry.select_diverse(task, k=num_models)

        job_id = f"train-{next(_train_job_ids)}"
        info = TrainJobInfo(
            job_id=job_id, name=name, task=task, dataset=dataset, tenant=tenant
        )
        # The facade drives studies synchronously, so it needs the
        # containers *now*: queue=False keeps the fail-fast contract
        # (quota violations surface as 429 at the gateway instead of
        # parking a job the caller would then block on).
        cluster_job = self.cluster.submit_job(
            JobKind.TRAIN, name=name, num_workers=num_workers,
            tenant=tenant, priority=priority, queue=False,
        )
        info.cluster_job_id = cluster_job.job_id
        info.status = "running"
        self.train_jobs[job_id] = info

        try:
            with tenant_context(tenant):
                for entry in entries:
                    info.model_names.append(entry.name)
                    report = self._run_one_study(
                        job_id, entry, data, hyper, space, num_workers, advisor,
                        collaborative, backend_factory, train_batch_size,
                    )
                    info.reports[entry.name] = report
                    entry.record_performance(dataset, report.best_performance)
            info.status = "completed"
            self.cluster.complete_job(cluster_job.job_id)
        except Exception:
            info.status = "failed"
            self.cluster.stop_job(cluster_job.job_id)
            raise
        return job_id

    def _run_one_study(
        self,
        job_id: str,
        entry,
        data: ImageDataset,
        hyper: HyperConf,
        space: HyperSpace,
        num_workers: int,
        advisor: str,
        collaborative: bool,
        backend_factory,
        train_batch_size: int,
    ) -> StudyReport:
        study_name = f"{job_id}/{entry.name}"
        rng = self.rng_stream.get(f"advisor:{study_name}")
        advisor_obj = _ADVISORS[advisor](space, rng=rng) if advisor != "grid" else (
            GridSearchAdvisor(space)
        )
        if backend_factory is not None:
            backend = backend_factory(entry, data)
        else:
            backend = RealTrainer(
                dataset=data,
                builder=entry.builder,
                batch_size=train_batch_size,
                seed=self.rng_stream.root_seed,
            )
        master_cls = CoStudyMaster if collaborative else StudyMaster
        kwargs = {}
        if collaborative:
            kwargs["rng"] = self.rng_stream.get(f"alpha:{study_name}")
        master = master_cls(
            study_name, hyper, advisor_obj, self.param_server,
            best_key=f"{study_name}/best", **kwargs,
        )
        workers = make_workers(master, backend, self.param_server, hyper, num_workers,
                               name_prefix=f"{study_name}/worker")
        report = run_study(master, workers)
        # Persist the small master state (Section 6.3 failure recovery).
        if isinstance(master, CoStudyMaster):
            self.checkpoints.save(study_name, master.checkpoint_state())
        return report

    def get_train_job(self, job_id: str) -> TrainJobInfo:
        """Look up a training job's book-keeping by id."""
        if job_id not in self.train_jobs:
            raise JobNotFoundError(job_id)
        return self.train_jobs[job_id]

    def get_models(self, job_id: str) -> list[ModelSpec]:
        """Figure 2's ``rafiki.get_models``: deployable model specs."""
        info = self.get_train_job(job_id)
        specs = []
        for model_name in info.model_names:
            key = f"{job_id}/{model_name}/best"
            if not self.param_server.has(key):
                continue
            entry = self.param_server.get_entry(key)
            specs.append(
                ModelSpec(
                    model_name=model_name,
                    param_key=key,
                    performance=float(entry.performance),
                    task=info.task,
                    dataset=info.dataset,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # inference service
    # ------------------------------------------------------------------

    def create_inference_job(
        self,
        models: Sequence[ModelSpec],
        dataset: str | None = None,
        enable_cache: bool = True,
        cache_capacity: int = 1024,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
    ) -> str:
        """Deploy trained models: fetch parameters and build networks.

        The parameters are fetched from the parameter server — this is
        the instant train-to-deploy hand-off the unified architecture
        provides. ``enable_cache`` memoises repeated single-image
        queries (the UDF workload of Section 8 repeats image paths).
        """
        specs = list(models)
        if not specs:
            raise ConfigurationError("at least one model spec is required")
        job_id = f"infer-{next(_infer_job_ids)}"
        info = InferenceJobInfo(job_id=job_id, specs=specs, tenant=tenant)
        cluster_job = self.cluster.submit_job(
            JobKind.INFERENCE, name=job_id, num_workers=len(specs),
            tenant=tenant, priority=priority, queue=False,
        )
        info.cluster_job_id = cluster_job.job_id
        dataset_name = dataset or specs[0].dataset
        data = self.store.get_dataset(dataset_name)
        for spec in specs:
            entry = self.registry.get(spec.task, spec.model_name)
            rng = self.rng_stream.get(f"deploy:{job_id}:{spec.model_name}")
            network = entry.builder(data.image_shape, data.num_classes, rng)
            state = self.param_server.get(spec.param_key)
            loaded = network.warm_start(state)
            if not loaded:
                raise ConfigurationError(
                    f"no shape-matched parameters for {spec.model_name!r} "
                    f"under {spec.param_key!r}"
                )
            info.networks.append(network)
            info.breakers.append(
                CircuitBreaker(
                    name=f"{job_id}/{spec.model_name}",
                    failure_threshold=3,
                    recovery_time=30.0,
                )
            )
        if enable_cache:
            from repro.core.serve.pred_cache import PredictionCache

            info.cache = PredictionCache(
                lambda image, i=info: self._predict(i, image[None, ...]),
                capacity=cache_capacity,
            )
        info.status = "running"
        self.inference_jobs[job_id] = info
        return job_id

    def get_inference_job(self, job_id: str) -> InferenceJobInfo:
        """Look up a deployed inference job by id."""
        if job_id not in self.inference_jobs:
            raise JobNotFoundError(job_id)
        return self.inference_jobs[job_id]

    def query(self, job_id: str, data: np.ndarray) -> dict[str, Any]:
        """Serve one request (or a batch) through the deployed ensemble.

        Majority voting with best-model tie-break aggregates the
        deployed networks' predictions (Section 5.2).
        """
        info = self.get_inference_job(job_id)
        if info.status != "running":
            raise ConfigurationError(f"inference job {job_id!r} is not running")
        batch = np.asarray(data, dtype=np.float64)
        single = batch.ndim == 3
        if single and info.cache is not None:
            labels, votes = info.cache.query(batch)
        else:
            if single:
                batch = batch[None, ...]
            labels, votes = self._predict(info, batch)
        info.queries_served += 1 if single else batch.shape[0]
        result: dict[str, Any] = {
            "label": int(labels[0]) if single else [int(v) for v in labels],
            "votes": votes[:, 0].tolist() if single else votes.T.tolist(),
            "models": [spec.model_name for spec in info.specs],
        }
        return result

    def _predict(self, info: InferenceJobInfo, batch: np.ndarray):
        """Ensemble prediction with graceful replica degradation.

        Each replica's execution passes through its
        ``serve.model.<name>`` fault point behind a circuit breaker: a
        replica that keeps failing is dropped from the vote (its
        breaker opens) and probed again after the recovery window,
        re-admitting it once healthy. The request only fails when *no*
        replica is available.
        """
        if len(info.breakers) != len(info.networks):
            # Directly constructed job infos (tests) get breakers lazily.
            info.breakers = [
                CircuitBreaker(name=f"{info.job_id}/{spec.model_name}")
                for spec in info.specs
            ]
        rows: list[np.ndarray] = []
        accuracies: list[float] = []
        registry = telemetry.get_registry()
        for spec, network, breaker in zip(info.specs, info.networks, info.breakers):
            if not breaker.allow():
                continue
            try:
                chaos.fire(f"serve.model.{spec.model_name}")
                rows.append(network.predict_labels(batch))
            except InjectedFault:
                breaker.record_failure()
                registry.counter(
                    "repro_serve_replica_errors_total",
                    "Replica execution failures absorbed by the ensemble.",
                ).inc(model=spec.model_name)
                continue
            breaker.record_success()
            accuracies.append(spec.performance)
        registry.gauge(
            "repro_serve_replicas_live",
            "Replicas currently admitted to the ensemble, by job.",
        ).set(len(info.live_replicas()), job=info.job_id)
        if not rows:
            raise ServingError(
                f"inference job {info.job_id!r} has no live model replicas"
            )
        votes = np.vstack(rows)
        return majority_vote(votes, np.array(accuracies)), votes

    def profile_inference_job(self, job_id: str, batch_sizes=(1, 8, 16, 32)):
        """Measure the deployed networks' latency cards (Figure 3 style).

        Each deployed network is timed across ``batch_sizes`` and fitted
        to the affine ``c(m, b)`` model; its tuning-time validation
        accuracy becomes the card's accuracy. The cards plug straight
        into the serving environment and controllers.
        """
        from repro.core.serve.profiler import profile_network

        info = self.get_inference_job(job_id)
        return [
            profile_network(
                network,
                name=f"{job_id}/{spec.model_name}",
                batch_sizes=batch_sizes,
                accuracy=spec.performance,
            )
            for spec, network in zip(info.specs, info.networks)
        ]

    def redeploy_inference_job(self, job_id: str) -> dict[str, Any]:
        """Reload every replica's parameters from the parameter server.

        Training that continues after deployment leaves better
        checkpoints under the same keys; redeploying picks them up
        without recreating the job. The prediction cache is invalidated
        — its memoised results came from the old parameters, and
        serving them after the swap would silently return stale
        predictions.
        """
        info = self.get_inference_job(job_id)
        if info.status != "running":
            raise ConfigurationError(f"inference job {job_id!r} is not running")
        reloaded = []
        for spec, network in zip(info.specs, info.networks):
            entry = self.param_server.get_entry(spec.param_key)
            state = self.param_server.get(spec.param_key)
            if not network.warm_start(state):
                raise ConfigurationError(
                    f"no shape-matched parameters for {spec.model_name!r} "
                    f"under {spec.param_key!r}"
                )
            spec.performance = float(entry.performance)
            reloaded.append(
                {"model_name": spec.model_name, "version": entry.version,
                 "performance": spec.performance}
            )
        if info.cache is not None:
            info.cache.invalidate_all()
        telemetry.get_registry().counter(
            "repro_serve_redeploys_total", "Inference-job parameter reloads."
        ).inc(job=job_id)
        return {"job_id": job_id, "models": reloaded}

    def stop_inference_job(self, job_id: str) -> None:
        """Undeploy: stop serving and release the cluster resources."""
        info = self.get_inference_job(job_id)
        info.status = "stopped"
        if info.cluster_job_id is not None:
            self.cluster.stop_job(info.cluster_job_id)


def _node_capacity(gpus: int):
    from repro.cluster.node import Resources

    return Resources(cpus=8, gpus=gpus, memory_gb=64)

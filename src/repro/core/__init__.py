"""The paper's primary contribution: training + inference services.

* :mod:`repro.core.tune` — distributed hyper-parameter tuning
  (Algorithm 1's ``Study`` and Algorithm 2's collaborative ``CoStudy``),
  the ``HyperSpace`` programming model, and the trial advisors (random
  search, grid search, Gaussian-process Bayesian optimisation);
* :mod:`repro.core.serve` — the inference service: SLO-aware greedy
  batching (Algorithm 3) and the reinforcement-learning controller that
  jointly picks the batch size and the ensemble (Section 5.2);
* :mod:`repro.core.system` — the unified Rafiki facade that wires both
  services over the shared substrates (cluster manager, parameter
  server, data store), enabling instant deployment after training.
"""

from __future__ import annotations

__all__ = ["Rafiki"]


def __getattr__(name: str):
    if name == "Rafiki":
        from repro.core.system import Rafiki

        return Rafiki
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")

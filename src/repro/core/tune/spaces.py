"""Predefined hyper-parameter spaces.

``section71_space`` is the optimisation-knob space of the paper's
Section 7.1 experiments: the architecture is fixed (the 8-conv-layer
Snoek et al. network) and the tuned knobs come from Table 1's group 3
plus dropout and the weight-initialisation standard deviation.

``demo_space`` adds a preprocessing (group 1) and an architecture
(group 2) knob with a dependency, exercising the full Figure 4 API.
"""

from __future__ import annotations

from repro.core.tune.hyperspace import HyperSpace

__all__ = ["section71_space", "demo_space"]


def section71_space() -> HyperSpace:
    """lr / momentum / weight decay / dropout / init std."""
    space = HyperSpace()
    space.add_range_knob("lr", "float", 1e-4, 1.0, log_scale=True)
    space.add_range_knob("momentum", "float", 0.0, 0.99)
    space.add_range_knob("weight_decay", "float", 1e-6, 1e-2, log_scale=True)
    space.add_range_knob("dropout", "float", 0.0, 0.7)
    space.add_range_knob("init_std", "float", 1e-3, 0.5, log_scale=True)
    return space


def _decay_post_hook(values: dict, decay: float) -> float:
    """The paper's example: a large learning rate prefers faster decay."""
    if values.get("lr", 0.0) > 0.1:
        return min(decay * 2.0, 0.999)
    return decay


def demo_space() -> HyperSpace:
    """A 3-group space exercising depends/hooks (Table 1)."""
    space = section71_space()
    # group 1: data preprocessing
    space.add_range_knob("rotation", "float", 0.0, 30.0)
    space.add_categorical_knob("whitening", "str", ["none", "pca", "zca"])
    # group 2: model architecture
    space.add_range_knob("width", "int", 4, 17)
    # group 3 extension: decay rate depends on the learning rate
    space.add_range_knob(
        "lr_decay", "float", 0.9, 0.9999, depends=["lr"], post_hook=_decay_post_hook
    )
    return space

"""The surrogate trainer: a calibrated training response surface.

The paper's Section 7.1 studies run hundreds of full ConvNet trainings
on a GPU cluster. This backend substitutes a response surface so the
*tuning algorithms* (Study vs CoStudy, random search vs Bayesian
optimisation, 1-8 workers) can be compared over hundreds of trials on a
CPU in seconds. The surface reproduces the training phenomenology those
comparisons depend on:

* a smooth quality score ``q(h) in [0, 1]`` peaking at textbook values
  of the Section 7.1 knobs (learning rate, momentum, weight decay,
  dropout, initialisation std), so random trials spread over 20-85%
  accuracy while well-tuned trials approach ~93% — the CIFAR-10 regime;
* saturating learning curves ``acc(e)`` whose time constant grows when
  the learning rate is off, so early stopping matters;
* warm starting from a checkpoint with accuracy ``a0`` resumes the
  curve near ``a0`` (pre-training: faster convergence) and lifts the
  reachable asymptote, while *bad* hyper-parameters degrade a good
  checkpoint (the failure mode the paper's alpha-greedy rule guards
  against) and bad checkpoints drag good trials down;
* per-epoch observation noise.

The session's "parameters" are a single token array carrying the
checkpoint accuracy, which flows through the same parameter-server
machinery as real weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.tune.trial import Trial
from repro.utils.rng import derive_rng

__all__ = ["SurrogateTrainer", "SURROGATE_ACC_KEY"]

#: state-dict key carrying a surrogate checkpoint's accuracy.
SURROGATE_ACC_KEY = "__surrogate__/accuracy"

#: (optimum, width) of each knob's quality penalty, in the units the
#: Section 7.1 space uses. Log-scaled knobs use log10 distance.
_KNOB_RESPONSES = {
    "lr": {"optimum": 0.05, "width": 2.0, "log": True},
    "momentum": {"optimum": 0.90, "width": 0.80, "log": False},
    "weight_decay": {"optimum": 5e-4, "width": 2.9, "log": True},
    "dropout": {"optimum": 0.35, "width": 0.90, "log": False},
    "init_std": {"optimum": 0.05, "width": 2.3, "log": True},
}


class _SurrogateSession:
    """Replays one trial's learning curve."""

    def __init__(self, trainer: "SurrogateTrainer", trial: Trial, start_acc: float,
                 final_acc: float, tau: float, rng: np.random.Generator):
        self._trainer = trainer
        self.trial = trial
        self._start = start_acc
        self._final = final_acc
        self._tau = tau
        self._rng = rng
        self._epochs = 0
        self._best = 0.0
        self._current = start_acc

    def run_epoch(self) -> float:
        self._epochs += 1
        mean = self._final + (self._start - self._final) * math.exp(-self._epochs / self._tau)
        observed = mean + self._rng.normal(0.0, self._trainer.noise)
        observed = float(min(max(observed, 0.0), 0.999))
        self._current = observed
        self._best = max(self._best, observed)
        return observed

    def state_dict(self) -> dict[str, np.ndarray]:
        return {SURROGATE_ACC_KEY: np.array([self._current])}

    @property
    def epochs(self) -> int:
        return self._epochs

    @property
    def best_performance(self) -> float:
        return self._best


class SurrogateTrainer:
    """Response-surface backend with warm-start semantics."""

    def __init__(
        self,
        baseline_acc: float = 0.10,  # random guessing over 10 classes
        max_acc: float = 0.945,
        gain: float = 1.0,
        concavity: float = 0.6,
        retention: float = 0.95,
        destroy: float = 0.4,
        base_tau: float = 8.0,
        decay_tau: float = 2.5,
        noise: float = 0.006,
        seconds_per_epoch: float = 30.0,
        seed: int = 0,
    ):
        self.baseline_acc = float(baseline_acc)
        self.max_acc = float(max_acc)
        self.gain = float(gain)
        self.concavity = float(concavity)
        self.retention = float(retention)
        self.destroy = float(destroy)
        self.base_tau = float(base_tau)
        self.decay_tau = float(decay_tau)
        self.noise = float(noise)
        self.seconds_per_epoch = float(seconds_per_epoch)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # response surface
    # ------------------------------------------------------------------

    def quality(self, params: dict) -> float:
        """Quality score q(h) in [0, 1]; 1 means textbook settings."""
        penalty = 0.0
        for name, spec in _KNOB_RESPONSES.items():
            if name not in params:
                continue
            value = float(params[name])
            if spec["log"]:
                value = max(value, 1e-12)
                distance = (math.log10(value) - math.log10(spec["optimum"])) / spec["width"]
            else:
                distance = (value - spec["optimum"]) / spec["width"]
            penalty += distance**2
        return math.exp(-penalty)

    def final_accuracy(self, params: dict, start_acc: float) -> float:
        """Asymptotic accuracy when training from ``start_acc``."""
        q = self.quality(params)
        # Concavity: climbing the last few accuracy points needs less
        # hyper-parameter perfection than a linear response would imply.
        climb = (self.max_acc - start_acc) * self.gain * q**self.concavity
        damage = (1.0 - q) * self.destroy * max(start_acc - self.baseline_acc, 0.0)
        return float(min(max(start_acc + climb - damage, 0.01), self.max_acc))

    def time_constant(self, params: dict) -> float:
        """Epochs-to-saturation; off learning rates converge slower."""
        lr = float(params.get("lr", _KNOB_RESPONSES["lr"]["optimum"]))
        off = abs(math.log10(max(lr, 1e-12)) - math.log10(_KNOB_RESPONSES["lr"]["optimum"]))
        return self.base_tau * (1.0 + 0.7 * off)

    # ------------------------------------------------------------------
    # backend protocol
    # ------------------------------------------------------------------

    def start(self, trial: Trial, init_state: dict[str, np.ndarray] | None) -> _SurrogateSession:
        rng = derive_rng(self.seed, f"surrogate-trial:{trial.trial_id}")
        if init_state and SURROGATE_ACC_KEY in init_state:
            checkpoint_acc = float(init_state[SURROGATE_ACC_KEY][0])
            start_acc = max(checkpoint_acc * self.retention, self.baseline_acc)
        else:
            start_acc = self.baseline_acc
        final_acc = self.final_accuracy(trial.params, start_acc)
        # A dropping curve (bad trial from a good checkpoint) collapses fast.
        tau = self.time_constant(trial.params) if final_acc >= start_acc else self.decay_tau
        # Trial-level bias models run-to-run variance beyond epoch noise.
        final_acc = float(min(max(final_acc + rng.normal(0.0, 0.01), 0.01), 0.999))
        return _SurrogateSession(self, trial, start_acc, final_acc, tau, rng)

    def epoch_cost(self, trial: Trial) -> float:
        return self.seconds_per_epoch

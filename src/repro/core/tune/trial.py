"""Trials and their results.

Following the paper's (and Vizier's) convention, one assignment of all
hyper-parameters is a *trial*; the tuning process of one model over a
dataset is a *study*.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Trial", "TrialResult", "TrialStatus", "InitKind"]

_trial_ids = itertools.count(1)


class InitKind(enum.Enum):
    """How a trial's model parameters are initialised."""

    RANDOM = "random"
    WARM_START = "warm-start"


class TrialStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    STOPPED = "stopped"  # early-stopped by the master
    FAILED = "failed"


@dataclass
class Trial:
    """One hyper-parameter assignment handed to a worker."""

    params: dict[str, Any]
    trial_id: int = field(default_factory=lambda: next(_trial_ids))
    init_kind: InitKind = InitKind.RANDOM
    init_key: str | None = None  # parameter-server key for warm starts
    status: TrialStatus = TrialStatus.PENDING
    #: per-trial epoch budget override (successive halving assigns
    #: rung-specific budgets); None defers to the study configuration.
    max_epochs: int | None = None

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"trial {self.trial_id} [{self.init_kind.value}] ({knobs})"


@dataclass
class TrialResult:
    """Outcome of one trial."""

    trial: Trial
    performance: float
    epochs: int
    history: list[float] = field(default_factory=list)  # per-epoch validation accuracy
    worker: str = ""

    @property
    def performance_pct(self) -> float:
        return 100.0 * self.performance

"""``CoStudy`` — the collaborative tuning master of Algorithm 2.

Differences from :class:`~repro.core.tune.study.StudyMaster`:

* new trials are initialised from the current best parameters in the
  parameter server (warm start), subject to the alpha-greedy rule that
  keeps a decaying probability of random initialisation — the guard
  against a bad checkpoint poisoning subsequent trials;
* on every ``kReport``, a worker whose performance beats the best by
  more than ``conf.delta`` is told to ``kPut`` its parameters
  (Algorithm 2 lines 8-10), so the shared checkpoint ratchets upward
  *during* training, not just at trial boundaries;
* early stopping moves to the master (Algorithm 2 line 11): a worker
  whose reports plateau receives ``kStop``.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.cluster.message import Message, MessageType
from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.config import HyperConf
from repro.core.tune.early_stopping import EarlyStopper
from repro.core.tune.study import StudyMaster
from repro.core.tune.trial import InitKind, Trial
from repro.paramserver import ParameterServer

__all__ = ["CoStudyMaster"]


class CoStudyMaster(StudyMaster):
    """Algorithm 2."""

    #: CoStudy centralises early stopping at the master.
    workers_early_stop_locally = False

    def __init__(
        self,
        study_name: str,
        conf: HyperConf,
        advisor: TrialAdvisor,
        param_server: ParameterServer,
        best_key: str | None = None,
        clock=None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(study_name, conf, advisor, param_server, best_key, clock)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.best_p = 0.0
        self._stoppers: dict[str, tuple[int, EarlyStopper]] = {}
        self.random_inits = 0
        self.warm_inits = 0

    # ------------------------------------------------------------------
    # trial creation: alpha-greedy warm starting
    # ------------------------------------------------------------------

    def _make_trial(self, params: dict) -> Trial:
        alpha = self.conf.alpha(self.num_finished)
        use_random = (
            self._rng.random() < alpha or not self.param_server.has(self.best_key)
        )
        inits = telemetry.get_registry().counter(
            "repro_tune_costudy_inits_total",
            "CoStudy trial initialisations, by alpha-greedy outcome.",
        )
        if use_random:
            self.random_inits += 1
            inits.inc(kind="random")
            return Trial(params=params, init_kind=InitKind.RANDOM)
        self.warm_inits += 1
        inits.inc(kind="warm")
        return Trial(params=params, init_kind=InitKind.WARM_START, init_key=self.best_key)

    # ------------------------------------------------------------------
    # reports: checkpointing + master-side early stopping
    # ------------------------------------------------------------------

    def _on_report(self, message: Message) -> list[tuple[str, Message]]:
        worker = message.sender
        performance = float(message.payload["p"])
        trial = message.payload["trial"]
        if performance - self.best_p > self.conf.delta:
            self.best_p = performance
            telemetry.get_registry().counter(
                "repro_tune_costudy_syncs_total",
                "kPut checkpoint syncs ordered on best-beating reports "
                "(Algorithm 2 lines 8-10).",
            ).inc()
            return [
                (
                    worker,
                    Message(
                        MessageType.PUT,
                        self.study_name,
                        {"key": self.best_key, "performance": performance},
                    ),
                )
            ]
        if self._plateaued(worker, trial.trial_id, performance):
            return [(worker, Message(MessageType.STOP, self.study_name))]
        return []

    def _plateaued(self, worker: str, trial_id: int, performance: float) -> bool:
        tracked = self._stoppers.get(worker)
        if tracked is None or tracked[0] != trial_id:
            stopper = EarlyStopper(
                patience=self.conf.early_stop_patience,
                min_delta=self.conf.early_stop_min_delta,
            )
            self._stoppers[worker] = (trial_id, stopper)
        else:
            stopper = tracked[1]
        return stopper.update(performance)

    # ------------------------------------------------------------------
    # finish: no kPut here (checkpointing happened on reports)
    # ------------------------------------------------------------------

    def _on_finish(self, message: Message) -> list[tuple[str, Message]]:
        replies = super()._on_finish(message)
        # Algorithm 2 does not issue kPut on kFinish; drop the one the
        # base class may have queued (checkpointing is report-driven).
        return [(w, m) for (w, m) in replies if m.type is not MessageType.PUT]

    # ------------------------------------------------------------------
    # failure recovery (Section 6.3): master state is small
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> dict:
        """The small master state Rafiki checkpoints for recovery."""
        return {
            "num_finished": self.num_finished,
            "total_epochs": self.total_epochs,
            "best_p": self.best_p,
            "random_inits": self.random_inits,
            "warm_inits": self.warm_inits,
        }

    def restore_state(self, state: dict) -> None:
        self.num_finished = int(state["num_finished"])
        self.total_epochs = int(state["total_epochs"])
        self.best_p = float(state["best_p"])
        self.random_inits = int(state["random_inits"])
        self.warm_inits = int(state["warm_inits"])

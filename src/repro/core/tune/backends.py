"""Trainer backends: how a worker actually evaluates a trial.

Two backends implement the same session protocol:

* :class:`RealTrainer` trains a genuine NumPy network from
  :mod:`repro.zoo.builders` over a dataset — the full code path, used
  by examples, integration tests and small studies;
* :class:`~repro.core.tune.surrogate.SurrogateTrainer` (see its module)
  replays a calibrated response surface, standing in for the paper's
  GPU cluster so the Figure 8/9/11 studies run hundreds of trials in
  seconds.

A session is advanced one epoch at a time (``run_epoch`` returns the
validation accuracy after that epoch), which is what lets the CoStudy
master early-stop and checkpoint workers mid-trial.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Protocol

import numpy as np

from repro.core.tune.trial import Trial
from repro.data.datasets import ImageDataset
from repro.data.preprocess import Compose, standard_cifar_pipeline
from repro.tensor import Network, SGD, SoftmaxCrossEntropy, evaluate, train_epoch
from repro.tensor.optimizers import ExponentialDecaySchedule
from repro.utils.rng import derive_rng

__all__ = ["TrialSession", "TrainerBackend", "RealTrainer"]


class TrialSession(Protocol):
    """One in-progress trial on a worker."""

    def run_epoch(self) -> float:
        """Train one epoch; return the validation accuracy after it."""
        ...

    def state_dict(self) -> dict[str, np.ndarray]:
        """Current model parameters (for the parameter server)."""
        ...

    @property
    def epochs(self) -> int: ...

    @property
    def best_performance(self) -> float: ...


class TrainerBackend(Protocol):
    """Factory of trial sessions plus a cost model for simulated time."""

    def start(self, trial: Trial, init_state: dict[str, np.ndarray] | None) -> TrialSession:
        ...

    def epoch_cost(self, trial: Trial) -> float:
        """Simulated seconds one training epoch takes for this trial."""
        ...


class _RealSession:
    """Real NumPy training session over an :class:`ImageDataset`."""

    def __init__(
        self,
        network: Network,
        dataset: ImageDataset,
        trial: Trial,
        batch_size: int,
        rng: np.random.Generator,
        augment: Compose | None,
    ):
        self.network = network
        self.dataset = dataset
        self.trial = trial
        self.batch_size = batch_size
        self._rng = rng
        self._augment = augment
        params = trial.params
        self.loss = SoftmaxCrossEntropy()
        lr: float | ExponentialDecaySchedule = float(params.get("lr", 0.05))
        if "lr_decay" in params:
            # Table 1 group 3: the decay rate rides on its own knob.
            lr = ExponentialDecaySchedule(lr, decay=float(params["lr_decay"]))
        self.optimizer = SGD(
            lr=lr,
            momentum=float(params.get("momentum", 0.9)),
            weight_decay=float(params.get("weight_decay", 1e-4)),
        )
        self._epochs = 0
        self._best = 0.0
        self.diverged = False

    def run_epoch(self) -> float:
        self._epochs += 1
        if self.diverged:
            return 0.0
        # Extreme trials (huge learning rates) legitimately diverge;
        # suppress the overflow noise and report zero accuracy so the
        # advisor records the failure instead of crashing the worker.
        with np.errstate(over="ignore", invalid="ignore"):
            mean_loss = train_epoch(
                self.network,
                self.loss,
                self.optimizer,
                self.dataset.train_x,
                self.dataset.train_y,
                batch_size=self.batch_size,
                rng=self._rng,
                augment=self._augment,
            )
            if not np.isfinite(mean_loss):
                self.diverged = True
                return 0.0
            acc = evaluate(self.network, self.dataset.val_x, self.dataset.val_y)
        self._best = max(self._best, acc)
        return acc

    def state_dict(self) -> dict[str, np.ndarray]:
        return self.network.state_dict()

    @property
    def epochs(self) -> int:
        return self._epochs

    @property
    def best_performance(self) -> float:
        return self._best


class RealTrainer:
    """Backend that trains real networks built by ``builder``.

    ``builder(input_shape, num_classes, rng, **arch_kwargs)`` must
    return a built :class:`Network`; architecture-group knobs are
    forwarded via ``arch_knobs`` (names looked up in the trial params).
    """

    def __init__(
        self,
        dataset: ImageDataset,
        builder: Callable[..., Network],
        batch_size: int = 32,
        seconds_per_epoch: float = 30.0,
        use_augmentation: bool = True,
        arch_knobs: tuple[str, ...] = ("dropout", "init_std", "width"),
        seed: int = 0,
    ):
        self.dataset = dataset
        self.builder = builder
        self.batch_size = int(batch_size)
        self.seconds_per_epoch = float(seconds_per_epoch)
        self.use_augmentation = bool(use_augmentation)
        self.arch_knobs = tuple(arch_knobs)
        self.seed = int(seed)
        self._augment = (
            standard_cifar_pipeline(dataset.train_x, pad=2) if use_augmentation else None
        )
        # The builder's signature never changes; inspect it once here
        # rather than on every start() (it is surprisingly expensive).
        self._builder_params = frozenset(inspect.signature(builder).parameters)
        self._sessions_started = 0

    def start(self, trial: Trial, init_state: dict[str, np.ndarray] | None) -> _RealSession:
        self._sessions_started += 1
        rng = derive_rng(self.seed, f"trial:{trial.trial_id}")
        kwargs: dict[str, Any] = {
            name: trial.params[name]
            for name in self.arch_knobs
            if name in trial.params and name in self._builder_params
        }
        network = self.builder(
            self.dataset.image_shape, self.dataset.num_classes, rng, **kwargs
        )
        if init_state:
            network.warm_start(init_state)
        return _RealSession(
            network=network,
            dataset=self.dataset,
            trial=trial,
            batch_size=self.batch_size,
            rng=rng,
            augment=self._augment,
        )

    def epoch_cost(self, trial: Trial) -> float:
        return self.seconds_per_epoch

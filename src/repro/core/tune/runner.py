"""Drive a study to completion over simulated time.

The master is reactive (it replies synchronously when messages arrive);
each worker is a simulated process that consumes ``epoch_cost`` seconds
per training epoch. With N workers the epochs overlap in simulated
time, which is exactly what the Figure 11 scalability study measures.
"""

from __future__ import annotations

from repro import telemetry
from repro.core.tune.backends import TrainerBackend
from repro.core.tune.config import HyperConf
from repro.core.tune.study import StudyMaster, StudyReport
from repro.core.tune.worker import TuneWorker
from repro.paramserver import ParameterServer
from repro.sim import Simulator

__all__ = ["run_study", "make_workers"]


def make_workers(
    master: StudyMaster,
    backend: TrainerBackend,
    param_server: ParameterServer,
    conf: HyperConf,
    num_workers: int,
    name_prefix: str = "worker",
) -> list[TuneWorker]:
    """Create ``num_workers`` workers wired for this master's algorithm."""
    return [
        TuneWorker(
            name=f"{name_prefix}-{i}",
            backend=backend,
            param_server=param_server,
            conf=conf,
            local_early_stop=master.workers_early_stop_locally,
        )
        for i in range(num_workers)
    ]


def run_study(
    master: StudyMaster,
    workers: list[TuneWorker],
    sim: Simulator | None = None,
    max_events: int = 5_000_000,
) -> StudyReport:
    """Run master + workers until every worker has shut down.

    Returns the study report with ``wall_time`` set to the simulated
    completion time.
    """
    sim = sim if sim is not None else Simulator()
    master.set_clock(lambda: sim.now)
    by_name = {worker.name: worker for worker in workers}

    def worker_process(worker: TuneWorker):
        while not worker.terminated:
            outgoing, cost = worker.step()
            for message in outgoing:
                master.mailbox.send(message)
            if outgoing:
                for dest, reply in master.step():
                    by_name[dest].mailbox.send(reply)
            if cost > 0:
                yield cost
            elif not outgoing and not worker.mailbox:
                if worker.awaiting_trial:
                    # Parked by the master (e.g. at a successive-halving
                    # rung barrier): poll the mailbox periodically.
                    yield 1.0
                else:
                    # A stalled worker (no work, no pending replies)
                    # would spin forever; this cannot happen with a
                    # well-behaved master, but guard against bugs.
                    return

    with telemetry.get_tracer().span(
        "run_study", study=master.study_name, workers=len(workers)
    ) as span:
        for worker in workers:
            sim.spawn(worker_process(worker))
        sim.run(max_events=max_events)
        report = master.finalize(wall_time=sim.now)
        span.tag(trials=len(report.results), simulated_seconds=sim.now)
    registry = telemetry.get_registry()
    registry.counter(
        "repro_tune_studies_completed_total", "Studies driven to completion."
    ).inc()
    registry.gauge(
        "repro_tune_study_wall_seconds",
        "Simulated wall time of the most recent study.",
    ).set(report.wall_time)
    return report

"""Successive halving: a budget-aware tuning extension.

The paper's framework claims extensibility to "popular hyper-parameter
tuning algorithms"; this module adds successive halving (the inner loop
of Hyperband) on top of the same master/worker protocol:

* rung 0 draws ``n`` random configurations, each trained for ``r``
  epochs;
* after a rung completes, the top ``1/eta`` of its trials advance to
  the next rung with an ``eta``-times larger budget, *continuing from
  their own checkpoints* in the parameter server (per-trial keys —
  the same warm-start machinery CoStudy uses for its shared best);
* the process repeats until one configuration receives the full budget.

Workers need no changes: per-trial budgets ride on
:attr:`~repro.core.tune.trial.Trial.max_epochs`, and the master issues a
``kPut`` for every finished trial so its parameters are available if it
advances.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.message import Message, MessageType
from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.config import HyperConf
from repro.core.tune.hyperspace import HyperSpace
from repro.core.tune.study import StudyMaster
from repro.core.tune.trial import InitKind, Trial, TrialResult
from repro.exceptions import ConfigurationError
from repro.paramserver import ParameterServer

__all__ = ["SuccessiveHalvingAdvisor", "HalvingMaster", "halving_conf"]


class SuccessiveHalvingAdvisor(TrialAdvisor):
    """Rung-structured proposals with checkpoint continuation.

    ``propose_trial`` hands out ready-made :class:`Trial` objects (the
    plain ``propose`` API cannot carry budgets); between rungs it
    returns ``None`` while earlier trials are still running, and the
    master treats that as "no work right now" rather than exhaustion.
    """

    def __init__(
        self,
        space: HyperSpace,
        initial_trials: int = 16,
        initial_epochs: int = 2,
        eta: int = 2,
        max_rungs: int = 4,
        rng: np.random.Generator | None = None,
        checkpoint_prefix: str = "sh",
    ):
        super().__init__(space)
        if initial_trials < eta:
            raise ConfigurationError(
                f"initial_trials ({initial_trials}) must be >= eta ({eta})"
            )
        if eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {eta}")
        self.initial_trials = int(initial_trials)
        self.initial_epochs = int(initial_epochs)
        self.eta = int(eta)
        self.max_rungs = int(max_rungs)
        self.checkpoint_prefix = checkpoint_prefix
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.rung = 0
        self._queue: list[Trial] = []
        self._outstanding = 0
        self._rung_results: list[TrialResult] = []
        self._seed_rung()

    # ------------------------------------------------------------------
    # rung management
    # ------------------------------------------------------------------

    def _rung_budget(self, rung: int) -> int:
        return self.initial_epochs * self.eta**rung

    def checkpoint_key(self, trial_id: int) -> str:
        return f"{self.checkpoint_prefix}/trial/{trial_id}"

    def _seed_rung(self) -> None:
        budget = self._rung_budget(0)
        for _ in range(self.initial_trials):
            self._queue.append(
                Trial(params=self.space.sample(self._rng), max_epochs=budget)
            )

    def _advance_rung(self) -> None:
        """Promote the top 1/eta of the finished rung."""
        self.rung += 1
        survivors = sorted(
            self._rung_results, key=lambda r: -r.performance
        )[: max(len(self._rung_results) // self.eta, 1)]
        self._rung_results = []
        if self.rung >= self.max_rungs or len(survivors) == 0:
            return  # done: no more rungs
        budget = self._rung_budget(self.rung)
        for result in survivors:
            parent = result.trial
            self._queue.append(
                Trial(
                    params=dict(parent.params),
                    init_kind=InitKind.WARM_START,
                    init_key=self.checkpoint_key(parent.trial_id),
                    max_epochs=budget,
                )
            )

    @property
    def finished(self) -> bool:
        return (
            not self._queue and self._outstanding == 0 and self.rung >= self.max_rungs
        )

    # ------------------------------------------------------------------
    # advisor interface
    # ------------------------------------------------------------------

    def propose_trial(self, worker: str) -> Trial | None:
        """Next trial, or None when the rung barrier (or the end) holds."""
        if self._queue:
            self._outstanding += 1
            return self._queue.pop(0)
        return None

    def propose(self, worker: str):  # pragma: no cover - interface shim
        trial = self.propose_trial(worker)
        return trial.params if trial is not None else None

    def collect(self, result: TrialResult) -> None:
        super().collect(result)
        self._outstanding -= 1
        self._rung_results.append(result)
        if self._outstanding == 0 and not self._queue:
            self._advance_rung()


class HalvingMaster(StudyMaster):
    """A master that speaks the successive-halving protocol.

    Differences from Algorithm 1: trials come pre-built from the
    advisor (with budgets and continuation keys); every finished trial
    is checkpointed under its own key so rung survivors can resume; a
    worker that asks while the rung barrier holds is parked and woken
    when the next rung opens.
    """

    workers_early_stop_locally = False  # rungs control the budget exactly

    def __init__(self, study_name: str, conf: HyperConf,
                 advisor: SuccessiveHalvingAdvisor, param_server: ParameterServer,
                 best_key: str | None = None, clock=None):
        super().__init__(study_name, conf, advisor, param_server, best_key, clock)
        self._parked: list[str] = []

    def _on_request(self, message):
        worker = message.sender
        advisor: SuccessiveHalvingAdvisor = self.advisor  # type: ignore[assignment]
        if advisor.finished or not self.conf.should_continue(
            self.num_finished, self.total_epochs
        ):
            self.done = True
            return [(worker, Message(MessageType.SHUTDOWN, self.study_name))]
        trial = advisor.propose_trial(worker)
        if trial is None:
            # rung barrier: park the worker until results free the rung
            if worker not in self._parked:
                self._parked.append(worker)
            return []
        return [(worker, Message(MessageType.TRIAL, self.study_name, {"trial": trial}))]

    def _on_finish(self, message):
        result = TrialResult(
            trial=message.payload["trial"],
            performance=float(message.payload["p"]),
            epochs=int(message.payload["epochs"]),
            worker=message.sender,
        )
        advisor: SuccessiveHalvingAdvisor = self.advisor  # type: ignore[assignment]
        self.advisor.collect(result)
        self.num_finished += 1
        self.total_epochs += result.epochs
        self._record(result)
        replies = [
            (
                message.sender,
                Message(
                    MessageType.PUT,
                    self.study_name,
                    {
                        "key": advisor.checkpoint_key(result.trial.trial_id),
                        "performance": result.performance,
                    },
                ),
            )
        ]
        if self.advisor.is_best(message.sender):
            replies.append(
                (
                    message.sender,
                    Message(MessageType.PUT, self.study_name,
                            {"key": self.best_key, "performance": result.performance}),
                )
            )
        # wake parked workers: the finish may have opened the next rung
        parked, self._parked = self._parked, []
        for worker in parked:
            self.mailbox.send(Message(MessageType.REQUEST, worker))
        return replies


def halving_conf(advisor: SuccessiveHalvingAdvisor,
                 early_stop_patience: int = 10_000) -> HyperConf:
    """A HyperConf sized to the advisor's total trial count.

    Successive halving controls budgets itself, so the per-trial epoch
    cap is effectively disabled and early stopping is left to the rungs.
    """
    total = 0
    count = advisor.initial_trials
    for _ in range(advisor.max_rungs):
        total += count
        count = max(count // advisor.eta, 1)
    max_epochs = advisor.initial_epochs * advisor.eta ** (advisor.max_rungs + 1)
    return HyperConf(
        max_trials=total,
        max_epochs_per_trial=max(max_epochs, 1),
        early_stop_patience=early_stop_patience,
    )

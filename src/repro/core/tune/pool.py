"""Persistent worker pool with shared-memory IPC for trial execution.

:class:`~repro.core.tune.parallel.ParallelTrialExecutor` (the first
cut at multi-core studies) spawns a fresh process pool per study and
pickles the entire dataset into every child; ``BENCH_perf.json``
showed that on small studies those fixed costs *exceed* the
parallelism win.  Following Ray Tune's long-lived-executor design,
this module keeps the processes and moves the bytes out of the pipe:

* :class:`TrialPool` owns N **long-lived** child processes that
  survive across trials *and across studies* — create one, run any
  number of studies through it, shut it down once.  Workers cache the
  rebuilt :class:`RealTrainer` per study spec (and, being long-lived,
  keep the process-level im2col/col2im index memos warm between
  trials).
* Datasets and warm-start/parameter state tensors travel through
  ``multiprocessing.shared_memory`` as :class:`~repro.utils.shm.ShmTensor`
  handles — children map **zero-copy read-only views**; only scalars
  and tiny arrays are ever pickled (``shm_min_bytes`` is the cut-off).
* Children free-run whole trials and stream epoch records back in
  **batches** (``epoch_batch`` records per message) instead of one
  queue message per epoch.
* Fault tolerance matches the chaos layer's contract: an exception in
  a child (e.g. an injected ``tune.pool.trial`` fault) or a **dead
  worker process** re-issues the in-flight trial to a fresh pool
  member; the deterministic re-run's replayed epochs are discarded, so
  the parent session continues exactly where the crash interrupted it.
  Dead workers are replaced to keep the pool at full strength.

Determinism is inherited from the sessions being pure functions of
``(trial, init_state)``: for a fixed seed, a study run through
:class:`PoolTrialExecutor` is bit-for-bit identical to
:func:`~repro.core.tune.runner.run_study` — same trial seeds, same
early-stop epochs, same :class:`StudyReport`.

Telemetry (parent-side): pool size, queue depth, task latency,
worker restarts, and IPC bytes split into pickled-vs-shared-memory.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import chaos, telemetry
from repro.core.tune.backends import RealTrainer
from repro.core.tune.config import HyperConf
from repro.core.tune.early_stopping import EarlyStopper
from repro.core.tune.trial import Trial
from repro.data.datasets import ImageDataset
from repro.exceptions import ConfigurationError
from repro.utils.shm import ShmArena, ShmTensor

__all__ = ["TrialPool", "PoolTrialExecutor"]

#: task-latency histogram buckets (real seconds).
TASK_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


# ----------------------------------------------------------------------
# what crosses the pipe
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ShmDataset:
    """An :class:`ImageDataset` as shared-memory handles."""

    name: str
    num_classes: int
    tensors: tuple[tuple[str, ShmTensor], ...]  # field -> handle

    def materialise(self, arena: ShmArena) -> ImageDataset:
        views = {key: arena.view(handle) for key, handle in self.tensors}
        return ImageDataset(name=self.name, num_classes=self.num_classes, **views)

    def handles(self) -> list[ShmTensor]:
        return [handle for _, handle in self.tensors]


@dataclass(frozen=True)
class _PoolSpec:
    """Everything a worker needs to rebuild a study's trainer.

    Carried on every job (it is a few hundred bytes — the dataset is
    handles, not data); workers cache the built trainer keyed by
    :attr:`fingerprint`, so repeat jobs and follow-up studies over the
    same dataset skip the rebuild entirely.
    """

    dataset: _ShmDataset
    builder: Any
    batch_size: int
    seconds_per_epoch: float
    use_augmentation: bool
    arch_knobs: tuple[str, ...]
    seed: int
    local_early_stop: bool
    patience: int
    min_delta: float

    @property
    def fingerprint(self) -> tuple:
        return (
            tuple(handle.name for _, handle in self.dataset.tensors),
            getattr(self.builder, "__module__", ""),
            getattr(self.builder, "__qualname__", repr(self.builder)),
            self.batch_size,
            self.seconds_per_epoch,
            self.use_augmentation,
            self.arch_knobs,
            self.seed,
        )


def _pack_state(
    state: dict[str, np.ndarray], arena: ShmArena, shm_min_bytes: int
) -> tuple[dict[str, Any], int, int]:
    """State dict -> payload of ShmTensor handles (big) / arrays (tiny).

    Returns ``(payload, shm_bytes, pickled_bytes_estimate)``.
    """
    payload: dict[str, Any] = {}
    shm_bytes = 0
    small_bytes = 0
    for key, array in state.items():
        if array.nbytes >= shm_min_bytes:
            payload[key] = arena.publish(array)
            shm_bytes += array.nbytes
        else:
            payload[key] = np.array(array)  # detach from live buffers
            small_bytes += array.nbytes
    return payload, shm_bytes, small_bytes


def _unpack_state(payload: dict[str, Any] | None, arena: ShmArena) -> dict[str, np.ndarray] | None:
    """Adopt a *worker-published* state dict, copying out of (and
    unlinking) its segments.

    The single ``memcpy`` here is what lets parameter views be handed
    to the parameter server with no segment-lifetime strings attached;
    the bytes still never transited a pickle pipe.  Only for payloads
    whose segments this side is meant to own afterwards — for
    parent-owned init state a worker must use :func:`_copy_state`.
    """
    if payload is None:
        return None
    state: dict[str, np.ndarray] = {}
    for key, value in payload.items():
        if isinstance(value, ShmTensor):
            state[key] = np.array(arena.adopt(value))
            arena.release(value)
        else:
            state[key] = value
    return state


def _copy_state(payload: dict[str, Any] | None, arena: ShmArena) -> dict[str, np.ndarray] | None:
    """Materialise a packed state dict *without* taking ownership.

    Used by workers for init-state payloads: the segments stay linked
    and parent-owned, so a crashed trial can be re-dispatched with the
    very same handles and the replacement worker attaches them again.
    The parent unlinks via ``_release_init`` once the trial completes.
    """
    if payload is None:
        return None
    state: dict[str, np.ndarray] = {}
    for key, value in payload.items():
        if isinstance(value, ShmTensor):
            state[key] = np.array(arena.view(value))
            arena.release(value)  # drops the mapping; no unlink (not owned)
        else:
            state[key] = value
    return state


def _discard_state(payload: dict[str, Any] | None, arena: ShmArena) -> None:
    """Free the shm segments of a payload nobody will consume."""
    if payload is None:
        return
    for value in payload.values():
        if isinstance(value, ShmTensor):
            arena.adopt(value)
            arena.release(value)


# ----------------------------------------------------------------------
# the worker body
# ----------------------------------------------------------------------


def _pool_worker(
    worker_id: int,
    prefix: str,
    task_queue,
    result_queue,
    epoch_batch: int,
    shm_min_bytes: int,
) -> None:
    """Long-lived child: rebuild trainers lazily, run trials forever.

    Messages out (all tagged with ``worker_id`` and the job's
    ``generation``): ``claim`` when a job is picked up, ``batch`` with
    up to ``epoch_batch`` epoch records, ``done`` with the final state,
    ``error`` with the exception repr.
    """
    arena = ShmArena(prefix=prefix)
    clock = telemetry.get_clock()
    trainers: dict[tuple, tuple[RealTrainer, _ShmDataset]] = {}

    def trainer_for(spec: _PoolSpec) -> RealTrainer:
        cached = trainers.get(spec.fingerprint)
        if cached is not None:
            return cached[0]
        if len(trainers) >= 4:  # keep the worker's footprint bounded
            _, old_dataset = trainers.pop(next(iter(trainers)))
            for handle in old_dataset.handles():
                arena.release(handle)
        dataset = spec.dataset.materialise(arena)
        trainer = RealTrainer(
            dataset=dataset,
            builder=spec.builder,
            batch_size=spec.batch_size,
            seconds_per_epoch=spec.seconds_per_epoch,
            use_augmentation=spec.use_augmentation,
            arch_knobs=spec.arch_knobs,
            seed=spec.seed,
        )
        trainers[spec.fingerprint] = (trainer, spec.dataset)
        return trainer

    try:
        while True:
            job = task_queue.get()
            if job is None:
                return
            spec, trial, init_payload, epoch_cap, snapshot, generation = job
            result_queue.put(("claim", worker_id, generation, trial.trial_id))
            started = clock.now()
            try:
                trainer = trainer_for(spec)
                init_state = _copy_state(init_payload, arena)
                session = trainer.start(trial, init_state)
                stopper = (
                    EarlyStopper(patience=spec.patience, min_delta=spec.min_delta)
                    if spec.local_early_stop
                    else None
                )
                batch: list[tuple[float, dict | None]] = []
                shm_bytes = 0

                def flush() -> None:
                    nonlocal batch, shm_bytes
                    if batch:
                        result_queue.put(
                            ("batch", worker_id, generation, trial.trial_id,
                             batch, shm_bytes)
                        )
                        batch, shm_bytes = [], 0

                for _ in range(epoch_cap):
                    chaos.fire("tune.pool.trial")
                    accuracy = session.run_epoch()
                    state_payload = None
                    if snapshot:
                        state_payload, nbytes, _ = _pack_state(
                            session.state_dict(), arena, shm_min_bytes
                        )
                        shm_bytes += nbytes
                    batch.append((float(accuracy), state_payload))
                    if len(batch) >= epoch_batch:
                        flush()
                    if stopper is not None and stopper.update(accuracy):
                        break
                flush()
                final_payload, final_shm, _ = _pack_state(
                    session.state_dict(), arena, shm_min_bytes
                )
                result_queue.put(
                    ("done", worker_id, generation, trial.trial_id,
                     final_payload, final_shm, clock.now() - started)
                )
            except Exception as exc:  # surfaced (and maybe retried) in the parent
                result_queue.put(
                    ("error", worker_id, generation, trial.trial_id, repr(exc))
                )
    finally:
        arena.close()  # detach dataset views; segments stay parent-owned


# ----------------------------------------------------------------------
# parent-side bookkeeping
# ----------------------------------------------------------------------


@dataclass
class _TrialState:
    """Demultiplexer state for one trial id."""

    generation: int = 0
    job: tuple | None = None
    records: deque = field(default_factory=deque)
    consumed: int = 0  # records the session has popped this submission
    skip: int = 0  # replayed records to discard after a resubmission
    crashes: int = 0
    claimed_by: int | None = None
    final_state: dict[str, np.ndarray] | None = None
    init_handles: list[ShmTensor] = field(default_factory=list)


class TrialPool:
    """A pool of long-lived trial-training processes.

    Use as a context manager (or call :meth:`shutdown`).  One pool can
    serve many studies — sequentially or interleaved — via
    :class:`PoolTrialExecutor` instances bound to it; keeping the pool
    open across studies is what ``--pool-reuse`` exposes on the CLI.
    """

    #: seconds without any worker record before the pool is declared dead.
    RESULT_TIMEOUT = 600.0
    #: queue-poll interval; also the dead-worker detection latency.
    POLL_SECONDS = 0.2

    def __init__(
        self,
        processes: int | None = None,
        mp_context: str | None = None,
        epoch_batch: int = 8,
        trial_retries: int = 2,
        shm_min_bytes: int = 4096,
    ):
        self.processes = int(processes) if processes else (os.cpu_count() or 1)
        if self.processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self.epoch_batch = max(1, int(epoch_batch))
        self.trial_retries = int(trial_retries)
        self.shm_min_bytes = int(shm_min_bytes)
        self.arena = ShmArena()
        self._procs: dict[int, multiprocessing.Process] = {}
        self._task_queue = None
        self._result_queue = None
        self._trials: dict[int, _TrialState] = {}
        self._queue_depth = 0
        self._worker_ids = iter(range(1, 1 << 30))
        #: strong refs keep ``id(dataset)`` cache keys valid.
        self._dataset_cache: dict[int, tuple[ImageDataset, _ShmDataset]] = {}
        self.worker_restarts = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._procs)

    def _spawn_worker(self) -> None:
        worker_id = next(self._worker_ids)
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(worker_id, self.arena.prefix, self._task_queue,
                  self._result_queue, self.epoch_batch, self.shm_min_bytes),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def start(self) -> "TrialPool":
        if self._procs:
            return self
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        for _ in range(self.processes):
            self._spawn_worker()
        self._registry().gauge(
            "repro_tune_pool_workers", "Live processes in the persistent trial pool."
        ).set(len(self._procs))
        return self

    def shutdown(self) -> None:
        """Stop every worker and free all shared memory (idempotent)."""
        if self._procs:
            for _ in self._procs:
                try:
                    self._task_queue.put(None)
                except (OSError, ValueError):
                    break
            for proc in self._procs.values():
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            self._procs.clear()
            self._registry().gauge(
                "repro_tune_pool_workers",
                "Live processes in the persistent trial pool.",
            ).set(0)
        for queue in (self._task_queue, self._result_queue):
            if queue is not None:
                queue.cancel_join_thread()
                queue.close()
        self._task_queue = None
        self._result_queue = None
        self._trials.clear()
        self._dataset_cache.clear()
        self._queue_depth = 0
        self.arena.close()
        self.arena.sweep()  # collect segments published by dead workers

    def __enter__(self) -> "TrialPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- dataset + spec plumbing ---------------------------------------

    def share_dataset(self, dataset: ImageDataset) -> _ShmDataset:
        """Copy a dataset into shared memory once; reuse across studies."""
        cached = self._dataset_cache.get(id(dataset))
        if cached is not None:
            return cached[1]
        tensors = tuple(
            (key, self.arena.share(np.ascontiguousarray(array)))
            for key, array in (
                ("train_x", dataset.train_x), ("train_y", dataset.train_y),
                ("val_x", dataset.val_x), ("val_y", dataset.val_y),
                ("test_x", dataset.test_x), ("test_y", dataset.test_y),
            )
        )
        shared = _ShmDataset(dataset.name, dataset.num_classes, tensors)
        self._dataset_cache[id(dataset)] = (dataset, shared)
        self._count_bytes("shm", "to_worker",
                          sum(h.nbytes for _, h in tensors))
        return shared

    def executor(
        self,
        trainer: RealTrainer,
        conf: HyperConf,
        local_early_stop: bool = True,
        snapshot_states: bool = False,
    ) -> "PoolTrialExecutor":
        return PoolTrialExecutor(
            trainer, conf, pool=self,
            local_early_stop=local_early_stop, snapshot_states=snapshot_states,
        )

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: _PoolSpec,
        trial: Trial,
        init_state: dict[str, np.ndarray] | None,
        epoch_cap: int,
        snapshot: bool,
    ) -> None:
        self.start()
        state = self._trials.get(trial.trial_id)
        if state is None or state.job is None:
            # fresh trial (or a finished id being rerun — new generation)
            generation = state.generation + 1 if state is not None else 0
            state = _TrialState(generation=generation)
            self._trials[trial.trial_id] = state
        else:
            # the parent restarted an in-flight trial (e.g. a parent-side
            # injected fault): discard the old run's stream entirely.
            state.generation += 1
            state.records.clear()
            state.consumed = 0
            state.skip = 0
            state.claimed_by = None
            self._release_init(state)
        init_payload = None
        if init_state:
            init_payload = {}
            for key, array in init_state.items():
                if array.nbytes >= self.shm_min_bytes:
                    handle = self.arena.share(array)
                    state.init_handles.append(handle)
                    init_payload[key] = handle
                    self._count_bytes("shm", "to_worker", array.nbytes)
                else:
                    init_payload[key] = np.array(array)
        job = (spec, trial, init_payload, int(epoch_cap), bool(snapshot),
               state.generation)
        state.job = job
        self._dispatch(job, outcome="dispatched")

    def _dispatch(self, job: tuple, outcome: str) -> None:
        self._count_bytes("pickled", "to_worker", len(pickle.dumps(job)))
        self._task_queue.put(job)
        self._queue_depth += 1
        registry = self._registry()
        registry.counter(
            "repro_tune_pool_tasks_total", "Jobs shipped to the pool, by outcome."
        ).inc(outcome=outcome)
        registry.gauge(
            "repro_tune_pool_queue_depth", "Jobs enqueued but not yet claimed."
        ).set(self._queue_depth)

    # -- demultiplexing ------------------------------------------------

    def _pump(self) -> None:
        """Route one worker record; restart dead workers while waiting."""
        deadline = time.monotonic() + self.RESULT_TIMEOUT
        while True:
            try:
                record = self._result_queue.get(timeout=self.POLL_SECONDS)
                break
            except queue_mod.Empty:
                self._reap_dead_workers()
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"no trial results for {self.RESULT_TIMEOUT:.0f}s "
                        f"({len(self._procs)} workers live)"
                    ) from None
        kind = record[0]
        self._registry().counter(
            "repro_tune_pool_records_total", "Records received from workers, by kind."
        ).inc(kind=kind)
        self._count_bytes("pickled", "from_worker", len(pickle.dumps(record)))
        handler = getattr(self, f"_on_{kind}")
        handler(*record[1:])

    def _on_claim(self, worker_id: int, generation: int, trial_id: int) -> None:
        self._queue_depth = max(0, self._queue_depth - 1)
        self._registry().gauge(
            "repro_tune_pool_queue_depth", "Jobs enqueued but not yet claimed."
        ).set(self._queue_depth)
        state = self._trials.get(trial_id)
        if state is not None and state.generation == generation:
            state.claimed_by = worker_id

    def _on_batch(
        self, worker_id: int, generation: int, trial_id: int,
        records: list, shm_bytes: int,
    ) -> None:
        state = self._trials.get(trial_id)
        if state is None or state.generation != generation:
            for _, payload in records:  # stale stream: free its segments
                _discard_state(payload, self.arena)
            return
        self._count_bytes("shm", "from_worker", shm_bytes)
        for accuracy, payload in records:
            if state.skip > 0:  # replayed epoch of a resubmitted trial
                state.skip -= 1
                _discard_state(payload, self.arena)
                continue
            state.records.append((accuracy, _unpack_state(payload, self.arena)))

    def _on_done(
        self, worker_id: int, generation: int, trial_id: int,
        payload: dict, shm_bytes: int, seconds: float,
    ) -> None:
        state = self._trials.get(trial_id)
        if state is None or state.generation != generation:
            _discard_state(payload, self.arena)
            return
        self._count_bytes("shm", "from_worker", shm_bytes)
        state.final_state = _unpack_state(payload, self.arena)
        state.job = None
        state.claimed_by = None
        self._release_init(state)
        self._registry().histogram(
            "repro_tune_pool_task_seconds",
            "Real seconds a worker spent on one trial.",
            buckets=TASK_SECONDS_BUCKETS,
        ).observe(seconds)

    def _on_error(
        self, worker_id: int, generation: int, trial_id: int, detail: str
    ) -> None:
        state = self._trials.get(trial_id)
        if state is not None and state.generation != generation:
            return  # a restarted run already superseded this one
        self._resubmit(trial_id, detail)

    def _resubmit(self, trial_id: int, detail: str) -> None:
        """Re-issue a crashed in-flight trial, or surface the failure.

        The re-run is bit-identical, so the fresh worker replays every
        epoch from scratch; ``skip`` is set to the *cumulative* number
        of records the session has consumed this submission (not just
        since the last crash — a trial can crash more than once, and a
        crash can land while an earlier replay is still being skipped),
        so exactly the already-delivered epochs are discarded and no
        duplicates reach the session.  The generation bump makes any
        record from the failed run still sitting in the OS pipe fail
        the stale-generation check instead of eating ``skip`` slots.
        """
        state = self._trials.get(trial_id)
        exhausted = state is None or state.job is None
        if state is not None:
            state.crashes += 1
            exhausted = exhausted or state.crashes > self.trial_retries
        self._registry().counter(
            "repro_tune_pool_trial_errors_total",
            "Worker-side trial failures, by outcome.",
        ).inc(outcome="raised" if exhausted else "resubmitted")
        if exhausted:
            raise RuntimeError(f"trial {trial_id} failed in worker: {detail}")
        state.generation += 1
        state.records.clear()  # unconsumed buffers will be replayed
        state.skip = state.consumed
        state.claimed_by = None
        state.job = state.job[:-1] + (state.generation,)
        self._dispatch(state.job, outcome="resubmitted")

    def _reap_dead_workers(self) -> None:
        """Replace dead processes; re-issue the trials they had claimed."""
        dead = [wid for wid, proc in self._procs.items() if not proc.is_alive()]
        for worker_id in dead:
            self._procs.pop(worker_id)
            self.worker_restarts += 1
            self._spawn_worker()
            registry = self._registry()
            registry.counter(
                "repro_tune_pool_worker_restarts_total",
                "Pool workers found dead and replaced.",
            ).inc()
            registry.gauge(
                "repro_tune_pool_workers",
                "Live processes in the persistent trial pool.",
            ).set(len(self._procs))
            for trial_id, state in list(self._trials.items()):
                if state.claimed_by == worker_id and state.job is not None:
                    self._resubmit(trial_id, f"worker {worker_id} died")

    # -- executor-facing waits -----------------------------------------

    def await_epoch(self, trial_id: int) -> tuple[float, dict | None]:
        state = self._trials.setdefault(trial_id, _TrialState())
        while not state.records:
            self._pump()
        state.consumed += 1  # delivered epochs: skipped on any replay
        return state.records.popleft()

    def await_done(self, trial_id: int) -> dict[str, np.ndarray]:
        state = self._trials.setdefault(trial_id, _TrialState())
        while state.final_state is None:
            self._pump()
        return state.final_state

    def drain(self) -> None:
        """Consume every outstanding record (end-of-study barrier).

        Workers free-run their trials to completion, so waiting for the
        remaining ``done`` records (and then dropping the per-trial
        buffers) leaves the pool spotless for the next study — which
        may legitimately reuse the same trial ids.
        """
        while any(s.job is not None for s in self._trials.values()):
            self._pump()
        self._trials.clear()

    # -- helpers -------------------------------------------------------

    def _release_init(self, state: _TrialState) -> None:
        for handle in state.init_handles:
            self.arena.release(handle)
        state.init_handles.clear()

    @staticmethod
    def _registry():
        return telemetry.get_registry()

    def _count_bytes(self, transport: str, direction: str, nbytes: int) -> None:
        self._registry().counter(
            "repro_tune_pool_ipc_bytes_total",
            "IPC payload bytes moved, by transport (pickled/shm) and direction.",
        ).inc(nbytes, transport=transport, direction=direction)


class _PoolSession:
    """Session proxy replaying records streamed from pool workers."""

    def __init__(self, pool: TrialPool, trial: Trial):
        self._pool = pool
        self._trial_id = trial.trial_id
        self._epochs = 0
        self._best = 0.0
        self._state: dict[str, np.ndarray] | None = None

    def run_epoch(self) -> float:
        accuracy, state = self._pool.await_epoch(self._trial_id)
        self._epochs += 1
        if state is not None:
            self._state = state
        self._best = max(self._best, accuracy)
        return accuracy

    def state_dict(self) -> dict[str, np.ndarray]:
        if self._state is not None:
            return self._state
        # Snapshots off: the worker applies the same local early-stop
        # rule, so its final state is exactly the parent's stop point.
        return self._pool.await_done(self._trial_id)

    @property
    def epochs(self) -> int:
        return self._epochs

    @property
    def best_performance(self) -> float:
        return self._best


class PoolTrialExecutor:
    """A :class:`TrainerBackend` running trials on a :class:`TrialPool`.

    Binds one study's :class:`RealTrainer` configuration to a pool
    (owned or shared): the dataset is pushed to shared memory once, and
    every ``start()`` becomes a tiny queue message.  When constructed
    without an explicit pool it creates one sized ``processes`` and
    owns its lifecycle; pass ``pool=`` to reuse workers across studies.
    """

    def __init__(
        self,
        trainer: RealTrainer,
        conf: HyperConf,
        pool: TrialPool | None = None,
        processes: int | None = None,
        local_early_stop: bool = True,
        snapshot_states: bool = False,
    ):
        if not isinstance(trainer, RealTrainer):
            raise ConfigurationError(
                f"PoolTrialExecutor wraps a RealTrainer, got {type(trainer).__name__}"
            )
        self.trainer = trainer
        self.conf = conf
        self.pool = pool if pool is not None else TrialPool(processes=processes)
        self.owns_pool = pool is None
        self.local_early_stop = bool(local_early_stop)
        self.snapshot_states = bool(snapshot_states)
        self._spec: _PoolSpec | None = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "PoolTrialExecutor":
        self.pool.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish_study(drain=exc_info[0] is None)

    def finish_study(self, drain: bool = True) -> None:
        """End-of-study hook: drain records; shut down an owned pool."""
        if self.pool.running and drain:
            self.pool.drain()
        if self.owns_pool:
            self.pool.shutdown()

    def shutdown(self) -> None:
        self.pool.shutdown()

    # -- TrainerBackend protocol ---------------------------------------

    def _build_spec(self) -> _PoolSpec:
        if self._spec is None:
            self._spec = _PoolSpec(
                dataset=self.pool.share_dataset(self.trainer.dataset),
                builder=self.trainer.builder,
                batch_size=self.trainer.batch_size,
                seconds_per_epoch=self.trainer.seconds_per_epoch,
                use_augmentation=self.trainer.use_augmentation,
                arch_knobs=self.trainer.arch_knobs,
                seed=self.trainer.seed,
                local_early_stop=self.local_early_stop,
                patience=self.conf.early_stop_patience,
                min_delta=self.conf.early_stop_min_delta,
            )
        return self._spec

    def start(
        self, trial: Trial, init_state: dict[str, np.ndarray] | None
    ) -> _PoolSession:
        self.pool.start()
        epoch_cap = (
            trial.max_epochs
            if trial.max_epochs is not None
            else self.conf.max_epochs_per_trial
        )
        self.pool.submit(
            self._build_spec(), trial, init_state, epoch_cap, self.snapshot_states
        )
        return _PoolSession(self.pool, trial)

    def epoch_cost(self, trial: Trial) -> float:
        return self.trainer.epoch_cost(trial)

"""Early stopping on a plateauing validation metric.

The paper stops a trial when its metric "is not decreasing for 5
consecutive epochs"; here the tracked metric is validation accuracy, so
the stopper fires after ``patience`` epochs without an improvement of
at least ``min_delta``.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["EarlyStopper"]


class EarlyStopper:
    """Patience-based plateau detector (higher metric = better)."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-3):
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = float("-inf")
        self.stale_epochs = 0

    def update(self, metric: float) -> bool:
        """Record one epoch's metric; return True when training should stop."""
        if metric > self.best + self.min_delta:
            self.best = metric
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        return self.stale_epochs >= self.patience

    def reset(self) -> None:
        self.best = float("-inf")
        self.stale_epochs = 0

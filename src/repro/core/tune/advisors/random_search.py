"""Random search (Bergstra & Bengio, 2012)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.hyperspace import HyperSpace

__all__ = ["RandomSearchAdvisor"]


class RandomSearchAdvisor(TrialAdvisor):
    """Draw every trial independently from the hyper-space."""

    def __init__(self, space: HyperSpace, rng: np.random.Generator | None = None,
                 max_proposals: int | None = None):
        super().__init__(space)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.max_proposals = max_proposals
        self._proposed = 0

    def propose(self, worker: str) -> dict[str, Any] | None:
        if self.max_proposals is not None and self._proposed >= self.max_proposals:
            return None
        self._proposed += 1
        return self.space.sample(self._rng)

"""The ``TrialAdvisor`` interface used by Algorithms 1 and 2."""

from __future__ import annotations

from typing import Any

from repro.core.tune.hyperspace import HyperSpace
from repro.core.tune.trial import TrialResult

__all__ = ["TrialAdvisor"]


class TrialAdvisor:
    """Proposes trials and digests their reported performance.

    Subclasses implement :meth:`propose`; the bookkeeping needed by the
    master loops (best-so-far tracking, per-worker last results) lives
    here.
    """

    def __init__(self, space: HyperSpace):
        self.space = space
        self.results: list[TrialResult] = []
        self._last_by_worker: dict[str, TrialResult] = {}
        self._best: TrialResult | None = None

    # ------------------------------------------------------------------
    # search algorithm hook
    # ------------------------------------------------------------------

    def propose(self, worker: str) -> dict[str, Any] | None:
        """Return the next trial's knob values, or ``None`` if exhausted."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Algorithm 1/2 interface
    # ------------------------------------------------------------------

    def next(self, worker: str) -> dict[str, Any] | None:
        """``adv.next(msg.worker)`` of Algorithm 1, line 5."""
        params = self.propose(worker)
        if params is not None:
            self.space.validate(params)
        return params

    def collect(self, result: TrialResult) -> None:
        """``adv.collect(...)``: record a finished/reported trial."""
        self.results.append(result)
        self._last_by_worker[result.worker] = result
        if self._best is None or result.performance > self._best.performance:
            self._best = result

    def is_best(self, worker: str) -> bool:
        """Did ``worker``'s most recent result set the best performance?"""
        last = self._last_by_worker.get(worker)
        return last is not None and last is self._best

    def best_trial(self) -> TrialResult | None:
        """``adv.best_trial()`` of Algorithm 1, line 20."""
        return self._best

    @property
    def best_performance(self) -> float:
        return self._best.performance if self._best is not None else 0.0

    @property
    def num_results(self) -> int:
        return len(self.results)

"""Gaussian-process Bayesian optimisation advisor.

Assumes the tuning objective follows a Gaussian process (Snoek et al.)
and proposes the candidate maximising expected improvement over a
random candidate pool. The first ``warmup`` proposals are random, which
bootstraps the posterior.

With several distributed workers the advisor is asked for new trials
before earlier proposals have reported back; a plain GP would then keep
proposing (near-)identical points. The *constant liar* heuristic
(Ginsbourger et al.) fits those pending points with a pessimistic fake
observation so concurrent proposals spread out.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.advisors.gp import GaussianProcess, expected_improvement
from repro.core.tune.hyperspace import HyperSpace
from repro.core.tune.trial import TrialResult

__all__ = ["BayesianAdvisor"]


class BayesianAdvisor(TrialAdvisor):
    """GP + expected-improvement search over the encoded knob space."""

    def __init__(
        self,
        space: HyperSpace,
        rng: np.random.Generator | None = None,
        warmup: int = 8,
        candidates: int = 500,
        length_scale: float = 0.2,
        noise_var: float = 5e-3,
        max_proposals: int | None = None,
        constant_liar: bool = True,
    ):
        super().__init__(space)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.warmup = int(warmup)
        self.candidates = int(candidates)
        self.length_scale = float(length_scale)
        self.noise_var = float(noise_var)
        self.max_proposals = max_proposals
        self.constant_liar = bool(constant_liar)
        self._proposed = 0
        self._observed_x: list[np.ndarray] = []
        self._observed_y: list[float] = []
        #: proposals awaiting results, keyed by their encoded point.
        self._pending: dict[tuple, np.ndarray] = {}

    def collect(self, result: TrialResult) -> None:
        super().collect(result)
        point = self.space.encode(result.trial.params)
        # Retire the matching pending proposal (decode/encode round-trips
        # can shift a point slightly, so match by distance).
        for key, pending in list(self._pending.items()):
            if np.max(np.abs(pending - point)) < 1e-6:
                del self._pending[key]
                break
        self._observed_x.append(point)
        self._observed_y.append(result.performance)

    def propose(self, worker: str) -> dict[str, Any] | None:
        if self.max_proposals is not None and self._proposed >= self.max_proposals:
            return None
        self._proposed += 1
        if len(self._observed_y) < self.warmup:
            return self.space.sample(self._rng)
        xs = list(self._observed_x)
        ys = list(self._observed_y)
        if self.constant_liar and self._pending:
            # Lie pessimistically about in-flight proposals (the worst
            # observation so far) so the EI surface dips around them.
            lie = min(ys)
            for point in self._pending.values():
                xs.append(point)
                ys.append(lie)
        gp = GaussianProcess(length_scale=self.length_scale, noise_var=self.noise_var)
        gp.fit(np.vstack(xs), np.array(ys))
        pool = self._rng.random((self.candidates, self.space.dimensions))
        mean, std = gp.predict(pool)
        ei = expected_improvement(mean, std, best=max(self._observed_y))
        chosen = pool[int(np.argmax(ei))]
        self._pending[tuple(np.round(chosen, 12))] = chosen
        return self.space.decode(chosen)

"""Grid search over the cartesian knob grid."""

from __future__ import annotations

from typing import Any

from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.hyperspace import HyperSpace

__all__ = ["GridSearchAdvisor"]


class GridSearchAdvisor(TrialAdvisor):
    """Enumerate the grid once; proposes ``None`` when exhausted.

    The paper notes random search is usually more efficient; the grid
    advisor exists because the framework must be "extensible for
    popular hyper-parameter tuning algorithms" including grid search.
    """

    def __init__(self, space: HyperSpace, resolution: int = 3):
        super().__init__(space)
        self._grid = space.grid(resolution)
        self._cursor = 0

    @property
    def grid_size(self) -> int:
        return len(self._grid)

    def propose(self, worker: str) -> dict[str, Any] | None:
        if self._cursor >= len(self._grid):
            return None
        params = self._grid[self._cursor]
        self._cursor += 1
        return params

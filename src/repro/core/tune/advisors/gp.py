"""A from-scratch Gaussian-process regressor for Bayesian optimisation.

Squared-exponential (RBF) kernel with observation noise; hyper-priors
are fixed (length scale, signal variance) rather than marginal-
likelihood optimised, which is plenty for the low-dimensional knob
spaces of Section 7.1 and keeps the implementation dependency-free
beyond ``numpy``/``scipy``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.exceptions import ConfigurationError

__all__ = ["GaussianProcess", "expected_improvement"]


def _rbf(a: np.ndarray, b: np.ndarray, length_scale: float, signal_var: float) -> np.ndarray:
    sq_dist = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    return signal_var * np.exp(-0.5 * sq_dist / length_scale**2)


class GaussianProcess:
    """GP regression over the unit hypercube."""

    def __init__(self, length_scale: float = 0.2, signal_var: float = 1.0,
                 noise_var: float = 1e-4):
        if length_scale <= 0 or signal_var <= 0 or noise_var < 0:
            raise ConfigurationError("GP hyper-parameters must be positive")
        self.length_scale = float(length_scale)
        self.signal_var = float(signal_var)
        self.noise_var = float(noise_var)
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cho = None
        self._alpha: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit on observations (x in [0,1]^d, y arbitrary scale)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError(f"x/y length mismatch: {x.shape[0]} vs {y.shape[0]}")
        if x.shape[0] == 0:
            raise ConfigurationError("cannot fit a GP on zero observations")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        self._x = x
        k = _rbf(x, x, self.length_scale, self.signal_var)
        k[np.diag_indices_from(k)] += self.noise_var
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, y_norm)
        return self

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        if self._x is None or self._alpha is None or self._cho is None:
            raise ConfigurationError("GP is not fitted")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=np.float64))
        k_star = _rbf(x_new, self._x, self.length_scale, self.signal_var)
        mean = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        var = self.signal_var - np.einsum("ij,ji->i", k_star, v)
        var = np.maximum(var, 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """EI acquisition for maximisation."""
    improvement = mean - best - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)

"""Trial advisors: the pluggable hyper-parameter search algorithms.

``TrialAdvisor`` is the extension point of Algorithm 1/2; random
search, grid search and Gaussian-process Bayesian optimisation are
provided, matching the paper's claim of compatibility with all three.
"""

from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.advisors.bayesian import BayesianAdvisor
from repro.core.tune.advisors.grid_search import GridSearchAdvisor
from repro.core.tune.advisors.random_search import RandomSearchAdvisor

__all__ = ["TrialAdvisor", "RandomSearchAdvisor", "GridSearchAdvisor", "BayesianAdvisor"]

"""``Study`` — the distributed tuning master of Algorithm 1.

The master sits in an event loop over its mailbox: ``kRequest`` is
answered with the next trial from the :class:`TrialAdvisor` (or a
shutdown when the advisor is exhausted / the stop criterion holds),
``kReport`` collects per-epoch performance, and on ``kFinish`` the
worker whose trial set a new best is instructed to ``kPut`` its
parameters into the parameter server so the inference service can pick
them up instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.message import Mailbox, Message, MessageType
from repro.core.tune.advisors.base import TrialAdvisor
from repro.core.tune.config import HyperConf
from repro.core.tune.trial import InitKind, Trial, TrialResult
from repro.paramserver import ParameterServer

__all__ = ["StudyMaster", "StudyHistoryEntry", "StudyReport"]


@dataclass
class StudyHistoryEntry:
    """One finished trial in completion order (drives Figures 8/9/11)."""

    index: int
    performance: float
    epochs: int
    total_epochs: int
    best_so_far: float
    time: float = 0.0
    init_kind: str = InitKind.RANDOM.value


@dataclass
class StudyReport:
    """Outcome of a whole study."""

    study_name: str
    history: list[StudyHistoryEntry] = field(default_factory=list)
    results: list[TrialResult] = field(default_factory=list)
    total_epochs: int = 0
    wall_time: float = 0.0

    @property
    def best(self) -> TrialResult | None:
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.performance)

    @property
    def best_performance(self) -> float:
        best = self.best
        return best.performance if best is not None else 0.0

    def best_so_far_curve(self) -> list[tuple[int, float]]:
        """(total epochs, best validation accuracy) — Figure 8c/9c."""
        return [(entry.total_epochs, entry.best_so_far) for entry in self.history]


class StudyMaster:
    """Algorithm 1. Workers early-stop locally; the best trial's
    parameters are pushed to the parameter server on finish."""

    #: Study workers run their own early stopping.
    workers_early_stop_locally = True

    def __init__(
        self,
        study_name: str,
        conf: HyperConf,
        advisor: TrialAdvisor,
        param_server: ParameterServer,
        best_key: str | None = None,
        clock=None,
    ):
        self.study_name = study_name
        self.conf = conf
        self.advisor = advisor
        self.param_server = param_server
        self.best_key = best_key if best_key is not None else f"{study_name}/best"
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.mailbox = Mailbox(f"{study_name}/master")
        self.done = False
        self.num_finished = 0
        self.total_epochs = 0
        self.report = StudyReport(study_name=study_name)

    # ------------------------------------------------------------------
    # the event loop body
    # ------------------------------------------------------------------

    def step(self) -> list[tuple[str, Message]]:
        """Process all queued messages; return (worker, reply) pairs."""
        replies: list[tuple[str, Message]] = []
        while True:
            message = self.mailbox.receive()
            if message is None:
                return replies
            if message.type is MessageType.REQUEST:
                replies.extend(self._on_request(message))
            elif message.type is MessageType.REPORT:
                replies.extend(self._on_report(message))
            elif message.type is MessageType.FINISH:
                replies.extend(self._on_finish(message))

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_request(self, message: Message) -> list[tuple[str, Message]]:
        worker = message.sender
        if self.done or not self.conf.should_continue(self.num_finished, self.total_epochs):
            self.done = True
            return [(worker, Message(MessageType.SHUTDOWN, self.study_name))]
        params = self.advisor.next(worker)
        if params is None:
            self.done = True
            return [(worker, Message(MessageType.SHUTDOWN, self.study_name))]
        trial = self._make_trial(params)
        return [(worker, Message(MessageType.TRIAL, self.study_name, {"trial": trial}))]

    def _make_trial(self, params: dict) -> Trial:
        """Study always starts trials from random initialisation."""
        return Trial(params=params, init_kind=InitKind.RANDOM)

    def _on_report(self, message: Message) -> list[tuple[str, Message]]:
        """Per-epoch reports: Study needs no central action."""
        return []

    def _on_finish(self, message: Message) -> list[tuple[str, Message]]:
        result = TrialResult(
            trial=message.payload["trial"],
            performance=float(message.payload["p"]),
            epochs=int(message.payload["epochs"]),
            worker=message.sender,
        )
        self.advisor.collect(result)
        self.num_finished += 1
        self.total_epochs += result.epochs
        self._record(result)
        replies: list[tuple[str, Message]] = []
        if self.advisor.is_best(message.sender):
            replies.append(
                (
                    message.sender,
                    Message(
                        MessageType.PUT,
                        self.study_name,
                        {"key": self.best_key, "performance": result.performance},
                    ),
                )
            )
        if not self.conf.should_continue(self.num_finished, self.total_epochs):
            self.done = True
        return replies

    def _record(self, result: TrialResult) -> None:
        self.report.results.append(result)
        self.report.total_epochs = self.total_epochs
        self.report.history.append(
            StudyHistoryEntry(
                index=self.num_finished,
                performance=result.performance,
                epochs=result.epochs,
                total_epochs=self.total_epochs,
                best_so_far=self.advisor.best_performance,
                time=float(self._clock()),
                init_kind=result.trial.init_kind.value,
            )
        )

    def set_clock(self, clock) -> None:
        """Bind the master to a time source (the runner's simulator)."""
        self._clock = clock

    def finalize(self, wall_time: float) -> StudyReport:
        """Stamp the wall time and return the report (Algorithm 1 line 20)."""
        self.report.wall_time = wall_time
        return self.report

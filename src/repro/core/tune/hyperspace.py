"""The ``HyperSpace`` programming model (Section 4.2.1, Figure 4).

A hyper-parameter space is a set of named *knobs*:

* :meth:`HyperSpace.add_range_knob` — a numeric domain ``[min, max)``
  with dtype float or int;
* :meth:`HyperSpace.add_categorical_knob` — a finite candidate list.

Knobs may declare ``depends`` (other knobs whose values must be drawn
first) plus ``pre_hook``/``post_hook`` callables: the pre-hook can
adjust the domain given already-drawn values, the post-hook can adjust
the drawn value (the paper's example: a large initial learning rate
pushes the decay rate up). Sampling follows a topological order of the
dependency graph.

The space also provides a continuous encoding (every trial maps to a
point in the unit hypercube) used by the Bayesian-optimisation advisor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.exceptions import HyperSpaceError

__all__ = ["HyperSpace", "RangeKnob", "CategoricalKnob", "Knob"]

PreHook = Callable[[dict[str, Any], "Knob"], "Knob"]
PostHook = Callable[[dict[str, Any], Any], Any]


@dataclass(frozen=True)
class Knob:
    """Common knob attributes."""

    name: str
    dtype: str
    depends: tuple[str, ...] = ()
    pre_hook: PreHook | None = None
    post_hook: PostHook | None = None


@dataclass(frozen=True)
class RangeKnob(Knob):
    """A numeric knob over ``[min, max)``, optionally log-scaled."""

    min: float = 0.0
    max: float = 1.0
    log_scale: bool = False

    def sample(self, rng: np.random.Generator) -> Any:
        if self.log_scale:
            value = math.exp(rng.uniform(math.log(self.min), math.log(self.max)))
        else:
            value = rng.uniform(self.min, self.max)
        if self.dtype == "int":
            return int(value)
        return float(value)

    def encode(self, value: Any) -> float:
        """Map a value to [0, 1] for the continuous advisors."""
        if self.log_scale:
            lo, hi = math.log(self.min), math.log(self.max)
            return (math.log(max(float(value), self.min)) - lo) / (hi - lo)
        return (float(value) - self.min) / (self.max - self.min)

    def decode(self, unit: float) -> Any:
        unit = min(max(unit, 0.0), 1.0 - 1e-12)
        if self.log_scale:
            lo, hi = math.log(self.min), math.log(self.max)
            value = math.exp(lo + unit * (hi - lo))
        else:
            value = self.min + unit * (self.max - self.min)
        if self.dtype == "int":
            return int(value)
        return float(value)

    def grid(self, resolution: int) -> list[Any]:
        points = [self.decode((i + 0.5) / resolution) for i in range(resolution)]
        if self.dtype == "int":
            deduped = sorted(set(points))
            return deduped
        return points


@dataclass(frozen=True)
class CategoricalKnob(Knob):
    """A knob over a finite candidate list."""

    candidates: tuple[Any, ...] = ()

    def sample(self, rng: np.random.Generator) -> Any:
        return self.candidates[int(rng.integers(0, len(self.candidates)))]

    def encode(self, value: Any) -> float:
        try:
            index = self.candidates.index(value)
        except ValueError as exc:
            raise HyperSpaceError(f"{value!r} is not a candidate of {self.name!r}") from exc
        return (index + 0.5) / len(self.candidates)

    def decode(self, unit: float) -> Any:
        unit = min(max(unit, 0.0), 1.0 - 1e-12)
        return self.candidates[int(unit * len(self.candidates))]

    def grid(self, resolution: int) -> list[Any]:
        return list(self.candidates)


@dataclass
class HyperSpace:
    """A named collection of knobs with dependency-aware sampling."""

    knobs: dict[str, Knob] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # definition API (Figure 4)
    # ------------------------------------------------------------------

    def add_range_knob(
        self,
        name: str,
        dtype: str,
        min: float,
        max: float,
        depends: Sequence[str] | None = None,
        pre_hook: PreHook | None = None,
        post_hook: PostHook | None = None,
        log_scale: bool = False,
    ) -> "HyperSpace":
        """Declare a numeric knob over ``[min, max)``."""
        self._check_new_name(name)
        if dtype not in ("float", "int"):
            raise HyperSpaceError(f"range knob dtype must be float or int, got {dtype!r}")
        if not max > min:
            raise HyperSpaceError(f"knob {name!r}: max ({max}) must exceed min ({min})")
        if log_scale and min <= 0:
            raise HyperSpaceError(f"knob {name!r}: log_scale requires min > 0")
        self.knobs[name] = RangeKnob(
            name=name,
            dtype=dtype,
            min=float(min),
            max=float(max),
            depends=tuple(depends or ()),
            pre_hook=pre_hook,
            post_hook=post_hook,
            log_scale=log_scale,
        )
        self._check_dependencies()
        return self

    def add_categorical_knob(
        self,
        name: str,
        dtype: str,
        candidates: Sequence[Any],
        depends: Sequence[str] | None = None,
        pre_hook: PreHook | None = None,
        post_hook: PostHook | None = None,
    ) -> "HyperSpace":
        """Declare a categorical knob over ``candidates``."""
        self._check_new_name(name)
        if not candidates:
            raise HyperSpaceError(f"knob {name!r}: empty candidate list")
        self.knobs[name] = CategoricalKnob(
            name=name,
            dtype=dtype,
            candidates=tuple(candidates),
            depends=tuple(depends or ()),
            pre_hook=pre_hook,
            post_hook=post_hook,
        )
        self._check_dependencies()
        return self

    def _check_new_name(self, name: str) -> None:
        if not name:
            raise HyperSpaceError("knob name must be non-empty")
        if name in self.knobs:
            raise HyperSpaceError(f"duplicate knob name {name!r}")

    def _check_dependencies(self) -> None:
        self.sample_order()  # raises on unknown names or cycles

    # ------------------------------------------------------------------
    # sampling / encoding
    # ------------------------------------------------------------------

    def sample_order(self) -> list[str]:
        """Topological order respecting every knob's ``depends`` list."""
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise HyperSpaceError(f"dependency cycle involving knob {name!r}")
            if name not in self.knobs:
                raise HyperSpaceError(f"unknown knob in depends: {name!r}")
            visiting.add(name)
            for dep in self.knobs[name].depends:
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in self.knobs:
            visit(name)
        return order

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Draw one trial, honouring depends and hooks."""
        values: dict[str, Any] = {}
        for name in self.sample_order():
            knob = self.knobs[name]
            if knob.pre_hook is not None:
                knob = knob.pre_hook(values, knob)
            value = knob.sample(rng)
            if knob.post_hook is not None:
                value = knob.post_hook(values, value)
            values[name] = value
        return values

    def encode(self, values: dict[str, Any]) -> np.ndarray:
        """Map a trial to the unit hypercube (knob order = sample order)."""
        return np.array(
            [self.knobs[name].encode(values[name]) for name in self.sample_order()]
        )

    def decode(self, point: np.ndarray) -> dict[str, Any]:
        """Inverse of :meth:`encode`; hooks are re-applied."""
        order = self.sample_order()
        if point.shape[0] != len(order):
            raise HyperSpaceError(f"expected {len(order)} dims, got {point.shape[0]}")
        values: dict[str, Any] = {}
        for unit, name in zip(point, order):
            knob = self.knobs[name]
            if knob.pre_hook is not None:
                knob = knob.pre_hook(values, knob)
            value = knob.decode(float(unit))
            if knob.post_hook is not None:
                value = knob.post_hook(values, value)
            values[name] = value
        return values

    def grid(self, resolution: int = 3) -> list[dict[str, Any]]:
        """The cartesian grid over all knobs (grid search)."""
        order = self.sample_order()
        combos: list[dict[str, Any]] = [{}]
        for name in order:
            knob = self.knobs[name]
            new_combos = []
            for partial in combos:
                effective = knob.pre_hook(partial, knob) if knob.pre_hook else knob
                for value in effective.grid(resolution):
                    if knob.post_hook is not None:
                        value = knob.post_hook(partial, value)
                    merged = dict(partial)
                    merged[name] = value
                    new_combos.append(merged)
            combos = new_combos
        return combos

    @property
    def dimensions(self) -> int:
        return len(self.knobs)

    def validate(self, values: dict[str, Any]) -> None:
        """Check that a trial assigns every knob (raises otherwise)."""
        missing = sorted(set(self.knobs) - set(values))
        if missing:
            raise HyperSpaceError(f"trial is missing knobs: {missing}")
        unknown = sorted(set(values) - set(self.knobs))
        if unknown:
            raise HyperSpaceError(f"trial has unknown knobs: {unknown}")

    def __len__(self) -> int:
        return len(self.knobs)

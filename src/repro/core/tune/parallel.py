"""True multi-core trial execution for :class:`RealTrainer` studies.

:func:`~repro.core.tune.runner.run_study` interleaves every worker's
epochs on one core: simulated time overlaps, real time does not. For
surrogate trials that is fine (epochs are microseconds), but a
:class:`~repro.core.tune.backends.RealTrainer` study spends nearly all
its real wall-clock inside ``train_epoch``. Following Ray Tune's
observation that trial-level process parallelism is the cheapest
scalability win for model selection, this module farms that real epoch
work out to OS processes while leaving the master/worker message flow
— and therefore the simulated-time :class:`StudyReport` — untouched.

How it works:

* :class:`ParallelTrialExecutor` is a drop-in
  :class:`~repro.core.tune.backends.TrainerBackend`. ``start(trial,
  init_state)`` ships ``(trial, init_state)`` to a child process —
  nothing unpicklable crosses the pipe; the child rebuilds the
  :class:`RealTrainer` once from a :class:`_TrainerSpec` and
  reconstructs the session from the trial id and the trainer seed, so
  training is bit-for-bit identical to the in-process path.
* The child free-runs the whole trial, streaming one record per epoch;
  the :class:`_ParallelSession` returned to the
  :class:`~repro.core.tune.worker.TuneWorker` replays those records as
  the simulator asks for them. While one worker waits on its next
  epoch record, every other in-flight trial keeps training on its own
  core — that is where the parallelism comes from.
* Children apply the same epoch cap and (for Study-style masters) the
  same :class:`EarlyStopper` rule as the parent worker, so they stop at
  exactly the epoch the sequential run would have, and the final state
  dict matches the stop-point state. For masters that early-stop
  centrally (CoStudy), per-epoch state snapshots are streamed instead
  so mid-trial ``kPut`` checkpoints see the exact same parameters as a
  sequential run.

:func:`run_study_parallel` wraps :func:`run_study` with the backend
swap and process-pool lifecycle; for a fixed seed it produces the same
report as :func:`run_study`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import telemetry
from repro.core.tune.backends import RealTrainer
from repro.core.tune.config import HyperConf
from repro.core.tune.early_stopping import EarlyStopper
from repro.core.tune.runner import run_study
from repro.core.tune.study import StudyMaster, StudyReport
from repro.core.tune.trial import Trial
from repro.core.tune.worker import TuneWorker
from repro.exceptions import ConfigurationError
from repro.sim import Simulator

__all__ = ["ParallelTrialExecutor", "run_study_parallel"]


@dataclass
class _TrainerSpec:
    """Everything needed to rebuild a :class:`RealTrainer` in a child.

    Only plain data and module-level callables — picklable under both
    fork and spawn start methods.
    """

    dataset: Any
    builder: Any
    batch_size: int
    seconds_per_epoch: float
    use_augmentation: bool
    arch_knobs: tuple[str, ...]
    seed: int

    @classmethod
    def of(cls, trainer: RealTrainer) -> "_TrainerSpec":
        return cls(
            dataset=trainer.dataset,
            builder=trainer.builder,
            batch_size=trainer.batch_size,
            seconds_per_epoch=trainer.seconds_per_epoch,
            use_augmentation=trainer.use_augmentation,
            arch_knobs=trainer.arch_knobs,
            seed=trainer.seed,
        )

    def build(self) -> RealTrainer:
        return RealTrainer(
            dataset=self.dataset,
            builder=self.builder,
            batch_size=self.batch_size,
            seconds_per_epoch=self.seconds_per_epoch,
            use_augmentation=self.use_augmentation,
            arch_knobs=self.arch_knobs,
            seed=self.seed,
        )


def _child_loop(
    spec: _TrainerSpec,
    local_early_stop: bool,
    patience: int,
    min_delta: float,
    task_queue,
    result_queue,
) -> None:
    """Child process body: rebuild the trainer, then run trials forever.

    Per epoch it emits ``("epoch", trial_id, accuracy, state|None)``;
    after the last epoch ``("done", trial_id, final_state)``; on any
    exception ``("error", trial_id, repr)``.
    """
    trainer = spec.build()
    while True:
        job = task_queue.get()
        if job is None:
            return
        trial, init_state, epoch_cap, snapshot = job
        try:
            session = trainer.start(trial, init_state)
            stopper = (
                EarlyStopper(patience=patience, min_delta=min_delta)
                if local_early_stop
                else None
            )
            for _ in range(epoch_cap):
                accuracy = session.run_epoch()
                state = session.state_dict() if snapshot else None
                result_queue.put(("epoch", trial.trial_id, float(accuracy), state))
                if stopper is not None and stopper.update(accuracy):
                    break
            result_queue.put(("done", trial.trial_id, session.state_dict()))
        except Exception as exc:  # surface child failures in the parent
            result_queue.put(("error", trial.trial_id, repr(exc)))


class _ParallelSession:
    """Session proxy replaying epoch records streamed from a child."""

    def __init__(self, executor: "ParallelTrialExecutor", trial: Trial):
        self._executor = executor
        self._trial_id = trial.trial_id
        self._epochs = 0
        self._best = 0.0
        self._state: dict[str, np.ndarray] | None = None

    def run_epoch(self) -> float:
        accuracy, state = self._executor._await_epoch(self._trial_id)
        self._epochs += 1
        if state is not None:
            self._state = state
        self._best = max(self._best, accuracy)
        return accuracy

    def state_dict(self) -> dict[str, np.ndarray]:
        if self._state is not None:
            return self._state
        # Snapshots off: the child applies the same local early-stopping
        # rule, so its final state is exactly the parent's stop point.
        return self._executor._await_done(self._trial_id)

    @property
    def epochs(self) -> int:
        return self._epochs

    @property
    def best_performance(self) -> float:
        return self._best


class ParallelTrialExecutor:
    """A :class:`TrainerBackend` that trains trials on separate cores.

    Wraps a :class:`RealTrainer`; ``start()`` enqueues the trial for a
    pool of child processes and returns a :class:`_ParallelSession`
    that replays the streamed per-epoch results. ``epoch_cost`` (the
    simulated-time model) delegates to the wrapped trainer, so reports
    land at the same simulated instants as a sequential run.

    Use as a context manager, or call :meth:`shutdown` when done.
    """

    #: seconds to wait for a child record before declaring the pool dead.
    RESULT_TIMEOUT = 600.0

    def __init__(
        self,
        trainer: RealTrainer,
        conf: HyperConf,
        processes: int | None = None,
        local_early_stop: bool = True,
        snapshot_states: bool = False,
        mp_context: str | None = None,
        trial_retries: int = 2,
    ):
        if not isinstance(trainer, RealTrainer):
            raise ConfigurationError(
                f"ParallelTrialExecutor wraps a RealTrainer, got {type(trainer).__name__}"
            )
        self.trainer = trainer
        self.conf = conf
        self.processes = int(processes) if processes else (os.cpu_count() or 1)
        if self.processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        self.local_early_stop = bool(local_early_stop)
        self.snapshot_states = bool(snapshot_states)
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self._procs: list[multiprocessing.Process] = []
        self._task_queue = None
        self._result_queue = None
        #: how often a trial that died in a child is resubmitted before
        #: the error is surfaced to the caller.
        self.trial_retries = int(trial_retries)
        #: per-trial streams of (accuracy, state-or-None) records
        self._epoch_records: dict[int, deque] = {}
        #: final state dict per finished trial
        self._final_states: dict[int, dict[str, np.ndarray]] = {}
        #: job tuple per in-flight trial, kept for crash resubmission
        self._inflight: dict[int, tuple] = {}
        #: child crashes observed per trial
        self._crashes: dict[int, int] = {}
        #: epoch records appended per trial (skipped replays excluded)
        self._streamed: dict[int, int] = {}
        #: records of a resubmitted run to discard — the deterministic
        #: re-run replays the epochs the parent already consumed
        self._skip: dict[int, int] = {}

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._procs)

    def _ensure_started(self) -> None:
        if self._procs:
            return
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        spec = _TrainerSpec.of(self.trainer)
        for _ in range(self.processes):
            proc = self._ctx.Process(
                target=_child_loop,
                args=(
                    spec,
                    self.local_early_stop,
                    self.conf.early_stop_patience,
                    self.conf.early_stop_min_delta,
                    self._task_queue,
                    self._result_queue,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        telemetry.get_registry().gauge(
            "repro_tune_parallel_processes", "Child processes in the trial pool."
        ).set(len(self._procs))

    def shutdown(self) -> None:
        """Stop all child processes (idempotent)."""
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):  # queue already torn down
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()
        self._task_queue = None
        self._result_queue = None

    def __enter__(self) -> "ParallelTrialExecutor":
        self._ensure_started()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # TrainerBackend protocol
    # ------------------------------------------------------------------

    def start(self, trial: Trial, init_state: dict[str, np.ndarray] | None) -> _ParallelSession:
        self._ensure_started()
        epoch_cap = (
            trial.max_epochs
            if trial.max_epochs is not None
            else self.conf.max_epochs_per_trial
        )
        self._epoch_records.setdefault(trial.trial_id, deque())
        job = (trial, init_state, int(epoch_cap), self.snapshot_states)
        self._inflight[trial.trial_id] = job
        self._task_queue.put(job)
        telemetry.get_registry().counter(
            "repro_tune_parallel_trials_dispatched_total",
            "Trials shipped to the child-process pool.",
        ).inc()
        return _ParallelSession(self, trial)

    def epoch_cost(self, trial: Trial) -> float:
        return self.trainer.epoch_cost(trial)

    # ------------------------------------------------------------------
    # record demultiplexing
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Block for one child record and route it to its trial buffer."""
        try:
            record = self._result_queue.get(timeout=self.RESULT_TIMEOUT)
        except queue_mod.Empty:
            dead = [p for p in self._procs if not p.is_alive()]
            raise RuntimeError(
                f"no trial results for {self.RESULT_TIMEOUT:.0f}s "
                f"({len(dead)}/{len(self._procs)} child processes dead)"
            ) from None
        kind, trial_id = record[0], record[1]
        telemetry.get_registry().counter(
            "repro_tune_parallel_records_total",
            "Records streamed back from child processes, by kind.",
        ).inc(kind=kind)
        if kind == "epoch":
            if self._skip.get(trial_id, 0) > 0:
                # replayed epoch of a resubmitted trial, already consumed
                self._skip[trial_id] -= 1
                return
            self._epoch_records.setdefault(trial_id, deque()).append(
                (record[2], record[3])
            )
            self._streamed[trial_id] = self._streamed.get(trial_id, 0) + 1
        elif kind == "done":
            self._final_states[trial_id] = record[2]
            self._inflight.pop(trial_id, None)
        else:  # "error"
            self._handle_error(trial_id, record[2])

    def _handle_error(self, trial_id: int, detail: str) -> None:
        """Resubmit a trial whose child crashed, or surface the error.

        The re-run is bit-identical (sessions are deterministic in the
        trial), so epoch records the parent already consumed are
        replayed by the child and silently discarded here; the parent
        session continues exactly where the crash interrupted it. After
        ``trial_retries`` resubmissions the error propagates.
        """
        job = self._inflight.get(trial_id)
        crashes = self._crashes.get(trial_id, 0) + 1
        self._crashes[trial_id] = crashes
        exhausted = job is None or crashes > self.trial_retries
        telemetry.get_registry().counter(
            "repro_tune_parallel_trial_errors_total",
            "Child-process trial crashes, by outcome.",
        ).inc(outcome="raised" if exhausted else "resubmitted")
        if exhausted:
            raise RuntimeError(f"trial {trial_id} failed in child process: {detail}")
        records = self._epoch_records.setdefault(trial_id, deque())
        consumed = self._streamed.get(trial_id, 0) - len(records)
        records.clear()
        self._streamed[trial_id] = 0
        self._skip[trial_id] = consumed
        self._task_queue.put(job)

    def _await_epoch(self, trial_id: int) -> tuple[float, dict | None]:
        records = self._epoch_records.setdefault(trial_id, deque())
        while not records:
            self._pump()
        return records.popleft()

    def _await_done(self, trial_id: int) -> dict[str, np.ndarray]:
        while trial_id not in self._final_states:
            self._pump()
        return self._final_states[trial_id]


def run_study_parallel(
    master: StudyMaster,
    workers: list[TuneWorker],
    processes: int | None = None,
    sim: Simulator | None = None,
    max_events: int = 5_000_000,
    snapshot_states: bool | None = None,
    backend: str = "pool",
    pool=None,
) -> StudyReport:
    """:func:`run_study`, with real epoch work spread over processes.

    The workers' :class:`RealTrainer` backend is swapped for a
    process-parallel executor for the duration of the run (and restored
    afterwards). Master/worker messages, simulated time and the
    resulting :class:`StudyReport` are identical to :func:`run_study`
    for a fixed seed; only real wall-clock shrinks.

    ``backend`` selects the executor: ``"pool"`` (default) uses the
    persistent :class:`~repro.core.tune.pool.TrialPool` with
    shared-memory IPC; ``"legacy"`` keeps the original spawn-per-study
    :class:`ParallelTrialExecutor` (the comparison baseline in
    ``benchmarks/bench_perf_parallel.py``). Pass an already-started
    :class:`~repro.core.tune.pool.TrialPool` via ``pool=`` to reuse its
    workers (and their cached trainers) across consecutive studies.

    ``processes`` defaults to one child per worker, capped by the CPU
    count. ``snapshot_states`` (per-epoch parameter snapshots, needed
    for masters that checkpoint mid-trial) defaults to on exactly when
    the master early-stops centrally, i.e. for CoStudy.
    """
    from repro.core.tune.pool import PoolTrialExecutor, TrialPool

    if not workers:
        raise ConfigurationError("run_study_parallel needs at least one worker")
    if backend not in ("pool", "legacy"):
        raise ConfigurationError(f"backend must be 'pool' or 'legacy', got {backend!r}")
    if pool is not None and not isinstance(pool, TrialPool):
        raise ConfigurationError(f"pool must be a TrialPool, got {type(pool).__name__}")
    base_backends = [worker.backend for worker in workers]
    base = base_backends[0]
    if processes is None:
        processes = max(1, min(len(workers), os.cpu_count() or 1))
    if snapshot_states is None:
        snapshot_states = not master.workers_early_stop_locally
    if isinstance(base, (ParallelTrialExecutor, PoolTrialExecutor)):
        executor = base
    elif backend == "legacy":
        executor = ParallelTrialExecutor(
            base,
            conf=workers[0].conf,
            processes=processes,
            local_early_stop=master.workers_early_stop_locally,
            snapshot_states=snapshot_states,
        )
    else:
        executor = PoolTrialExecutor(
            base,
            conf=workers[0].conf,
            pool=pool,
            processes=processes,
            local_early_stop=master.workers_early_stop_locally,
            snapshot_states=snapshot_states,
        )
    for worker in workers:
        worker.backend = executor
    try:
        with executor:
            return run_study(master, workers, sim=sim, max_events=max_events)
    finally:
        for worker, backend_ in zip(workers, base_backends):
            worker.backend = backend_

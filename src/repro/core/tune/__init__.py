"""The training service: distributed hyper-parameter tuning.

Public pieces: the :class:`HyperSpace` programming model (Figure 4),
:class:`HyperConf` (the SDK's tuning options), the trial advisors,
the :class:`StudyMaster` (Algorithm 1) and :class:`CoStudyMaster`
(Algorithm 2), workers, the two trainer backends, and :func:`run_study`
which executes a study over simulated time.
"""

from repro.core.tune.advisors import (
    BayesianAdvisor,
    GridSearchAdvisor,
    RandomSearchAdvisor,
    TrialAdvisor,
)
from repro.core.tune.backends import RealTrainer, TrainerBackend, TrialSession
from repro.core.tune.config import HyperConf
from repro.core.tune.costudy import CoStudyMaster
from repro.core.tune.early_stopping import EarlyStopper
from repro.core.tune.hyperspace import CategoricalKnob, HyperSpace, RangeKnob
from repro.core.tune.runner import make_workers, run_study
from repro.core.tune.spaces import demo_space, section71_space
from repro.core.tune.study import StudyHistoryEntry, StudyMaster, StudyReport
from repro.core.tune.surrogate import SurrogateTrainer
from repro.core.tune.trial import InitKind, Trial, TrialResult, TrialStatus
from repro.core.tune.worker import TuneWorker

__all__ = [
    "HyperSpace",
    "RangeKnob",
    "CategoricalKnob",
    "HyperConf",
    "TrialAdvisor",
    "RandomSearchAdvisor",
    "GridSearchAdvisor",
    "BayesianAdvisor",
    "StudyMaster",
    "CoStudyMaster",
    "StudyReport",
    "StudyHistoryEntry",
    "TuneWorker",
    "Trial",
    "TrialResult",
    "TrialStatus",
    "InitKind",
    "EarlyStopper",
    "TrainerBackend",
    "TrialSession",
    "RealTrainer",
    "SurrogateTrainer",
    "run_study",
    "make_workers",
    "section71_space",
    "demo_space",
]

from repro.core.tune.persistence import (  # noqa: E402
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)

__all__ += ["report_to_dict", "report_from_dict", "save_report", "load_report"]

from repro.core.tune.halving import (  # noqa: E402
    HalvingMaster,
    SuccessiveHalvingAdvisor,
    halving_conf,
)

__all__ += ["SuccessiveHalvingAdvisor", "HalvingMaster", "halving_conf"]

from repro.core.tune.parallel import (  # noqa: E402
    ParallelTrialExecutor,
    run_study_parallel,
)
from repro.core.tune.pool import PoolTrialExecutor, TrialPool  # noqa: E402

__all__ += [
    "ParallelTrialExecutor",
    "run_study_parallel",
    "PoolTrialExecutor",
    "TrialPool",
]

"""Tuning configuration: the SDK's ``HyperConf`` object.

Collects the knobs of Algorithms 1 and 2: the stop criterion (total
number of trials), the early-stopping rule, CoStudy's ``delta``
performance threshold for checkpointing to the parameter server, and
the alpha-greedy schedule balancing random initialisation against
warm starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["HyperConf"]


@dataclass
class HyperConf:
    """User-facing tuning configuration (``rafiki.HyperConf()``)."""

    max_trials: int = 50
    max_epochs_per_trial: int = 50
    early_stop_patience: int = 5
    early_stop_min_delta: float = 1e-3
    #: CoStudy checkpoints a worker's parameters when its reported
    #: performance beats the best by more than ``delta`` (Algorithm 2
    #: line 8). Set per the user's expectation about headroom: the
    #: paper suggests 0.1% for MNIST-grade tasks, 0.5% for CIFAR-10.
    delta: float = 0.005
    #: alpha-greedy warm-start schedule: trial t is randomly initialised
    #: with probability max(alpha_min, alpha0 * alpha_decay**t).
    alpha0: float = 1.0
    alpha_decay: float = 0.9
    alpha_min: float = 0.05
    #: optional budget on the summed training epochs across all trials.
    max_total_epochs: int | None = None

    def __post_init__(self):
        if self.max_trials < 1:
            raise ConfigurationError(f"max_trials must be >= 1, got {self.max_trials}")
        if self.max_epochs_per_trial < 1:
            raise ConfigurationError(
                f"max_epochs_per_trial must be >= 1, got {self.max_epochs_per_trial}"
            )
        if self.early_stop_patience < 1:
            raise ConfigurationError(
                f"early_stop_patience must be >= 1, got {self.early_stop_patience}"
            )
        if self.delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {self.delta}")
        if not 0.0 <= self.alpha_min <= self.alpha0 <= 1.0:
            raise ConfigurationError(
                f"need 0 <= alpha_min <= alpha0 <= 1, got {self.alpha_min}, {self.alpha0}"
            )
        if not 0.0 < self.alpha_decay <= 1.0:
            raise ConfigurationError(f"alpha_decay must be in (0, 1], got {self.alpha_decay}")

    def should_continue(self, num_finished: int, total_epochs: int = 0) -> bool:
        """The master's ``conf.stop(num)`` check (inverted sense)."""
        if num_finished >= self.max_trials:
            return False
        if self.max_total_epochs is not None and total_epochs >= self.max_total_epochs:
            return False
        return True

    def alpha(self, num_finished: int) -> float:
        """Probability of random initialisation for the next trial."""
        return max(self.alpha_min, self.alpha0 * self.alpha_decay**num_finished)

"""Tuning workers.

A worker keeps requesting trials from the master, trains one epoch per
step, reports validation performance after every epoch, and obeys
``kPut`` (persist parameters to the parameter server) and ``kStop``
(abandon the current trial) instructions.
"""

from __future__ import annotations

import numpy as np

from repro import chaos, telemetry
from repro.cluster.message import Mailbox, Message, MessageType
from repro.core.tune.backends import TrainerBackend, TrialSession
from repro.core.tune.config import HyperConf
from repro.core.tune.early_stopping import EarlyStopper
from repro.core.tune.trial import InitKind, Trial, TrialStatus
from repro.exceptions import InjectedFault
from repro.paramserver import ParameterServer
from repro.tenancy import current_tenant
from repro.utils.retry import RetryPolicy

__all__ = ["TuneWorker"]

#: simulated seconds per training epoch — spans minutes to hours.
EPOCH_SECONDS_BUCKETS = (0.1, 1.0, 10.0, 60.0, 300.0, 900.0, 1800.0, 3600.0, 10800.0)


class TuneWorker:
    """One tuning worker (one GPU in the paper's deployment)."""

    def __init__(
        self,
        name: str,
        backend: TrainerBackend,
        param_server: ParameterServer,
        conf: HyperConf,
        local_early_stop: bool = True,
        retry: RetryPolicy | None = None,
    ):
        self.name = name
        self.backend = backend
        self.param_server = param_server
        self.conf = conf
        #: how often a crashed trial (an injected ``tune.trial`` fault)
        #: is restarted from its checkpoint before being reported FAILED.
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=3)
        #: Study workers early-stop locally; CoStudy moves the decision
        #: to the master (Algorithm 2 line 11), which sets this False.
        self.local_early_stop = bool(local_early_stop)
        self.mailbox = Mailbox(name)
        self.terminated = False
        self.trials_run = 0
        self._trial: Trial | None = None
        self._session: TrialSession | None = None
        self._last_session: TrialSession | None = None
        self._stopper: EarlyStopper | None = None
        self._awaiting_trial = False
        self._init_state: dict[str, np.ndarray] | None = None
        self._trial_crashes = 0

    # ------------------------------------------------------------------
    # the worker loop body
    # ------------------------------------------------------------------

    def step(self) -> tuple[list[Message], float]:
        """Handle inbox, then do one unit of work.

        Returns ``(outgoing messages, simulated seconds consumed)``.
        """
        outgoing: list[Message] = []
        self._drain_inbox(outgoing)
        if self.terminated:
            return outgoing, 0.0
        if self._session is None:
            if not self._awaiting_trial:
                outgoing.append(Message(MessageType.REQUEST, self.name))
                self._awaiting_trial = True
            return outgoing, 0.0
        cost = self.backend.epoch_cost(self._trial)
        try:
            cost += chaos.fire("tune.trial")
            accuracy = self._session.run_epoch()
        except InjectedFault:
            # The trial crashed mid-epoch: the epoch's compute is lost
            # (cost is still consumed) and the trial restarts from its
            # checkpoint — sessions are pure functions of (trial,
            # init_state), so a re-run reproduces the healthy epochs
            # bit-for-bit before continuing.
            self._recover_trial(outgoing)
            return outgoing, cost
        registry = telemetry.get_registry()
        registry.counter(
            "repro_tune_epochs_total", "Training epochs run across all workers."
        ).inc(tenant=current_tenant())
        registry.histogram(
            "repro_tune_epoch_seconds",
            "Per-epoch duration in (simulated) seconds.",
            buckets=EPOCH_SECONDS_BUCKETS,
        ).observe(cost)
        outgoing.append(
            Message(
                MessageType.REPORT,
                self.name,
                {
                    "p": accuracy,
                    "trial": self._trial,
                    "epochs": self._session.epochs,
                },
            )
        )
        epoch_cap = (
            self._trial.max_epochs
            if self._trial.max_epochs is not None
            else self.conf.max_epochs_per_trial
        )
        hit_epoch_cap = self._session.epochs >= epoch_cap
        plateaued = (
            self.local_early_stop
            and self._stopper is not None
            and self._stopper.update(accuracy)
        )
        if hit_epoch_cap or plateaued:
            self._finish(TrialStatus.COMPLETED, outgoing)
        return outgoing, cost

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _drain_inbox(self, outgoing: list[Message]) -> None:
        while True:
            message = self.mailbox.receive()
            if message is None:
                return
            if message.type is MessageType.TRIAL:
                self._start_trial(message.payload["trial"])
            elif message.type is MessageType.PUT:
                self._put_params(message.payload.get("key", "best"),
                                 message.payload.get("performance"))
            elif message.type is MessageType.STOP:
                if self._session is not None:
                    self._finish(TrialStatus.STOPPED, outgoing)
            elif message.type is MessageType.SHUTDOWN:
                self.terminated = True
                self._session = None
                self._trial = None

    def _start_trial(self, trial: Trial) -> None:
        self._awaiting_trial = False
        init_state: dict[str, np.ndarray] | None = None
        if (
            trial.init_kind is InitKind.WARM_START
            and trial.init_key is not None
            and self.param_server.has(trial.init_key)
        ):
            init_state = self.param_server.get(trial.init_key)
        trial.status = TrialStatus.RUNNING
        self._trial = trial
        self._init_state = init_state
        self._trial_crashes = 0
        self._session = self.backend.start(trial, init_state)
        self._stopper = EarlyStopper(
            patience=self.conf.early_stop_patience,
            min_delta=self.conf.early_stop_min_delta,
        )
        self.trials_run += 1
        telemetry.get_registry().counter(
            "repro_tune_trials_started_total",
            "Trials handed to workers, by initialisation kind.",
        ).inc(init=trial.init_kind.value)

    def _recover_trial(self, outgoing: list[Message]) -> None:
        """Restart the crashed trial from its checkpoint, or give up.

        Restarts are capped by ``self.retry.max_attempts``; past the cap
        the trial is finished as FAILED (performance from whatever
        epochs completed before the first crash, typically 0.0 for an
        immediate crash) so the master can move the study along.
        """
        assert self._trial is not None
        self._trial_crashes += 1
        registry = telemetry.get_registry()
        exhausted = self._trial_crashes >= self.retry.max_attempts
        registry.counter(
            "repro_tune_trial_crashes_total",
            "Trial crashes (injected tune.trial faults), by outcome.",
        ).inc(outcome="failed" if exhausted else "retried")
        if exhausted:
            self._finish(TrialStatus.FAILED, outgoing)
            return
        self._session = self.backend.start(self._trial, self._init_state)
        self._stopper = EarlyStopper(
            patience=self.conf.early_stop_patience,
            min_delta=self.conf.early_stop_min_delta,
        )

    def _put_params(self, key: str, performance: float | None) -> None:
        # kPut may refer to the running session or (after kFinish, see
        # Algorithm 1 line 15) to the just-finished one.
        session = self._session if self._session is not None else self._last_session
        if session is None:
            return
        self.param_server.put(
            key,
            session.state_dict(),
            performance=(
                performance if performance is not None else session.best_performance
            ),
        )

    def _finish(self, status: TrialStatus, outgoing: list[Message]) -> None:
        assert self._session is not None and self._trial is not None
        self._trial.status = status
        telemetry.get_registry().counter(
            "repro_tune_trials_completed_total", "Trials finished, by final status."
        ).inc(status=status.value)
        outgoing.append(
            Message(
                MessageType.FINISH,
                self.name,
                {
                    "p": self._session.best_performance,
                    "trial": self._trial,
                    "epochs": self._session.epochs,
                },
            )
        )
        # Keep the session parameters around: the master may still reply
        # with kPut for this just-finished trial (Algorithm 1 line 15).
        self._trial = None
        self._stopper = None
        self._last_session = self._session
        self._session = None

    @property
    def busy(self) -> bool:
        return self._session is not None

    @property
    def awaiting_trial(self) -> bool:
        """Requested a trial and is waiting for the master's reply.

        Masters may *park* a requesting worker (successive halving's
        rung barrier) and wake it later, so a waiting worker must keep
        polling its mailbox instead of terminating.
        """
        return self._awaiting_trial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "terminated" if self.terminated else ("busy" if self.busy else "idle")
        return f"TuneWorker({self.name!r}, {state}, trials={self.trials_run})"

"""Study-report persistence.

Training jobs are long-lived; Rafiki's users monitor them via job ids
(Figure 2's ``job.run()`` handle). This module serialises a
:class:`~repro.core.tune.study.StudyReport` — trials, per-trial
outcomes, and the best-so-far history — to JSON so reports survive
process restarts and can be shipped over the gateway.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.core.tune.study import StudyHistoryEntry, StudyReport
from repro.core.tune.trial import InitKind, Trial, TrialResult, TrialStatus
from repro.exceptions import ConfigurationError

__all__ = ["report_to_dict", "report_from_dict", "save_report", "load_report"]

_FORMAT_VERSION = 1


def report_to_dict(report: StudyReport) -> dict[str, Any]:
    """A JSON-serialisable view of a study report."""
    return {
        "version": _FORMAT_VERSION,
        "study_name": report.study_name,
        "total_epochs": report.total_epochs,
        "wall_time": report.wall_time,
        "results": [
            {
                "trial_id": result.trial.trial_id,
                "params": result.trial.params,
                "init_kind": result.trial.init_kind.value,
                "init_key": result.trial.init_key,
                "status": result.trial.status.value,
                "performance": result.performance,
                "epochs": result.epochs,
                "worker": result.worker,
            }
            for result in report.results
        ],
        "history": [
            {
                "index": entry.index,
                "performance": entry.performance,
                "epochs": entry.epochs,
                "total_epochs": entry.total_epochs,
                "best_so_far": entry.best_so_far,
                "time": entry.time,
                "init_kind": entry.init_kind,
            }
            for entry in report.history
        ],
    }


def report_from_dict(payload: dict[str, Any]) -> StudyReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported report format version: {version!r}")
    report = StudyReport(
        study_name=payload["study_name"],
        total_epochs=int(payload["total_epochs"]),
        wall_time=float(payload["wall_time"]),
    )
    for row in payload["results"]:
        trial = Trial(
            params=dict(row["params"]),
            trial_id=int(row["trial_id"]),
            init_kind=InitKind(row["init_kind"]),
            init_key=row.get("init_key"),
            status=TrialStatus(row["status"]),
        )
        report.results.append(
            TrialResult(
                trial=trial,
                performance=float(row["performance"]),
                epochs=int(row["epochs"]),
                worker=row.get("worker", ""),
            )
        )
    for row in payload["history"]:
        report.history.append(
            StudyHistoryEntry(
                index=int(row["index"]),
                performance=float(row["performance"]),
                epochs=int(row["epochs"]),
                total_epochs=int(row["total_epochs"]),
                best_so_far=float(row["best_so_far"]),
                time=float(row["time"]),
                init_kind=row["init_kind"],
            )
        )
    return report


def save_report(report: StudyReport, path: str) -> None:
    """Write a report to ``path`` as JSON (creating parent directories)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(report_to_dict(report), f, indent=2)


def load_report(path: str) -> StudyReport:
    """Read a report written by :func:`save_report`."""
    with open(path) as f:
        return report_from_dict(json.load(f))

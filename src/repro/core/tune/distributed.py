"""Cluster-integrated distributed tuning.

Runs a study with one tuning worker per cluster worker-container, over
simulated time. Node failures injected mid-study exercise the paper's
recovery story: workers are stateless, so the manager restarts their
containers on surviving nodes. A replacement whose predecessor had a
trial in flight re-runs *that same trial* from its checkpoint (trial
sessions are deterministic in the trial, so the re-run reproduces the
lost epochs exactly and the advisor sees the same trial sequence as a
healthy run); otherwise it requests a fresh trial. Master state is
checkpointed after every finished trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.cluster import ClusterManager, FailureInjector
from repro.cluster.container import Container, ContainerRole
from repro.cluster.manager import JobKind, JobState
from repro.cluster.message import Message, MessageType
from repro.core.tune.backends import TrainerBackend
from repro.core.tune.config import HyperConf
from repro.core.tune.costudy import CoStudyMaster
from repro.core.tune.study import StudyMaster, StudyReport
from repro.core.tune.trial import Trial
from repro.core.tune.worker import TuneWorker
from repro.paramserver import ParameterServer
from repro.sim import Simulator
from repro.utils.retry import RetryPolicy

__all__ = ["ClusterStudy", "run_cluster_study"]


@dataclass
class ClusterStudy:
    """Handles for an in-flight cluster study."""

    master: StudyMaster
    workers: dict[str, TuneWorker] = field(default_factory=dict)
    job_id: str = ""
    workers_started: int = 0
    #: trial currently assigned to each worker, by container id.
    in_flight: dict[str, Trial] = field(default_factory=dict)
    #: trials re-issued to replacement workers after a node failure.
    trials_reissued: int = 0


def run_cluster_study(
    manager: ClusterManager,
    master: StudyMaster,
    backend: TrainerBackend,
    param_server: ParameterServer,
    conf: HyperConf,
    num_workers: int,
    sim: Simulator | None = None,
    failure_plan: list[tuple[float, str, float | None]] | None = None,
    max_events: int = 5_000_000,
    trial_retry: RetryPolicy | None = None,
) -> StudyReport:
    """Run ``master`` over a cluster job with ``num_workers`` workers.

    ``failure_plan`` is a list of ``(delay_s, node_name, recover_after)``
    failure injections; ``trial_retry`` caps how often workers restart a
    trial crashed by the ``tune.trial`` fault point. Returns the study
    report (wall time = simulated completion time).
    """
    sim = sim if sim is not None else Simulator()
    master.set_clock(lambda: sim.now)
    if (
        hasattr(param_server, "register_with_cluster")
        and getattr(param_server, "manager", None) is None
    ):
        # A sharded data plane joins the same cluster as the study, so
        # the failure plan's node kills take parameter shards down too.
        param_server.register_with_cluster(manager)
    study = ClusterStudy(master=master)
    job = manager.submit_job(JobKind.TRAIN, name=master.study_name,
                             num_workers=num_workers, queue=False)
    study.job_id = job.job_id

    def start_worker(container: Container) -> None:
        if container.role is not ContainerRole.WORKER:
            return
        study.workers_started += 1
        worker = TuneWorker(
            name=container.container_id,
            backend=backend,
            param_server=param_server,
            conf=conf,
            local_early_stop=master.workers_early_stop_locally,
            retry=trial_retry,
        )
        study.workers[worker.name] = worker
        # If this container replaces one that died mid-trial, re-issue
        # that trial (from its checkpoint) instead of letting the
        # replacement pull a fresh one — the advisor then sees exactly
        # the trial sequence of a healthy run.
        orphaned = (
            study.in_flight.pop(container.predecessor, None)
            if container.predecessor is not None
            else None
        )
        if orphaned is not None:
            study.in_flight[worker.name] = orphaned
            study.trials_reissued += 1
            worker.mailbox.send(
                Message(MessageType.TRIAL, master.study_name, {"trial": orphaned})
            )
            telemetry.get_registry().counter(
                "repro_tune_trials_reissued_total",
                "In-flight trials re-issued to replacement workers.",
            ).inc()
        sim.spawn(_worker_process(worker, master, study, manager, container))

    def _worker_process(worker, master, study, manager, container):
        while not worker.terminated:
            live = manager.containers.get(container.container_id)
            if live is None or not live.running:
                return  # the container died; a replacement was started
            outgoing, cost = worker.step()
            for message in outgoing:
                if message.type is MessageType.FINISH:
                    study.in_flight.pop(worker.name, None)
                master.mailbox.send(message)
            if outgoing:
                for dest, reply in master.step():
                    if reply.type is MessageType.TRIAL:
                        study.in_flight[dest] = reply.payload["trial"]
                    target = study.workers.get(dest)
                    if target is not None:
                        target.mailbox.send(reply)
            if cost > 0:
                yield cost
            elif not outgoing and not worker.mailbox:
                return

    manager.on_recovery(start_worker)
    for container in job.workers:
        start_worker(container)

    if failure_plan:
        injector = FailureInjector(manager)
        for delay, node_name, recover_after in failure_plan:
            injector.schedule_failure(sim, delay, node_name, recover_after)

    sim.run(max_events=max_events)
    if manager.jobs[job.job_id].state in (JobState.RUNNING, JobState.DEGRADED):
        manager.complete_job(job.job_id)
    if isinstance(master, CoStudyMaster):
        manager.checkpoints.save(master.study_name, master.checkpoint_state())
    return master.finalize(wall_time=sim.now)

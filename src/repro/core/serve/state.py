"""RL state encoding (Section 5.2).

The state concatenates:

* the queue status — waiting times of the oldest requests, zero-padded
  or truncated to a fixed length, normalised by the SLO ``tau``
  (plus one scalar with the total queue length, which the fixed-length
  window alone cannot convey);
* the model status — the inference-time table ``c(m, b)`` for every
  model and candidate batch size, and each model's remaining time to
  finish the requests already dispatched to it.

For the single-model experiment (Section 7.2.1) the model status is
removed, as in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.serve.request import RequestQueue
from repro.zoo.profiles import ModelProfile

__all__ = ["StateBuilder"]


class StateBuilder:
    """Builds fixed-length state vectors for the RL controller."""

    def __init__(
        self,
        profiles: Sequence[ModelProfile],
        batch_sizes: Sequence[int],
        tau: float,
        queue_window: int = 32,
        include_model_status: bool = True,
        wait_clip: float = 3.0,
    ):
        self.profiles = list(profiles)
        self.batch_sizes = tuple(batch_sizes)
        self.tau = float(tau)
        self.queue_window = int(queue_window)
        self.include_model_status = bool(include_model_status)
        self.wait_clip = float(wait_clip)
        self._latency_table = np.array(
            [
                [p.inference_time(b) / self.tau for b in self.batch_sizes]
                for p in self.profiles
            ]
        ).ravel()

    @property
    def dim(self) -> int:
        base = self.queue_window + 1
        if self.include_model_status:
            base += self._latency_table.size + len(self.profiles)
        return base

    def build(self, queue: RequestQueue, now: float, busy_until: Sequence[float]) -> np.ndarray:
        """Encode the current serving state as a flat vector."""
        waits = np.clip(queue.waiting_times(now, self.queue_window) / self.tau,
                        0.0, self.wait_clip)
        length = np.array([np.log1p(len(queue)) / np.log1p(1000.0)])
        parts = [waits, length]
        if self.include_model_status:
            remaining = np.array(
                [max(until - now, 0.0) / self.tau for until in busy_until]
            )
            parts.extend([self._latency_table, np.clip(remaining, 0.0, self.wait_clip)])
        return np.concatenate(parts)

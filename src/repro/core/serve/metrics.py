"""Serving metrics: the time series behind Figures 10 and 13-16.

Besides the in-run time series (arrival/dispatch records that the
figure benchmarks aggregate), every recording writes through to the
process-wide telemetry registry, so dashboards and the ``repro
telemetry`` snapshot see live serving counters without holding a
reference to any particular :class:`ServingMetrics` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.utils.reservoir import Reservoir

__all__ = ["DispatchRecord", "TimelineRow", "ServingMetrics",
           "BATCH_SIZE_BUCKETS", "LATENCY_BUCKETS"]

#: request batch sizes (the Section 7.2.1 candidates and their doublings).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0, 128.0)

#: per-request latency in seconds, bracketing the tau = 0.56 s SLO.
LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 0.56, 0.75, 1.0, 2.0, 5.0)


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatched batch."""

    time: float
    served: int
    overdue: int
    batch_size: int
    subset: tuple[int, ...]
    accuracy: float
    reward: float
    exceeding_time_sum: float


@dataclass(frozen=True)
class TimelineRow:
    """Aggregates over one time bucket."""

    time: float
    arrival_rate: float
    serve_rate: float
    overdue_rate: float
    accuracy: float
    mean_models: float


@dataclass
class ServingMetrics:
    """Accumulates arrivals and dispatches during a serving run."""

    arrivals: list[tuple[float, int]] = field(default_factory=list)
    dispatches: list[DispatchRecord] = field(default_factory=list)
    dropped: int = 0
    #: uniform sample of per-request latencies for streaming quantiles.
    latencies: Reservoir = field(default_factory=lambda: Reservoir(capacity=8192))

    def record_arrivals(self, time: float, count: int) -> None:
        """Record ``count`` requests arriving at ``time``."""
        if count:
            self.arrivals.append((time, count))
            telemetry.get_registry().counter(
                "repro_serve_requests_arrived_total", "Requests accepted into the queue."
            ).inc(count)

    def record_dispatch(self, record: DispatchRecord) -> None:
        """Record one dispatched batch (and mirror it into the registry)."""
        self.dispatches.append(record)
        registry = telemetry.get_registry()
        registry.counter(
            "repro_serve_requests_served_total", "Requests served by dispatched batches."
        ).inc(record.served)
        if record.overdue:
            registry.counter(
                "repro_serve_requests_overdue_total",
                "Served requests that overran the SLO tau.",
            ).inc(record.overdue)
        registry.counter(
            "repro_serve_dispatches_total", "Batches dispatched to models."
        ).inc()
        registry.histogram(
            "repro_serve_batch_size",
            "Hardware batch size chosen per dispatch.",
            buckets=BATCH_SIZE_BUCKETS,
        ).observe(record.batch_size)

    def record_latencies(self, values: np.ndarray) -> None:
        """Record the per-request latencies of one completed batch."""
        self.latencies.add_many(values)
        telemetry.get_registry().histogram(
            "repro_serve_dispatch_latency_seconds",
            "Per-request latency from arrival to batch completion.",
            buckets=LATENCY_BUCKETS,
        ).observe_many(values)

    def latency_quantile(self, q: float) -> float:
        """Estimated latency quantile (e.g. 0.99 for the p99) in seconds."""
        return self.latencies.quantile(q)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def total_arrived(self) -> int:
        return sum(count for _, count in self.arrivals)

    @property
    def total_served(self) -> int:
        return sum(d.served for d in self.dispatches)

    @property
    def total_overdue(self) -> int:
        return sum(d.overdue for d in self.dispatches)

    def overdue_fraction(self, since: float = 0.0) -> float:
        served = sum(d.served for d in self.dispatches if d.time >= since)
        overdue = sum(d.overdue for d in self.dispatches if d.time >= since)
        return overdue / served if served else 0.0

    def mean_accuracy(self, since: float = 0.0) -> float:
        """Request-weighted mean surrogate accuracy of served batches."""
        rows = [(d.served, d.accuracy) for d in self.dispatches if d.time >= since]
        total = sum(n for n, _ in rows)
        if not total:
            return 0.0
        return sum(n * a for n, a in rows) / total

    def mean_exceeding_time(self, since: float = 0.0) -> float:
        """Equation 5 over all served requests in the window."""
        rows = [d for d in self.dispatches if d.time >= since]
        total = sum(d.served for d in rows)
        if not total:
            return 0.0
        return sum(d.exceeding_time_sum for d in rows) / total

    def total_reward(self, since: float = 0.0) -> float:
        return sum(d.reward for d in self.dispatches if d.time >= since)

    # ------------------------------------------------------------------
    # time series
    # ------------------------------------------------------------------

    def timeline(self, bucket: float, start: float = 0.0, end: float | None = None) -> list[TimelineRow]:
        """Bucketed rates and accuracies — the curves of Figures 13-16."""
        if end is None:
            times = [t for t, _ in self.arrivals] + [d.time for d in self.dispatches]
            end = max(times, default=start)
        buckets = int(np.ceil((end - start) / bucket)) or 1
        arrived = np.zeros(buckets)
        served = np.zeros(buckets)
        overdue = np.zeros(buckets)
        acc_weighted = np.zeros(buckets)
        model_weighted = np.zeros(buckets)

        def index_of(t: float) -> int | None:
            if t < start or t >= start + buckets * bucket:
                return None
            return int((t - start) / bucket)

        for t, count in self.arrivals:
            i = index_of(t)
            if i is not None:
                arrived[i] += count
        for d in self.dispatches:
            i = index_of(d.time)
            if i is None:
                continue
            served[i] += d.served
            overdue[i] += d.overdue
            acc_weighted[i] += d.served * d.accuracy
            model_weighted[i] += d.served * len(d.subset)

        rows = []
        for i in range(buckets):
            rows.append(
                TimelineRow(
                    time=start + (i + 0.5) * bucket,
                    arrival_rate=arrived[i] / bucket,
                    serve_rate=served[i] / bucket,
                    overdue_rate=overdue[i] / bucket,
                    accuracy=acc_weighted[i] / served[i] if served[i] else 0.0,
                    mean_models=model_weighted[i] / served[i] if served[i] else 0.0,
                )
            )
        return rows

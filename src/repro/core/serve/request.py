"""Requests and the FIFO request queue.

Requests are processed strictly first-in-first-out (Section 5: a
delayed response beats a 'time out' error, so nothing is dropped by
default). The queue stores arrival timestamps only — at the arrival
rates of the Figure 14/15 experiments, millions of requests flow
through a run, so per-request objects are avoided.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import QueueOverflowError

__all__ = ["RequestQueue"]


class RequestQueue:
    """FIFO queue of request arrival times (simulated seconds)."""

    def __init__(self, capacity: int | None = None):
        self._arrivals: deque[float] = deque()
        self.capacity = capacity
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.total_dropped = 0
        self.total_requeued = 0

    def __len__(self) -> int:
        return len(self._arrivals)

    def __bool__(self) -> bool:
        return bool(self._arrivals)

    def push(self, arrival_time: float, count: int = 1) -> int:
        """Enqueue ``count`` requests arriving at ``arrival_time``.

        Returns how many were accepted; the rest are dropped when a
        capacity is configured (the paper sizes arrivals so the queue
        is not "filled up very quickly", Eq. 9).
        """
        accepted = count
        if self.capacity is not None:
            room = self.capacity - len(self._arrivals)
            accepted = max(0, min(count, room))
            self.total_dropped += count - accepted
        for _ in range(accepted):
            self._arrivals.append(arrival_time)
        self.total_enqueued += accepted
        return accepted

    def push_front(self, arrivals: np.ndarray) -> None:
        """Re-queue already-admitted requests at the head (FIFO order).

        Used when a dispatched batch fails before completing: the
        in-flight requests keep their original arrival times (their SLO
        clocks keep running) and go back to the front of the queue, so
        the retry serves them first. Capacity is not re-checked — these
        requests were admitted once already.
        """
        for arrival in reversed(np.asarray(arrivals, dtype=np.float64)):
            self._arrivals.appendleft(float(arrival))
        self.total_requeued += len(arrivals)

    def pop_oldest(self, count: int) -> np.ndarray:
        """Dequeue the ``count`` oldest arrival times (``q[0:b]``)."""
        count = min(count, len(self._arrivals))
        out = np.empty(count, dtype=np.float64)
        for i in range(count):
            out[i] = self._arrivals.popleft()
        self.total_dequeued += count
        return out

    def oldest_arrival(self) -> float:
        """Arrival time of ``q[0]`` (raises when empty)."""
        if not self._arrivals:
            raise QueueOverflowError("queue is empty")
        return self._arrivals[0]

    def oldest_wait(self, now: float) -> float:
        """``w(q0)``: how long the oldest request has been waiting."""
        return now - self.oldest_arrival()

    def waiting_times(self, now: float, length: int) -> np.ndarray:
        """Waiting times of the oldest requests, zero-padded/truncated.

        This is the queue-status feature vector of Section 5.2: shorter
        queues are padded with zeros, longer queues are truncated to the
        ``length`` oldest entries.
        """
        out = np.zeros(length, dtype=np.float64)
        for i, arrival in enumerate(self._arrivals):
            if i >= length:
                break
            out[i] = now - arrival
        return out

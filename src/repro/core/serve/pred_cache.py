"""Prediction caching for the inference service (Clipper-inspired).

Section 2.3 cites Clipper's latency optimisations, caching among them.
This extension memoises query results by input digest in front of a
deployed ensemble: repeated requests (the common case for UDF-driven
analytics, where the same image path appears in many rows) skip the
forward passes entirely.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PredictionCache"]


def _digest(array: np.ndarray) -> str:
    # dtype must be part of the key: int32 and float32 zeros of the same
    # shape share raw bytes, and serving one's cached prediction for the
    # other returns a wrong result.
    payload = np.ascontiguousarray(array)
    return hashlib.sha256(
        payload.tobytes()
        + str(payload.shape).encode("utf-8")
        + payload.dtype.str.encode("utf-8")
    ).hexdigest()


class PredictionCache:
    """An LRU result cache keyed by input digest."""

    def __init__(self, predict: Callable[[np.ndarray], Any], capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._predict = predict
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def query(self, data: np.ndarray) -> Any:
        """Predict for one input, serving repeats from the cache."""
        data = np.asarray(data)
        key = _digest(data)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        result = self._predict(data)
        self._entries[key] = result
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return result

    def invalidate_all(self) -> None:
        """Drop everything (call after re-deploying a model)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

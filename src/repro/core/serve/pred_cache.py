"""Prediction caching for the inference service (Clipper-inspired).

Section 2.3 cites Clipper's latency optimisations, caching among them.
This extension memoises query results by input digest in front of a
deployed ensemble: repeated requests (the common case for UDF-driven
analytics, where the same image path appears in many rows) skip the
forward passes entirely.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PredictionCache"]


def _digest(array: np.ndarray) -> str:
    # dtype must be part of the key: int32 and float32 zeros of the same
    # shape share raw bytes, and serving one's cached prediction for the
    # other returns a wrong result.
    payload = np.ascontiguousarray(array)
    return hashlib.sha256(
        payload.tobytes()
        + str(payload.shape).encode("utf-8")
        + payload.dtype.str.encode("utf-8")
    ).hexdigest()


class PredictionCache:
    """An LRU result cache keyed by input digest.

    ``predict`` may be ``None`` for batch-only use: callers that always
    supply ``predict_batch`` to :meth:`query_batch` (the SQL engine's
    UDF dispatcher) never need a per-item model function.
    """

    def __init__(self, predict: Callable[[np.ndarray], Any] | None,
                 capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._predict = predict
        self.capacity = int(capacity)
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def query(self, data: np.ndarray) -> Any:
        """Predict for one input, serving repeats from the cache."""
        if self._predict is None:
            raise ConfigurationError(
                "this cache has no per-item predict function; use query_batch"
            )
        data = np.asarray(data)
        key = _digest(data)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        result = self._predict(data)
        self._entries[key] = result
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return result

    def query_batch(
        self,
        batch: list[Any],
        predict_batch: Callable[[list[Any]], list[Any]] | None = None,
        key: Callable[[Any], Any] | None = None,
    ) -> list[Any]:
        """Serve many inputs with at most one underlying model call.

        Distinct inputs absent from the cache are collected in
        first-seen order and handed to ``predict_batch`` as one list
        (falling back to per-item ``predict`` calls when omitted);
        everything already cached — including duplicates *within* the
        batch — is served without touching the model. ``key`` overrides
        the array digest for non-array inputs (e.g. SQL scalars).
        Returns results aligned with ``batch``.
        """
        keyed = [
            (key(item) if key is not None else _digest(np.asarray(item)), item)
            for item in batch
        ]
        # Snapshot hits before inserting: a fill larger than capacity
        # may evict entries this very batch still needs.
        cached: dict[Any, Any] = {}
        miss_keys: list[Any] = []
        miss_items: list[Any] = []
        missing = set()
        for k, item in keyed:
            if k in cached or k in missing:
                continue
            if k in self._entries:
                self._entries.move_to_end(k)
                cached[k] = self._entries[k]
            else:
                missing.add(k)
                miss_keys.append(k)
                miss_items.append(item)
        fresh: dict[Any, Any] = {}
        if miss_items:
            if predict_batch is not None:
                outputs = list(predict_batch(list(miss_items)))
            elif self._predict is not None:
                outputs = [self._predict(np.asarray(item)) for item in miss_items]
            else:
                raise ConfigurationError(
                    "query_batch needs predict_batch when the cache has "
                    "no per-item predict function"
                )
            if len(outputs) != len(miss_items):
                raise ConfigurationError(
                    f"predict_batch returned {len(outputs)} results "
                    f"for {len(miss_items)} inputs"
                )
            for k, value in zip(miss_keys, outputs):
                fresh[k] = value
                self._entries[k] = value
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
        self.misses += len(miss_items)
        self.hits += len(batch) - len(miss_items)
        return [
            fresh[k] if k in fresh else cached[k] for k, _ in keyed
        ]

    def invalidate_all(self) -> None:
        """Drop everything (call after re-deploying a model)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

"""The serving reward (Equation 7) and SLO accounting.

For one dispatched batch, the reward is

    a(M[v]) * (b - beta * |{s in batch : l(s) > tau}|)

where ``a(M[v])`` is the (surrogate, validation-set) accuracy of the
selected ensemble, ``b`` the number of requests served, and ``beta``
the accuracy/latency balance. The exceeding-time objective for the
single-model case (Equation 5) is also provided for evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative

__all__ = ["batch_reward", "count_overdue", "mean_exceeding_time"]


def count_overdue(latencies: np.ndarray, tau: float) -> int:
    """``|{s : l(s) > tau}|``."""
    return int(np.sum(latencies > tau))


def batch_reward(accuracy: float, served: int, overdue: int, beta: float,
                 normalizer: float = 1.0) -> float:
    """Equation 7, optionally normalised (e.g. by ``max(B)``) for RL."""
    check_non_negative("served", served)
    check_non_negative("overdue", overdue)
    return accuracy * (served - beta * overdue) / normalizer


def mean_exceeding_time(latencies: np.ndarray, tau: float) -> float:
    """Equation 5: mean of ``max(0, l(s) - tau)`` over the requests."""
    if latencies.size == 0:
        return 0.0
    return float(np.mean(np.maximum(latencies - tau, 0.0)))

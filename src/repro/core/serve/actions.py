"""The RL action space: (model subset, batch size) pairs.

The action space of Section 5.2 has size ``(2^|M| - 1) * |B|`` — every
non-empty model subset crossed with every candidate batch size (the
all-zeros selection is excluded). Validity masks restrict sampling to
subsets of the currently idle models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Action", "ActionSpace"]


@dataclass(frozen=True)
class Action:
    """One decodable action."""

    subset: tuple[int, ...]  # indices of selected models
    batch_size: int

    def selection_vector(self, num_models: int) -> np.ndarray:
        v = np.zeros(num_models, dtype=bool)
        v[list(self.subset)] = True
        return v


class ActionSpace:
    """Enumerates and masks the joint (subset, batch) actions."""

    def __init__(self, num_models: int, batch_sizes: Sequence[int]):
        if num_models < 1:
            raise ConfigurationError(f"num_models must be >= 1, got {num_models}")
        sizes = tuple(sorted(set(int(b) for b in batch_sizes)))
        if not sizes:
            raise ConfigurationError("batch_sizes must be non-empty")
        self.num_models = int(num_models)
        self.batch_sizes = sizes
        self.actions: list[Action] = []
        for mask in range(1, 2**self.num_models):
            subset = tuple(i for i in range(self.num_models) if mask >> i & 1)
            for size in sizes:
                self.actions.append(Action(subset=subset, batch_size=size))

    def __len__(self) -> int:
        return len(self.actions)

    def decode(self, index: int) -> Action:
        return self.actions[index]

    def valid_mask(self, idle_models: Sequence[bool]) -> np.ndarray:
        """Actions whose whole subset is currently idle."""
        idle = np.asarray(idle_models, dtype=bool)
        if idle.shape[0] != self.num_models:
            raise ConfigurationError(
                f"idle mask length {idle.shape[0]} != {self.num_models} models"
            )
        mask = np.zeros(len(self.actions), dtype=bool)
        for i, action in enumerate(self.actions):
            mask[i] = all(idle[m] for m in action.subset)
        return mask

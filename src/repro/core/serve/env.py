"""The serving environment simulator (Section 7.2).

Requests arrive following the sine process, queue FIFO, and are
dispatched by a controller onto the deployed models. Latencies come
from the affine ``c(m, b)`` model, so a batch's completion time — and
therefore every request's overdue status and the Equation-7 reward —
is known at dispatch time, which is what lets the actor-critic receive
immediate rewards.

A dispatch to subset ``v`` at batch size ``b`` occupies each selected
model ``m`` for ``c(m, b)`` seconds; a selected model that is still
busy queues the batch behind its in-flight work (the RL state's
"time left to finish the existing requests dispatched to it"). The
batch completes (and its responses leave) when the slowest selected
model finishes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import chaos, telemetry
from repro.core.serve.arrival import SineArrival
from repro.core.serve.controllers import Controller, Dispatch, Wait
from repro.core.serve.ensemble import EnsembleScorer
from repro.core.serve.metrics import DispatchRecord, ServingMetrics
from repro.core.serve.request import RequestQueue
from repro.exceptions import ConfigurationError, InjectedFault
from repro.sim import Simulator
from repro.utils.retry import RetryPolicy
from repro.zoo.profiles import ModelProfile

__all__ = ["ServingEnv"]


class ServingEnv:
    """Event-driven serving loop over a simulated clock."""

    def __init__(
        self,
        profiles: Sequence[ModelProfile],
        controller: Controller,
        arrival: SineArrival,
        tau: float,
        batch_sizes: Sequence[int],
        scorer: EnsembleScorer | None = None,
        sim: Simulator | None = None,
        queue_capacity: int | None = 5000,
        arrival_span: float = 0.1,
        beta: float = 1.0,
        reward_shaping: str = "batch",
        shaping_beta: float | None = None,
        dispatch_retry: RetryPolicy | None = None,
    ):
        if not profiles:
            raise ConfigurationError("at least one model is required")
        if scorer is None and len(profiles) > 1:
            raise ConfigurationError("multi-model serving needs an EnsembleScorer")
        self.profiles = list(profiles)
        self.controller = controller
        self.arrival = arrival
        self.tau = float(tau)
        self.batch_sizes = tuple(sorted(set(int(b) for b in batch_sizes)))
        self.scorer = scorer
        self.sim = sim if sim is not None else Simulator()
        self.queue = RequestQueue(capacity=queue_capacity)
        self.metrics = ServingMetrics()
        self.arrival_span = float(arrival_span)
        self.beta = float(beta)
        if reward_shaping not in ("batch", "per_request"):
            raise ConfigurationError(
                f"reward_shaping must be 'batch' or 'per_request', got {reward_shaping!r}"
            )
        #: What the *learner* sees. "batch" is Equation 7 normalised by
        #: max(B); "per_request" divides by the served count instead,
        #: which keeps the ensemble-accuracy signal at constant scale
        #: across arrival phases (metrics always record Equation 7).
        self.reward_shaping = reward_shaping
        #: beta used in the learner's shaped reward only (defaults to
        #: ``beta``); raising it restores the throughput incentive that
        #: per-request normalisation weakens.
        self.shaping_beta = float(shaping_beta) if shaping_beta is not None else self.beta
        self.busy_until = [0.0] * len(self.profiles)
        self._wake_at: float | None = None
        self._max_batch = self.batch_sizes[-1]
        #: policy for re-dispatching a batch whose execution failed at
        #: the ``serve.dispatch`` fault point; after ``max_attempts``
        #: consecutive failures the batch is shed (counted as dropped)
        #: so one poisoned batch cannot stall the whole queue.
        self.dispatch_retry = (
            dispatch_retry
            if dispatch_retry is not None
            else RetryPolicy(max_attempts=4, base_delay=0.005, max_delay=0.1, jitter=0.0)
        )
        self._dispatch_failures = 0

    # ------------------------------------------------------------------
    # views used by controllers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def model_idle(self, index: int) -> bool:
        """Whether model ``index`` has no in-flight work right now."""
        return self.busy_until[index] <= self.now + 1e-12

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, horizon: float) -> ServingMetrics:
        """Generate arrivals for ``horizon`` seconds and drain the queue."""
        self.sim.spawn(self._arrival_process(horizon))
        # Slack after the horizon lets in-flight batches finish and the
        # final deadline-triggered dispatches fire.
        self.sim.run(until=self.sim.now + horizon + 10.0 * self.tau)
        return self.metrics

    def _arrival_process(self, horizon: float):
        end = self.sim.now + horizon
        while self.sim.now < end:
            count = self.arrival.count(self.sim.now, self.arrival_span)
            if count:
                accepted = self.queue.push(self.sim.now, count)
                self.metrics.record_arrivals(self.sim.now, accepted)
                if count > accepted:
                    telemetry.get_registry().counter(
                        "repro_serve_requests_dropped_total",
                        "Arrivals rejected by a full queue.",
                    ).inc(count - accepted)
                self.metrics.dropped = self.queue.total_dropped
                self._update_queue_gauge()
                self._maybe_decide()
            yield self.arrival_span

    # ------------------------------------------------------------------
    # decision + dispatch
    # ------------------------------------------------------------------

    def _maybe_decide(self) -> None:
        # Controllers are consulted whenever requests are queued; each
        # controller decides for itself whether its models can act (an
        # RL pending action may fire a deadline dispatch even while the
        # models are momentarily finishing earlier work).
        while self.queue:
            decision = self.controller.decide(self)
            if isinstance(decision, Dispatch):
                if not self._dispatch(decision):
                    # Failed dispatch: the requests were re-queued (or
                    # shed) and a retry wake-up is scheduled; stop
                    # deciding at this instant to let backoff apply.
                    return
            elif isinstance(decision, Wait):
                if decision.until is not None:
                    self._schedule_wake(decision.until)
                return
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"bad controller decision: {decision!r}")

    def _update_queue_gauge(self) -> None:
        telemetry.get_registry().gauge(
            "repro_serve_queue_depth", "Requests currently waiting in the queue."
        ).set(len(self.queue))

    def _schedule_wake(self, when: float) -> None:
        when = max(when, self.now + 1e-6)
        if self._wake_at is not None and self._wake_at <= when + 1e-9:
            return
        self._wake_at = when
        self.sim.schedule(when - self.now, self._on_wake, when)

    def _on_wake(self, token: float) -> None:
        if self._wake_at == token:
            self._wake_at = None
        self._maybe_decide()

    def _dispatch(self, decision: Dispatch) -> bool:
        """Execute one dispatch; returns whether the batch was served.

        The batch passes through the ``serve.dispatch`` fault point: an
        injected exception/drop re-queues the in-flight requests at the
        front of the queue and schedules a backoff retry (the batcher's
        resubmission path); injected latency stretches the batch's
        completion time instead.
        """
        subset = tuple(sorted(decision.subset))
        if not subset:
            raise ConfigurationError("dispatch must select at least one model")
        take = min(decision.take, len(self.queue))
        if take <= 0:
            return True
        arrivals = self.queue.pop_oldest(take)
        self._update_queue_gauge()
        try:
            injected_latency = chaos.fire("serve.dispatch")
        except InjectedFault:
            self._dispatch_failures += 1
            registry = telemetry.get_registry()
            registry.counter(
                "repro_serve_dispatch_retries_total",
                "Dispatched batches that failed and were resubmitted.",
            ).inc()
            if self._dispatch_failures >= self.dispatch_retry.max_attempts:
                # Shed the batch: repeated failures must not stall the
                # queue behind one poisoned dispatch.
                self.queue.total_dropped += take
                self.metrics.dropped = self.queue.total_dropped
                registry.counter(
                    "repro_serve_requests_dropped_total",
                    "Arrivals rejected by a full queue.",
                ).inc(take, reason="dispatch_failed")
                self._dispatch_failures = 0
                self._schedule_wake(self.now + self.dispatch_retry.base_delay)
                return False
            self.queue.push_front(arrivals)
            self._update_queue_gauge()
            self._schedule_wake(
                self.now + self.dispatch_retry.delay(self._dispatch_failures - 1)
            )
            return False
        self._dispatch_failures = 0
        completion = self.now
        for m in subset:
            duration = self.profiles[m].inference_time(decision.batch_size) + injected_latency
            start = max(self.busy_until[m], self.now)
            self.busy_until[m] = start + duration
            completion = max(completion, self.busy_until[m])
            self.sim.schedule(self.busy_until[m] - self.now, self._on_model_free)
        latencies = completion - arrivals
        self.metrics.record_latencies(latencies)
        overdue = int(np.sum(latencies > self.tau))
        accuracy = (
            self.scorer.accuracy(subset)
            if self.scorer is not None
            else self.profiles[subset[0]].top1_accuracy
        )
        reward = accuracy * (take - self.beta * overdue) / self._max_batch
        if self.reward_shaping == "per_request":
            shaped = accuracy * (take - self.shaping_beta * overdue) / take
        else:
            shaped = accuracy * (take - self.shaping_beta * overdue) / self._max_batch
        self.metrics.record_dispatch(
            DispatchRecord(
                time=self.now,
                served=take,
                overdue=overdue,
                batch_size=decision.batch_size,
                subset=subset,
                accuracy=accuracy,
                reward=reward,
                exceeding_time_sum=float(np.sum(np.maximum(latencies - self.tau, 0.0))),
            )
        )
        self.controller.notify_reward(shaped)
        return True

    def _on_model_free(self) -> None:
        self._maybe_decide()

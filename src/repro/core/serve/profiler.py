"""Latency profiling of deployed networks.

The paper's model cards (Figure 3) were measured by running each model
50 iterations per batch size. This module does the same for networks
deployed on the NumPy engine: it times forward passes across the
candidate batch sizes and fits the affine latency model

    c(b) = overhead_s + per_image_s * b

by least squares, yielding a :class:`~repro.zoo.profiles.ModelProfile`
that the serving environment and controllers can consume. This is how a
*real* deployment (rather than a Figure 3 card) enters the
accuracy/latency optimisation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.tensor.network import Network
from repro.zoo.profiles import ModelProfile

__all__ = ["profile_network", "fit_affine_latency"]


def fit_affine_latency(batch_sizes: Sequence[int], times: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``times ~ overhead + per_image * batch``.

    Returns ``(overhead_s, per_image_s)``; both are clamped to be
    non-negative (a tiny negative intercept can fall out of noisy
    measurements).
    """
    sizes = np.asarray(batch_sizes, dtype=np.float64)
    observed = np.asarray(times, dtype=np.float64)
    if sizes.shape != observed.shape or sizes.size < 2:
        raise ConfigurationError("need >= 2 (batch size, time) observations")
    design = np.vstack([np.ones_like(sizes), sizes]).T
    (overhead, per_image), *_ = np.linalg.lstsq(design, observed, rcond=None)
    return max(float(overhead), 0.0), max(float(per_image), 1e-9)


def profile_network(
    network: Network,
    name: str,
    batch_sizes: Sequence[int] = (1, 8, 16, 32),
    iterations: int = 5,
    accuracy: float = 0.0,
    family: str = "deployed",
    clock=None,
) -> ModelProfile:
    """Measure a network's forward latency and build a model card.

    ``iterations`` forward passes are timed per batch size (after one
    warm-up pass) and the per-batch median feeds the affine fit. The
    memory figure is the parameter footprint. Timing reads the
    injectable telemetry clock unless ``clock`` (a ``() -> seconds``
    callable) overrides it, so tests can make the measurements exact.
    """
    if clock is None:
        clock = telemetry.get_clock().now
    if network.input_shape is None:
        raise ConfigurationError("network must be built before profiling")
    sizes = sorted(set(int(b) for b in batch_sizes))
    if len(sizes) < 2 or sizes[0] < 1:
        raise ConfigurationError(f"need >= 2 positive batch sizes, got {batch_sizes}")
    rng = np.random.default_rng(0)
    medians = []
    with telemetry.get_tracer().span("profile_network", model=name) as span:
        for batch in sizes:
            x = rng.normal(size=(batch, *network.input_shape))
            network.forward(x)  # warm-up
            samples = []
            for _ in range(iterations):
                start = clock()
                network.forward(x)
                samples.append(clock() - start)
            medians.append(float(np.median(samples)))
        span.tag(batch_sizes=list(sizes), iterations=iterations)
    telemetry.get_registry().counter(
        "repro_serve_profile_runs_total", "Deployed-network profiling runs."
    ).inc()
    overhead, per_image = fit_affine_latency(sizes, medians)
    memory_mb = sum(p.nbytes for p in network.params.values()) / 1e6
    return ModelProfile(
        name=name,
        family=family,
        top1_accuracy=float(accuracy),
        overhead_s=overhead,
        per_image_s=per_image,
        memory_mb=memory_mb,
    )

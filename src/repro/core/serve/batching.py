"""Greedy batch-size selection (Algorithm 3).

The greedy policy always applies the largest possible batch size: if
the queue holds at least ``max(B)`` requests, dispatch immediately;
otherwise take the largest candidate batch that fits the queue and
dispatch only when the oldest request is about to overrun the SLO
(``c(b) + w(q0) + delta >= tau``), where ``delta`` is the AIMD-style
back-off constant (0.1 tau by default).

When fewer requests than ``min(B)`` are queued, Algorithm 3's line 7
has no valid batch size (``{b in B : b <= len(q)}`` is empty), so the
greedy policy keeps waiting for more arrivals. These *leftover*
requests are the ones the paper observes going overdue when arrivals
are slow; since a delayed response beats a time-out, the implementation
serves them in a padded ``min(B)`` batch once they have already missed
the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import telemetry
from repro.core.serve.request import RequestQueue
from repro.exceptions import ConfigurationError

__all__ = ["GreedyBatcher", "BatchDecision", "DEFAULT_BATCH_SIZES"]

#: the candidate list of Section 7.2.1.
DEFAULT_BATCH_SIZES = (16, 32, 48, 64)

#: tolerance for the dispatch-threshold comparisons. ``next_deadline``
#: computes the trigger instant as ``arrival + tau - c(b) - delta`` while
#: ``_decide`` recomputes the pressure as ``c(b) + (now - arrival) + delta``;
#: the two float expressions can disagree by an ulp, which would make an
#: event-driven caller that sleeps exactly until the trigger spin forever
#: at an instant where ``decide`` still says wait.
_EPS = 1e-9


@dataclass(frozen=True)
class BatchDecision:
    """What the batcher chose to do right now."""

    dispatch: bool
    batch_size: int = 0  # the b whose c(b) applies (hardware batch)
    take: int = 0  # how many queued requests are actually served


class GreedyBatcher:
    """Algorithm 3, parameterised by the latency model ``c(b)``."""

    def __init__(
        self,
        batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
        latency: Callable[[int], float] = None,
        tau: float = 0.56,
        backoff: float | None = None,
    ):
        if latency is None:
            raise ConfigurationError("a latency model c(b) is required")
        sizes = sorted(set(int(b) for b in batch_sizes))
        if not sizes or sizes[0] <= 0:
            raise ConfigurationError(f"batch sizes must be positive, got {batch_sizes}")
        self.batch_sizes = tuple(sizes)
        self.latency = latency
        self.tau = float(tau)
        #: the AIMD back-off constant delta (default 0.1 tau).
        self.backoff = float(backoff) if backoff is not None else 0.1 * self.tau

    @property
    def max_batch(self) -> int:
        return self.batch_sizes[-1]

    @property
    def min_batch(self) -> int:
        return self.batch_sizes[0]

    def fit_batch(self, queue_length: int) -> int | None:
        """Largest candidate batch <= queue length (Algorithm 3 line 7).

        Returns ``None`` when the queue is shorter than every candidate
        — the leftover-requests case.
        """
        best: int | None = None
        for size in self.batch_sizes:
            if size <= queue_length:
                best = size
            else:
                break
        return best

    def decide(self, queue: RequestQueue, now: float) -> BatchDecision:
        """One pass of Algorithm 3's loop body (decision counted)."""
        decision = self._decide(queue, now)
        telemetry.get_registry().counter(
            "repro_serve_batcher_decisions_total",
            "Greedy batcher decisions, by action taken.",
        ).inc(action="dispatch" if decision.dispatch else "wait")
        return decision

    def _decide(self, queue: RequestQueue, now: float) -> BatchDecision:
        if not queue:
            return BatchDecision(dispatch=False)
        if len(queue) >= self.max_batch:
            return BatchDecision(dispatch=True, batch_size=self.max_batch, take=self.max_batch)
        batch = self.fit_batch(len(queue))
        if batch is None:
            # Leftovers: no candidate batch fits; serve them (padded to
            # min(B)) only once they have already overrun the SLO.
            if queue.oldest_wait(now) >= self.tau - _EPS:
                return BatchDecision(
                    dispatch=True, batch_size=self.min_batch, take=len(queue)
                )
            return BatchDecision(dispatch=False)
        deadline_pressure = self.latency(batch) + queue.oldest_wait(now) + self.backoff
        if deadline_pressure >= self.tau - _EPS:
            return BatchDecision(dispatch=True, batch_size=batch, take=min(batch, len(queue)))
        return BatchDecision(dispatch=False)

    def next_deadline(self, queue: RequestQueue, now: float) -> float | None:
        """When the pending queue will trigger a deadline dispatch.

        Lets an event-driven server sleep exactly until Algorithm 3's
        line-8 condition (or the leftover grace rule) will first hold,
        instead of polling.
        """
        if not queue:
            return None
        batch = self.fit_batch(len(queue))
        if batch is None:
            trigger = queue.oldest_arrival() + self.tau
        else:
            trigger = queue.oldest_arrival() + self.tau - self.latency(batch) - self.backoff
        return max(trigger, now)

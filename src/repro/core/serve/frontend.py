"""The high-concurrency serving front end (admission + backpressure).

The paper's inference service is the subsystem that must face "millions
of users" (Sections 6-7): many concurrent clients hammering one
deployed ensemble. This module turns the synchronous gateway→ensemble
call chain into an event-loop front end with explicit queueing and
flow control, in three layers:

* :class:`ServeFrontend` — the *sans-io core*: a pure, clock-driven
  state machine that admits or sheds each request (bounded accept
  queue, deadline-aware load shedding, per-client token-bucket rate
  limits), feeds the admitted backlog to the SLO-aware
  :class:`~repro.core.serve.batching.GreedyBatcher`, and accounts every
  outcome in the telemetry registry. Because every method takes ``now``
  explicitly, the same core runs bit-identically under a real clock, a
  :class:`~repro.telemetry.ManualClock`, or the discrete-event
  :class:`~repro.sim.Simulator` (see :mod:`repro.core.serve.loadgen`).
* :class:`AsyncServeFrontend` — the :mod:`asyncio` shell: concurrent
  clients ``await submit(...)``; one cooperative dispatcher task drains
  the core, executes batches against a pluggable executor (the deployed
  ensemble), and resolves the per-request futures. Shed requests fail
  fast with :class:`~repro.exceptions.RequestShedError` instead of
  queueing without bound — that is the backpressure contract.
* :class:`ScalingAdvisor` — autoscaling hints derived from the *live*
  telemetry gauges the core maintains (queue depth, rolling p95
  latency), with watermarks and a cooldown so the hint does not flap.

Fault points: ``frontend.accept`` fires on every admission attempt and
``frontend.dispatch`` on every batch hand-off, so chaos plans can
exercise shedding and the bounded dispatch-retry path deterministically
(see :mod:`repro.chaos`).
"""

from __future__ import annotations

import asyncio
import inspect
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import chaos, telemetry
from repro.core.serve.batching import DEFAULT_BATCH_SIZES, GreedyBatcher
from repro.core.serve.metrics import LATENCY_BUCKETS
from repro.exceptions import (
    ConfigurationError,
    InjectedFault,
    RequestShedError,
)
from repro.tenancy import DEFAULT_TENANT
from repro.utils.reservoir import Reservoir
from repro.utils.retry import RetryPolicy

__all__ = [
    "TokenBucket",
    "FrontendConfig",
    "FrontendRequest",
    "PendingQueue",
    "DispatchPlan",
    "ServeFrontend",
    "AsyncServeFrontend",
    "ScalingAdvisor",
]


class TokenBucket:
    """A deterministic token bucket (the per-client rate limiter).

    ``rate`` tokens accrue per second up to ``burst``; each admitted
    request costs one token. Refill is computed lazily from the
    timestamps handed in by the caller, so the bucket is a pure
    function of its call sequence — no wall clock, no background task.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.tokens = self.burst
        self._last: float | None = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        if self._last is None or now > self._last:
            self._last = now

    def try_take(self, now: float, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; returns 0.0 on success.

        On failure the bucket is left untouched and the return value is
        the ``retry_after`` hint: seconds until enough tokens will have
        accrued.
        """
        self._refill(now)
        if self.tokens + 1e-12 >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate

    def peek(self, now: float, cost: float = 1.0) -> float:
        """The ``retry_after`` a :meth:`try_take` at ``now`` would return.

        Refills but never spends, so admission pipelines can test every
        predicate before consuming any token.
        """
        self._refill(now)
        if self.tokens + 1e-12 >= cost:
            return 0.0
        return (cost - self.tokens) / self.rate

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (after lazy refill)."""
        self._refill(now)
        return self.tokens


@dataclass(frozen=True)
class FrontendConfig:
    """Knobs of the serving front end (see docs/SERVING.md).

    ``latency`` is the per-batch service model ``c(b)`` (the same one
    the :class:`~repro.core.serve.batching.GreedyBatcher` plans with);
    everything else bounds how much work the front end will accept.
    """

    #: the per-batch latency model c(b), in seconds.
    latency: Callable[[int], float]
    #: the SLO deadline tau, in seconds (Section 7.2's 0.56 default).
    tau: float = 0.56
    #: candidate hardware batch sizes handed to the greedy batcher.
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES
    #: bounded accept queue: requests beyond this are shed (queue_full).
    max_queue: int = 1024
    #: admit only if the predicted queueing delay fits inside
    #: ``tau * deadline_slack`` (deadline-aware load shedding); raise
    #: above 1.0 to trade tail latency for fewer sheds.
    deadline_slack: float = 1.0
    #: per-client token-bucket rate (requests/second); None disables
    #: rate limiting entirely.
    rate_limit: float | None = None
    #: per-client burst allowance (defaults to one second of rate).
    burst: float | None = None
    #: per-*tenant* token-bucket rate, layered over the per-client
    #: buckets: one tenant's aggregate traffic (any number of clients)
    #: cannot exceed this. None disables the tenant layer.
    tenant_rate_limit: float | None = None
    #: per-tenant burst allowance (defaults to one second of rate).
    tenant_burst: float | None = None
    #: per-tenant rate overrides (tenant name -> requests/second);
    #: tenants not listed fall back to ``tenant_rate_limit``.
    tenant_rate_limits: dict[str, float] | None = None
    #: cap on the fraction of ``max_queue`` one tenant may occupy
    #: (0 < share <= 1); None disables the cap. With the cap, a
    #: flooding tenant fills only its slice of the accept queue and
    #: other tenants keep admitting.
    tenant_max_queue_share: float | None = None
    #: bounded retry schedule for batches that fail at the
    #: ``frontend.dispatch`` fault point; after ``max_attempts``
    #: consecutive failures the batch is shed (dispatch_failed).
    dispatch_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay=0.005, max_delay=0.1, jitter=0.0
        )
    )
    #: AIMD back-off constant handed to the greedy batcher
    #: (None = the batcher's 0.1 * tau default).
    batcher_backoff: float | None = None

    def __post_init__(self):
        if self.max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.deadline_slack <= 0:
            raise ConfigurationError(
                f"deadline_slack must be > 0, got {self.deadline_slack}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ConfigurationError(
                f"rate_limit must be > 0 (or None), got {self.rate_limit}"
            )
        if self.tenant_rate_limit is not None and self.tenant_rate_limit <= 0:
            raise ConfigurationError(
                f"tenant_rate_limit must be > 0 (or None), got {self.tenant_rate_limit}"
            )
        if self.tenant_max_queue_share is not None and not (
            0.0 < self.tenant_max_queue_share <= 1.0
        ):
            raise ConfigurationError(
                "tenant_max_queue_share must be in (0, 1] (or None), "
                f"got {self.tenant_max_queue_share}"
            )


@dataclass
class FrontendRequest:
    """One admitted request moving through the front end."""

    seq: int
    client_id: str
    payload: Any
    arrival: float
    deadline: float
    #: owning tenant, for the tenant-scoped limiter and accounting.
    tenant: str = DEFAULT_TENANT
    #: terminal state: set exactly once by complete()/shed.
    completed_at: float | None = None
    shed_reason: str | None = None
    #: optional hook invoked when the request is shed *after* admission
    #: (dispatch failure, shutdown); shells use it to fail futures or
    #: wake simulated clients.
    on_shed: Callable[["FrontendRequest", RequestShedError], None] | None = None
    #: the asyncio future the async shell resolves (None elsewhere).
    future: Any = None

    @property
    def done(self) -> bool:
        """Whether the request reached a terminal state."""
        return self.completed_at is not None or self.shed_reason is not None


class PendingQueue:
    """FIFO queue of admitted :class:`FrontendRequest` objects.

    Duck-types the :class:`~repro.core.serve.request.RequestQueue`
    surface the :class:`~repro.core.serve.batching.GreedyBatcher`
    consults (``__len__``, ``oldest_arrival``, ``oldest_wait``), while
    carrying whole request objects so responses can be routed back to
    their clients.
    """

    def __init__(self):
        self._requests: deque[FrontendRequest] = deque()
        self._by_tenant: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._requests)

    def __bool__(self) -> bool:
        return bool(self._requests)

    def count(self, tenant: str) -> int:
        """Queued requests currently owned by ``tenant``."""
        return self._by_tenant.get(tenant, 0)

    def append(self, request: FrontendRequest) -> None:
        """Enqueue one admitted request at the tail."""
        self._requests.append(request)
        self._by_tenant[request.tenant] = self._by_tenant.get(request.tenant, 0) + 1

    def push_front(self, requests: Sequence[FrontendRequest]) -> None:
        """Re-queue already-admitted requests at the head (FIFO order)."""
        for request in reversed(requests):
            self._requests.appendleft(request)
            self._by_tenant[request.tenant] = self._by_tenant.get(request.tenant, 0) + 1

    def pop(self, count: int) -> list[FrontendRequest]:
        """Dequeue the ``count`` oldest requests."""
        count = min(count, len(self._requests))
        popped = [self._requests.popleft() for _ in range(count)]
        for request in popped:
            self._by_tenant[request.tenant] -= 1
        return popped

    def oldest_arrival(self) -> float:
        """Arrival time of the head request (the batcher's ``q[0]``)."""
        return self._requests[0].arrival

    def oldest_wait(self, now: float) -> float:
        """``w(q0)``: how long the head request has been waiting."""
        return now - self._requests[0].arrival


@dataclass
class DispatchPlan:
    """One batch the core has committed to dispatch.

    The shell (async or simulated) executes it — the core has already
    charged the ``frontend.dispatch`` fault point, so ``extra_latency``
    carries any injected slow-down the execution must absorb.
    """

    requests: list[FrontendRequest]
    batch_size: int
    extra_latency: float = 0.0

    @property
    def take(self) -> int:
        """How many requests ride in this batch."""
        return len(self.requests)


class ServeFrontend:
    """Sans-io core: admission control + SLO-aware batch planning.

    Every method takes ``now`` explicitly; the core never reads a
    clock, sleeps, or touches an event loop. Shells drive it:

    * ``offer(client, payload, now)`` — admit or raise
      :class:`~repro.exceptions.RequestShedError`;
    * ``poll(now)`` — collect the batches the greedy batcher wants
      dispatched right now;
    * ``next_wake(now)`` — when to poll again if nothing else happens;
    * ``complete(plan, now)`` — account a finished batch.
    """

    def __init__(
        self,
        config: FrontendConfig,
        capacity: Callable[[float], tuple[int, float]] | None = None,
    ):
        self.config = config
        self.batcher = GreedyBatcher(
            config.batch_sizes,
            latency=config.latency,
            tau=config.tau,
            backoff=config.batcher_backoff,
        )
        #: live backend capacity hook: ``capacity(now) -> (live_replicas,
        #: head_delay_seconds)``; the admission estimate divides queue
        #: drain across live replicas and adds the head-of-line delay.
        self.capacity = capacity if capacity is not None else (lambda now: (1, 0.0))
        self.pending = PendingQueue()
        self._buckets: dict[str, TokenBucket] = {}
        self._tenant_buckets: dict[str, TokenBucket] = {}
        self._seq = 0
        self._dispatch_failures = 0
        self._retry_at: float | None = None
        self._latency_sample = Reservoir(capacity=4096)
        #: terminal-outcome counts, by reason ("served" included).
        self.outcomes: dict[str, int] = {}
        #: the same counts broken down per tenant.
        self.tenant_outcomes: dict[str, dict[str, int]] = {}
        self.admitted = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def estimated_delay(self, now: float) -> float:
        """Predicted queueing delay a request admitted at ``now`` faces.

        A conservative M/D/c-style estimate: the backlog drains in
        ``ceil((depth + 1) / max_batch)`` batches of ``c(max_batch)``
        seconds each, spread across the live replicas, behind whatever
        head-of-line delay the capacity hook reports.
        """
        live, head_delay = self.capacity(now)
        live = max(1, int(live))
        batches = math.ceil((len(self.pending) + 1) / self.batcher.max_batch)
        return max(0.0, head_delay) + batches * self.batcher.latency(
            self.batcher.max_batch
        ) / live

    def _tenant_rate(self, tenant: str) -> float | None:
        overrides = self.config.tenant_rate_limits or {}
        if tenant in overrides:
            return overrides[tenant]
        return self.config.tenant_rate_limit

    def offer(
        self,
        client_id: str,
        payload: Any,
        now: float,
        tenant: str = DEFAULT_TENANT,
    ) -> FrontendRequest:
        """Admit one request or shed it with a ``retry_after`` hint.

        The admission pipeline, in order: the ``frontend.accept`` fault
        point (plus the tenant-scoped
        ``frontend.accept.tenant.<tenant>`` point, so chaos plans can
        target one tenant's traffic), the per-tenant token bucket, the
        per-client token bucket, the tenant queue-share cap, the
        bounded accept queue, and the deadline-aware shed test. Raises
        :class:`~repro.exceptions.RequestShedError` on any refusal.
        """
        arrival = now
        try:
            arrival += chaos.fire("frontend.accept")
            arrival += chaos.fire(f"frontend.accept.tenant.{tenant}")
        except InjectedFault as exc:
            raise self._shed(
                "fault", self.batcher.backoff, now, detail=str(exc), tenant=tenant
            ) from exc
        # Peek both buckets first and only debit them once every other
        # admission check has passed: a request shed later in the
        # pipeline must not consume a token, or one throttled client
        # (or a full queue) would drain its tenant's bucket and shed
        # well-behaved co-tenant clients as tenant_rate_limit.
        tenant_rate = self._tenant_rate(tenant)
        tenant_bucket = None
        if tenant_rate is not None:
            tenant_bucket = self._tenant_buckets.get(tenant)
            if tenant_bucket is None:
                tenant_bucket = self._tenant_buckets[tenant] = TokenBucket(
                    tenant_rate, self.config.tenant_burst
                )
            wait = tenant_bucket.peek(now)
            if wait > 0.0:
                raise self._shed(
                    "tenant_rate_limit", wait, now, client_id=client_id, tenant=tenant
                )
        client_bucket = None
        if self.config.rate_limit is not None:
            client_bucket = self._buckets.get(client_id)
            if client_bucket is None:
                client_bucket = self._buckets[client_id] = TokenBucket(
                    self.config.rate_limit, self.config.burst
                )
            wait = client_bucket.peek(now)
            if wait > 0.0:
                raise self._shed(
                    "rate_limit", wait, now, client_id=client_id, tenant=tenant
                )
        live, _ = self.capacity(now)
        drain = self.batcher.latency(self.batcher.max_batch) / max(1, int(live))
        if self.config.tenant_max_queue_share is not None:
            cap = max(1, int(self.config.max_queue * self.config.tenant_max_queue_share))
            if self.pending.count(tenant) >= cap:
                raise self._shed(
                    "tenant_queue_full", drain, now, client_id=client_id, tenant=tenant
                )
        if len(self.pending) >= self.config.max_queue:
            raise self._shed(
                "queue_full", drain, now, client_id=client_id, tenant=tenant
            )
        budget = self.config.tau * self.config.deadline_slack
        delay = self.estimated_delay(now)
        if delay > budget:
            raise self._shed(
                "deadline", delay - budget, now, client_id=client_id, tenant=tenant
            )
        if tenant_bucket is not None:
            tenant_bucket.try_take(now)
        if client_bucket is not None:
            client_bucket.try_take(now)
        self._seq += 1
        request = FrontendRequest(
            seq=self._seq,
            client_id=client_id,
            payload=payload,
            arrival=arrival,
            deadline=arrival + self.config.tau,
            tenant=tenant,
        )
        self.pending.append(request)
        self.admitted += 1
        self._tenant_account(tenant, "admitted")
        telemetry.get_registry().counter(
            "repro_serve_frontend_requests_total",
            "Front-end admission outcomes, by client verdict and tenant.",
        ).inc(outcome="admitted", tenant=tenant)
        self._update_queue_gauge()
        return request

    def _tenant_account(self, tenant: str, outcome: str, count: int = 1) -> None:
        per_tenant = self.tenant_outcomes.setdefault(tenant, {})
        per_tenant[outcome] = per_tenant.get(outcome, 0) + count

    def _shed(
        self,
        reason: str,
        retry_after: float,
        now: float,
        client_id: str = "",
        detail: str = "",
        tenant: str = DEFAULT_TENANT,
    ) -> RequestShedError:
        """Account one shed and build the error the caller raises."""
        self.outcomes[reason] = self.outcomes.get(reason, 0) + 1
        self._tenant_account(tenant, reason)
        registry = telemetry.get_registry()
        registry.counter(
            "repro_serve_frontend_requests_total",
            "Front-end admission outcomes, by client verdict and tenant.",
        ).inc(outcome="shed", tenant=tenant)
        registry.counter(
            "repro_serve_frontend_shed_total",
            "Requests refused by admission control, by reason and tenant.",
        ).inc(reason=reason, tenant=tenant)
        return RequestShedError(reason, max(retry_after, 0.0), detail=detail)

    # ------------------------------------------------------------------
    # dispatch planning
    # ------------------------------------------------------------------

    def poll(self, now: float) -> list[DispatchPlan]:
        """Batches the greedy batcher wants dispatched at ``now``.

        Each planned batch passes the ``frontend.dispatch`` fault
        point: injected latency rides along in the plan, an injected
        exception re-queues the batch and arms a bounded backoff retry
        — after ``dispatch_retry.max_attempts`` consecutive failures
        the batch is shed so one poisoned dispatch cannot wedge the
        queue.
        """
        plans: list[DispatchPlan] = []
        if self._retry_at is not None and now + 1e-12 < self._retry_at:
            return plans
        self._retry_at = None
        registry = telemetry.get_registry()
        while self.pending:
            decision = self.batcher.decide(self.pending, now)
            if not decision.dispatch or decision.take <= 0:
                break
            requests = self.pending.pop(decision.take)
            try:
                extra = chaos.fire("frontend.dispatch")
            except InjectedFault:
                self._dispatch_failures += 1
                registry.counter(
                    "repro_serve_frontend_dispatch_retries_total",
                    "Planned batches that failed dispatch and were retried.",
                ).inc()
                if self._dispatch_failures >= self.config.dispatch_retry.max_attempts:
                    self.shed_requests(requests, now, "dispatch_failed")
                    self._dispatch_failures = 0
                    self._retry_at = now + self.config.dispatch_retry.base_delay
                else:
                    self.pending.push_front(requests)
                    self._retry_at = now + self.config.dispatch_retry.delay(
                        self._dispatch_failures - 1
                    )
                break
            self._dispatch_failures = 0
            plans.append(DispatchPlan(requests, decision.batch_size, extra))
        self._update_queue_gauge()
        return plans

    def next_wake(self, now: float) -> float | None:
        """Earliest future instant at which ``poll`` could act.

        The minimum of the batcher's deadline-dispatch trigger and any
        armed dispatch-retry backoff; None when the queue is empty and
        no retry is pending.
        """
        candidates = []
        if self.pending:
            deadline = self.batcher.next_deadline(self.pending, now)
            if deadline is not None:
                candidates.append(deadline)
        if self._retry_at is not None:
            candidates.append(self._retry_at)
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # terminal accounting
    # ------------------------------------------------------------------

    def complete(self, plan: DispatchPlan, now: float) -> None:
        """Account a finished batch: latencies, SLO misses, gauges."""
        registry = telemetry.get_registry()
        latencies = []
        overdue = 0
        for request in plan.requests:
            request.completed_at = now
            latency = now - request.arrival
            latencies.append(latency)
            self._tenant_account(request.tenant, "served")
            if latency > self.config.tau:
                overdue += 1
        self.outcomes["served"] = self.outcomes.get("served", 0) + len(plan.requests)
        self._latency_sample.add_many(latencies)
        registry.histogram(
            "repro_serve_frontend_latency_seconds",
            "Per-request latency from arrival to batch completion.",
            buckets=LATENCY_BUCKETS,
        ).observe_many(latencies)
        if overdue:
            registry.counter(
                "repro_serve_frontend_overdue_total",
                "Served requests that overran the SLO tau.",
            ).inc(overdue)
        registry.gauge(
            "repro_serve_frontend_latency_p95_seconds",
            "Rolling p95 of front-end request latency.",
        ).set(self._latency_sample.quantile(0.95) if len(self._latency_sample) else 0.0)

    def shed_requests(
        self, requests: Sequence[FrontendRequest], now: float, reason: str
    ) -> None:
        """Shed already-admitted requests (dispatch failure, shutdown).

        Stamps each request's terminal state, accounts the shed, and
        invokes the per-request ``on_shed`` hook so shells can fail
        futures / wake clients.
        """
        for request in requests:
            request.shed_reason = reason
            error = self._shed(
                reason, self.config.dispatch_retry.base_delay, now,
                client_id=request.client_id, tenant=request.tenant,
            )
            if request.on_shed is not None:
                request.on_shed(request, error)

    def _update_queue_gauge(self) -> None:
        telemetry.get_registry().gauge(
            "repro_serve_frontend_queue_depth",
            "Requests admitted and waiting in the front-end queue.",
        ).set(len(self.pending))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def served(self) -> int:
        """Requests served to completion so far."""
        return self.outcomes.get("served", 0)

    @property
    def shed(self) -> int:
        """Requests refused or abandoned, across all shed reasons."""
        return sum(v for k, v in self.outcomes.items() if k != "served")

    def latency_quantile(self, q: float) -> float:
        """Rolling latency quantile (reservoir-sampled), in seconds."""
        return self._latency_sample.quantile(q) if len(self._latency_sample) else 0.0


class ScalingAdvisor:
    """Autoscaling hints off the live front-end telemetry gauges.

    Reads ``repro_serve_frontend_queue_depth`` and
    ``repro_serve_frontend_latency_p95_seconds`` from the process-wide
    registry (the core maintains both) and emits a hint: +1 scale out,
    -1 scale in, 0 hold. Watermarks plus a cooldown give hysteresis so
    a sine-wave load does not thrash the replica count; every emitted
    hint lands in the ``repro_serve_frontend_scale_hint`` gauge.
    """

    def __init__(
        self,
        high_depth: float = 256.0,
        low_depth: float = 16.0,
        high_p95: float = 0.5,
        low_p95: float = 0.2,
        cooldown: float = 5.0,
    ):
        if high_depth <= low_depth:
            raise ConfigurationError(
                f"high_depth ({high_depth}) must exceed low_depth ({low_depth})"
            )
        if high_p95 <= low_p95:
            raise ConfigurationError(
                f"high_p95 ({high_p95}) must exceed low_p95 ({low_p95})"
            )
        self.high_depth = float(high_depth)
        self.low_depth = float(low_depth)
        self.high_p95 = float(high_p95)
        self.low_p95 = float(low_p95)
        self.cooldown = float(cooldown)
        self._last_change: float | None = None

    def evaluate(self, now: float) -> int:
        """The current hint: +1 (scale out), -1 (scale in), or 0."""
        registry = telemetry.get_registry()
        depth = registry.gauge(
            "repro_serve_frontend_queue_depth",
            "Requests admitted and waiting in the front-end queue.",
        ).value()
        p95 = registry.gauge(
            "repro_serve_frontend_latency_p95_seconds",
            "Rolling p95 of front-end request latency.",
        ).value()
        if depth > self.high_depth or p95 > self.high_p95:
            hint = 1
        elif depth < self.low_depth and p95 < self.low_p95:
            hint = -1
        else:
            hint = 0
        if hint != 0:
            if self._last_change is not None and (
                now - self._last_change < self.cooldown
            ):
                hint = 0
            else:
                self._last_change = now
        registry.gauge(
            "repro_serve_frontend_scale_hint",
            "Latest autoscaling hint (+1 out, -1 in, 0 hold).",
        ).set(hint)
        return hint


class AsyncServeFrontend:
    """The :mod:`asyncio` shell over :class:`ServeFrontend`.

    Concurrent clients ``await submit(payload, client_id)``; a single
    cooperative dispatcher task drains the core — executing each
    planned batch against ``executor(payloads, batch_size)`` (sync or
    async) and resolving the per-request futures. Admission refusals
    surface to the caller immediately as
    :class:`~repro.exceptions.RequestShedError` — callers never queue
    beyond what the core admits, which is the backpressure contract.

    Use as an async context manager (``async with frontend: ...``) or
    call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        config: FrontendConfig,
        executor: Callable[[list[Any], int], Any],
        capacity: Callable[[float], tuple[int, float]] | None = None,
    ):
        self.core = ServeFrontend(config, capacity=capacity)
        self.executor = executor
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._running = False

    def _now(self) -> float:
        return self._loop.time()

    async def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        if self._running:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._running = True
        self._task = self._loop.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop the dispatcher; unanswered requests are shed (shutdown)."""
        if not self._running:
            return
        self._running = False
        self._wake.set()
        await self._task
        leftovers = self.core.pending.pop(len(self.core.pending))
        if leftovers:
            self.core.shed_requests(leftovers, self._now(), "shutdown")

    async def __aenter__(self) -> "AsyncServeFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def submit(
        self,
        payload: Any,
        client_id: str = "default",
        tenant: str = DEFAULT_TENANT,
    ) -> Any:
        """Submit one request; returns the result or raises on shed."""
        if not self._running:
            raise ConfigurationError("frontend is not running (call start())")
        request = self.core.offer(client_id, payload, self._now(), tenant=tenant)
        future = self._loop.create_future()
        request.future = future
        request.on_shed = _fail_future
        self._wake.set()
        return await future

    async def _dispatch_loop(self) -> None:
        while self._running:
            now = self._now()
            for plan in self.core.poll(now):
                await self._execute(plan)
            wake_at = self.core.next_wake(self._now())
            timeout = None if wake_at is None else max(wake_at - self._now(), 0.0)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    async def _execute(self, plan: DispatchPlan) -> None:
        if plan.extra_latency > 0.0:
            await asyncio.sleep(plan.extra_latency)
        payloads = [request.payload for request in plan.requests]
        try:
            results = self.executor(payloads, plan.batch_size)
            if inspect.isawaitable(results):
                results = await results
        except Exception as exc:  # executor bug or backend outage
            telemetry.get_registry().counter(
                "repro_serve_frontend_executor_errors_total",
                "Batches whose executor raised; their requests fail.",
            ).inc()
            for request in plan.requests:
                request.shed_reason = "executor_error"
                if request.future is not None and not request.future.done():
                    request.future.set_exception(exc)
            return
        self.core.complete(plan, self._now())
        for request, result in zip(plan.requests, results):
            if request.future is not None and not request.future.done():
                # An Exception *instance* in the results list is a
                # per-request failure (e.g. one client's malformed
                # image): only that caller errors, its batch-mates'
                # results are untouched.
                if isinstance(result, Exception):
                    request.future.set_exception(result)
                else:
                    request.future.set_result(result)


def _fail_future(request: FrontendRequest, error: RequestShedError) -> None:
    """The async shell's ``on_shed`` hook: fail the awaiting client."""
    if request.future is not None and not request.future.done():
        request.future.set_exception(error)
